//! The event-driven cycle loop.
//!
//! Per-cycle stage order is commit → issue → dispatch → fetch, which gives
//! the conventional timing: an instruction dispatched in cycle `c` can
//! issue at `c + 1` at the earliest, a producer issued at `c` with latency
//! `L` wakes its consumers for issue at `c + L`, and a mispredicted branch
//! issued at `c` (1-cycle branch execution) redirects fetch at `c + 1`.
//!
//! This engine computes bit-identical [`SimResult`]s to the retained
//! reference implementation in [`crate::reference`] (the original
//! scan-everything loop), but restructures the hot path five ways:
//!
//! 1. it runs over a [`CompiledTrace`] — flat structure-of-arrays op
//!    storage with producer indices pre-resolved (built once per trace,
//!    cacheable across machine configurations);
//! 2. issue selection is event-driven through the
//!    [`WakeupScheduler`](crate::sched::WakeupScheduler) instead of
//!    scanning the whole ROB every cycle, with the per-op wait state
//!    merged into one [`OpSlot`] record per op so dispatch and wakeup
//!    touch a single cache line each;
//! 3. provably inert cycles — frontend stalled or starved, nothing
//!    completing, nothing issueable — are *skipped in bulk* by advancing
//!    the clock straight to the next event time while replicating the
//!    per-cycle accounting (see `idle_gap`/`skip` and
//!    `docs/PERFORMANCE.md` for the invariant argument);
//! 4. fetch and dispatch run *batched over superblock regions*: a
//!    [`SuperblockMap`] precomputed from the trace marks where branches
//!    and I-cache line boundaries fall, so the fetch stage admits a whole
//!    branch-free same-line run with one bulk fill (no per-op flag loads
//!    or line compares) and dispatch moves a ready prefix with one scan
//!    (dispatch-ready times are monotone in trace order);
//! 5. the entire engine is *monomorphized per predictor kind*: the run
//!    entry point matches the configured [`PredictorConfig`] once and
//!    selects a copy of the cycle loop with the concrete predictor type
//!    (and its `predict`/`update` pair) baked in — the
//!    config-specialized execution closures extending the
//!    `InlinePredictor` devirtualization, with dispatch/issue widths and
//!    FU latencies hoisted into plain engine fields at construction.
//!
//! `Simulator::run` picks the engine: the event-driven one by default,
//! the reference one when `BMP_REFERENCE_ENGINE=1` is set (used by CI to
//! diff full experiment-suite outputs across both).

use bmp_branch::{
    BranchStats, Btb, DirectionPredictor, IndirectPredictor, InlinePredictor, ReturnAddressStack,
};
use bmp_cache::{DataOutcome, MemoryHierarchy};
use bmp_core::intervals::IntervalEventKind;
use bmp_core::{IntervalAccountant, IntervalRecord};
use bmp_trace::{BranchKind, CompiledTrace, SuperblockMap, Trace};
use bmp_uarch::MachineConfig;
use std::sync::OnceLock;
use std::time::Instant;

use crate::compiled::{ClassTables, FuPools};
use crate::error::{BudgetForensics, SimError};
use crate::options::SimOptions;
use crate::result::{
    ClassIssueStats, FetchAccounting, MispredictRecord, MissEvent, MissEventKind, SimResult,
    SlotAccounting,
};
use crate::sched::{WakeupScheduler, NO_EDGE};

/// Sentinel for "not yet executed".
const NOT_DONE: u64 = u64::MAX;

/// Sentinel for "no I-cache access performed for this op yet".
const NO_LINE_DONE: usize = usize::MAX;

/// `true` when `BMP_REFERENCE_ENGINE=1` forces every [`Simulator::run`]
/// through the retained reference engine instead of the event-driven one.
/// Read once per process.
pub fn reference_engine_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("BMP_REFERENCE_ENGINE").is_ok_and(|v| v == "1"))
}

/// Wall-clock attribution of one event-driven run, reported by
/// `bmp-profile`'s per-phase breakdown. Nanosecond granularity; the two
/// timestamps cost two `Instant` reads per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunPhases {
    /// Time in the cycle loop proper (fetch/dispatch/issue/commit).
    pub execute_ns: u64,
    /// Time assembling the [`SimResult`] — cloning the event logs and
    /// accounting vectors out of the reusable scratch buffers.
    pub assemble_ns: u64,
}

/// A configured simulator, ready to run traces.
///
/// The simulator itself is immutable; each [`run`](Simulator::run) builds
/// fresh machine state, so one `Simulator` can be reused across traces and
/// the runs are independent.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    options: SimOptions,
}

impl Simulator {
    /// Creates a simulator for the given machine with default options.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: MachineConfig) -> Self {
        Self::with_options(config, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn with_options(config: MachineConfig, options: SimOptions) -> Self {
        config
            .validate()
            .expect("machine configuration must be valid");
        Self { config, options }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The simulation options.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    /// A 64-bit content fingerprint of the machine configuration and the
    /// simulation options together. Since a run is a pure function of
    /// `(config, options, trace)`, this plus a trace fingerprint fully
    /// addresses the [`SimResult`] — the experiment harness uses it as
    /// the simulation cache key.
    pub fn fingerprint(&self) -> u64 {
        bmp_uarch::fp::fingerprint_debug(&(&self.config, self.options))
    }

    /// Simulates the trace to completion and returns the measurements.
    ///
    /// Compiles the trace and runs the event-driven engine, unless
    /// `BMP_REFERENCE_ENGINE=1` routes the run through the reference
    /// engine; both produce identical results. Callers that already hold
    /// a [`CompiledTrace`] (e.g. the experiment harness, which caches
    /// them) should use [`run_compiled`](Simulator::run_compiled) to skip
    /// the per-run compile.
    ///
    /// # Panics
    ///
    /// Panics when the cycle-budget watchdog fires (see
    /// [`try_run`](Simulator::try_run) for the fallible form). The
    /// default auto budget never trips on a machine that makes progress.
    pub fn run(&self, trace: &Trace) -> SimResult {
        self.try_run(trace)
            .unwrap_or_else(|e| panic!("simulation aborted: {e}"))
    }

    /// Fallible form of [`run`](Simulator::run): a run that exhausts its
    /// cycle budget returns [`SimError::BudgetExceeded`] with a forensic
    /// snapshot instead of panicking or hanging.
    pub fn try_run(&self, trace: &Trace) -> Result<SimResult, SimError> {
        if reference_engine_forced() {
            self.try_run_reference(trace)
        } else {
            self.try_run_compiled(&trace.compile())
        }
    }

    /// Simulates an already-compiled trace on the event-driven engine,
    /// building the superblock map on the fly. Callers that cache
    /// artifacts per trace (the experiment harness) should build the
    /// [`SuperblockMap`] once and use
    /// [`run_compiled_with`](Simulator::run_compiled_with).
    ///
    /// # Panics
    ///
    /// Panics when the cycle-budget watchdog fires (see
    /// [`try_run_compiled`](Simulator::try_run_compiled)).
    pub fn run_compiled(&self, trace: &CompiledTrace) -> SimResult {
        self.try_run_compiled(trace)
            .unwrap_or_else(|e| panic!("simulation aborted: {e}"))
    }

    /// Fallible form of [`run_compiled`](Simulator::run_compiled).
    pub fn try_run_compiled(&self, trace: &CompiledTrace) -> Result<SimResult, SimError> {
        let sb = SuperblockMap::build(trace, self.config.caches.l1i().line_bytes());
        self.try_run_compiled_with(trace, &sb)
    }

    /// Simulates a compiled trace with a prebuilt superblock map (keyed
    /// by the trace and the L1I line size — one map serves every machine
    /// configuration sharing a line size).
    ///
    /// # Panics
    ///
    /// Panics if `sb` was built for a different trace length or L1I line
    /// size than this simulator's configuration, or when the cycle-budget
    /// watchdog fires.
    pub fn run_compiled_with(&self, trace: &CompiledTrace, sb: &SuperblockMap) -> SimResult {
        self.try_run_compiled_with(trace, sb)
            .unwrap_or_else(|e| panic!("simulation aborted: {e}"))
    }

    /// Fallible form of [`run_compiled_with`](Simulator::run_compiled_with).
    pub fn try_run_compiled_with(
        &self,
        trace: &CompiledTrace,
        sb: &SuperblockMap,
    ) -> Result<SimResult, SimError> {
        self.try_run_compiled_phased(trace, sb).map(|(r, _)| r)
    }

    /// Like [`try_run_compiled_with`](Simulator::try_run_compiled_with),
    /// additionally reporting the wall-clock split between the cycle loop
    /// and result assembly (consumed by `bmp-profile`).
    pub fn try_run_compiled_phased(
        &self,
        trace: &CompiledTrace,
        sb: &SuperblockMap,
    ) -> Result<(SimResult, RunPhases), SimError> {
        assert_eq!(
            sb.line_bytes(),
            self.config.caches.l1i().line_bytes(),
            "superblock map was built for a different L1I line size"
        );
        assert_eq!(
            sb.len(),
            trace.len(),
            "superblock map was built for a different trace"
        );
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // One monomorphized copy of the engine per predictor kind:
            // the concrete type (and everything `Engine::new` hoists out
            // of the config) is selected here, once per run, instead of
            // being re-dispatched per branch in the hot loop.
            match InlinePredictor::build(&self.config.predictor) {
                InlinePredictor::Static(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Perfect(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Bimodal(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::GShare(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Local(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Tournament(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Perceptron(p) => self.run_specialized(trace, sb, p, &mut scratch),
                InlinePredictor::Tage(p) => self.run_specialized(trace, sb, p, &mut scratch),
            }
        })
    }

    fn run_specialized<P: DirectionPredictor>(
        &self,
        trace: &CompiledTrace,
        sb: &SuperblockMap,
        predictor: P,
        scratch: &mut Scratch,
    ) -> Result<(SimResult, RunPhases), SimError> {
        let mut engine = Engine::new(&self.config, self.options, trace, sb, predictor, scratch);
        let result = engine.run();
        let phases = engine.phases;
        engine.recycle(scratch);
        result.map(|r| (r, phases))
    }

    /// Simulates the trace on the retained reference engine (the original
    /// straightforward cycle loop). Used as the ground truth in
    /// equivalence tests and CI diffs.
    ///
    /// # Panics
    ///
    /// Panics when the cycle-budget watchdog fires (see
    /// [`try_run_reference`](Simulator::try_run_reference)).
    pub fn run_reference(&self, trace: &Trace) -> SimResult {
        self.try_run_reference(trace)
            .unwrap_or_else(|e| panic!("simulation aborted: {e}"))
    }

    /// Fallible form of [`run_reference`](Simulator::run_reference). The
    /// forensic snapshot in a budget error is bit-identical to the
    /// event-driven engine's — aborts are part of the equivalence
    /// contract.
    pub fn try_run_reference(&self, trace: &Trace) -> Result<SimResult, SimError> {
        crate::reference::run(&self.config, self.options, trace)
    }
}

/// Per-thread reusable buffers for [`Engine`] runs. `slots` keeps
/// whatever the previous run left in it: every field of a slot is written
/// before it is read (`done`/`disp` at fetch, the wait fields at
/// dispatch) within a run, so no re-initialization pass is needed.
#[derive(Default)]
struct Scratch {
    slots: Vec<OpSlot>,
    sched: Option<WakeupScheduler>,
    /// The previous run's memory hierarchy, keyed by its configuration
    /// fingerprint: building one allocates the full line arrays (the
    /// single most expensive piece of per-run setup), while `reset` is
    /// O(1) thanks to epoch invalidation.
    mem: Option<(u64, MemoryHierarchy)>,
    events: Vec<MissEvent>,
    mispredicts: Vec<MispredictRecord>,
    interval_records: Vec<IntervalRecord>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

/// The complete per-op record: completion and dispatch times (engine)
/// merged with the scheduler's wait state, interleaved so every stage
/// that touches an op — fetch initializes, dispatch registers, wakeup
/// accumulates, issue completes — hits a *single* 32-byte record instead
/// of streaming two parallel arrays through the cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpSlot {
    /// Completion time ([`NOT_DONE`] until executed).
    pub(crate) done: u64,
    /// Dispatch cycle once dispatched; before that, the cycle the op
    /// clears the frontend pipe and becomes dispatchable.
    pub(crate) disp: u64,
    /// Earliest issue cycle accumulated so far (scheduler).
    pub(crate) ready_at: u64,
    /// Head of the intrusive waiter-edge chain (scheduler).
    pub(crate) waiter_head: u32,
    /// Count of producers not yet executed, set at dispatch (scheduler).
    pub(crate) pending: u32,
}

/// Per-misprediction bookkeeping while the branch is in flight.
struct PendingMiss {
    branch_idx: usize,
    fetch_cycle: u64,
    dispatch_cycle: u64,
    window_occupancy: u32,
    dispatched: bool,
}

struct Engine<'a, P> {
    cfg: &'a MachineConfig,
    opts: SimOptions,
    ct: &'a CompiledTrace,
    sb: &'a SuperblockMap,
    tables: ClassTables,

    /// Watchdog cutoff: `opts.cycle_budget(trace len)`, resolved once.
    budget: u64,
    cycle: u64,
    committed: u64,

    // The merged per-op records (see [`OpSlot`]).
    slots: Vec<OpSlot>,

    // Frontend. Because the trace is correct-path-only and fetch,
    // dispatch and commit all proceed in trace order, the frontend queue
    // and the ROB are *contiguous index ranges* delimited by three
    // cursors: `commit_head <= dispatch_head <= fetch_idx`. The ROB is
    // `commit_head..dispatch_head`; the frontend queue is
    // `dispatch_head..fetch_idx`, with each op's dispatch-ready time
    // parked in `disp` until dispatch overwrites it with the actual
    // dispatch cycle.
    fetch_idx: usize,
    fetch_stall_until: u64,
    blocked_on: Option<usize>,
    /// Index of the op whose I-cache line access already happened (set
    /// when the access missed and fetch must resume at the same op after
    /// the stall without re-accessing). [`NO_LINE_DONE`] otherwise.
    line_done_for: usize,
    frontend_cap: usize,
    // Hoisted per-run constants, so the per-cycle stages touch plain
    // fields instead of re-deriving them through the config.
    n_ops: usize,
    fetch_width: u32,
    dispatch_width: u32,
    issue_width: u32,
    commit_width: u32,
    rob_size: usize,
    window_size: u32,
    frontend_depth: u64,

    // Backend: `issued` is implied by `done[idx] != NOT_DONE`, and issue
    // selection lives in the scheduler.
    commit_head: usize,
    dispatch_head: usize,
    unissued: u32,
    fu: FuPools,
    sched: WakeupScheduler,

    // Helpers. The direction predictor is a concrete type parameter —
    // its `predict`/`update` pair is statically dispatched and inlined
    // into this engine instantiation.
    predictor: P,
    btb: Btb,
    indirect: IndirectPredictor,
    ras: ReturnAddressStack,
    mem: MemoryHierarchy,

    // Measurements.
    branch_stats: BranchStats,
    events: Vec<MissEvent>,
    mispredicts: Vec<MispredictRecord>,
    // Per-interval accounting (None when `collect_intervals` is off, so
    // the only cost on the default path is one branch per commit).
    accountant: Option<IntervalAccountant>,
    interval_records: Vec<IntervalRecord>,
    pending: Option<PendingMiss>,
    timeline: Option<Vec<u8>>,
    slots_acct: SlotAccounting,
    fetch_acct: FetchAccounting,
    rob_occupancy: Vec<u64>,
    class_issue: [ClassIssueStats; 9],
    /// Set once the warmup boundary has been crossed (or immediately when
    /// no warmup is configured).
    warmed: bool,
    stats_start_cycle: u64,
    stats_start_committed: u64,
    phases: RunPhases,
}

impl<'a, P: DirectionPredictor> Engine<'a, P> {
    fn new(
        cfg: &'a MachineConfig,
        opts: SimOptions,
        ct: &'a CompiledTrace,
        sb: &'a SuperblockMap,
        predictor: P,
        scratch: &mut Scratch,
    ) -> Self {
        let n = ct.len();
        let mut slots = std::mem::take(&mut scratch.slots);
        // Exactly `n` op records plus the trailing dummy the scheduler
        // clamps empty producer slots onto (see
        // `WakeupScheduler::on_dispatch`); its `done` must read as
        // "complete since forever" and nothing else about it is ever
        // read or written.
        slots.resize(
            n + 1,
            OpSlot {
                done: NOT_DONE,
                disp: 0,
                ready_at: 0,
                waiter_head: NO_EDGE,
                pending: 0,
            },
        );
        slots[n].done = 0;
        let sched = match scratch.sched.take() {
            Some(mut s) => {
                s.reset(n);
                s
            }
            None => WakeupScheduler::new(n),
        };
        let mem_key = bmp_uarch::fp::fingerprint_debug(&cfg.caches);
        let mem = match scratch.mem.take() {
            Some((k, mut m)) if k == mem_key => {
                m.reset();
                m
            }
            _ => MemoryHierarchy::new(&cfg.caches),
        };
        Self {
            cfg,
            opts,
            ct,
            sb,
            tables: ClassTables::new(cfg),
            budget: opts.cycle_budget(n as u64),
            cycle: 0,
            committed: 0,
            slots,
            fetch_idx: 0,
            fetch_stall_until: 0,
            blocked_on: None,
            line_done_for: NO_LINE_DONE,
            n_ops: n,
            fetch_width: cfg.effective_fetch_width(),
            dispatch_width: cfg.dispatch_width,
            issue_width: cfg.issue_width,
            commit_width: cfg.commit_width,
            rob_size: cfg.rob_size as usize,
            window_size: cfg.window_size,
            frontend_depth: u64::from(cfg.frontend_depth),
            frontend_cap: (cfg.frontend_depth as usize * cfg.dispatch_width as usize)
                .max(cfg.fetch_width as usize),
            commit_head: 0,
            dispatch_head: 0,
            unissued: 0,
            fu: FuPools::new(cfg),
            sched,
            predictor,
            btb: Btb::new(cfg.btb_entries),
            indirect: IndirectPredictor::build(&cfg.indirect_predictor),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            mem,
            branch_stats: BranchStats::new(),
            events: std::mem::take(&mut scratch.events),
            mispredicts: std::mem::take(&mut scratch.mispredicts),
            accountant: opts.collect_intervals.then(IntervalAccountant::new),
            interval_records: std::mem::take(&mut scratch.interval_records),
            pending: None,
            timeline: opts.record_dispatch_timeline.then(Vec::new),
            slots_acct: SlotAccounting::default(),
            fetch_acct: FetchAccounting::default(),
            rob_occupancy: vec![0; cfg.rob_size as usize + 1],
            class_issue: [ClassIssueStats::default(); 9],
            warmed: opts.warmup_ops == 0,
            stats_start_cycle: 0,
            stats_start_committed: 0,
            phases: RunPhases::default(),
        }
    }

    /// Returns the reusable buffers to the per-thread scratch pool.
    fn recycle(self, scratch: &mut Scratch) {
        scratch.slots = self.slots;
        scratch.sched = Some(self.sched);
        scratch.mem = Some((bmp_uarch::fp::fingerprint_debug(&self.cfg.caches), self.mem));
        scratch.events = self.events;
        scratch.events.clear();
        scratch.mispredicts = self.mispredicts;
        scratch.mispredicts.clear();
        scratch.interval_records = self.interval_records;
        scratch.interval_records.clear();
    }

    /// Current ROB occupancy (the ROB is the committed..dispatched range).
    #[inline]
    fn rob_len(&self) -> usize {
        self.dispatch_head - self.commit_head
    }

    fn run(&mut self) -> Result<SimResult, SimError> {
        let t0 = Instant::now();
        let looped = self.run_loop();
        let t1 = Instant::now();
        self.phases.execute_ns = t1.duration_since(t0).as_nanos() as u64;
        looped?;
        let result = self.assemble();
        self.phases.assemble_ns = t1.elapsed().as_nanos() as u64;
        Ok(result)
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        let n = self.n_ops as u64;
        // `idle_gap` is ~a dozen loads and branches; on dense cycles it is
        // pure overhead. It is only consulted after a cycle in which no
        // stage made progress — a *heuristic*, not a correctness gate: a
        // normal cycle on an inert machine produces exactly the accounting
        // `skip(1)` would (the invariant `skip` is built on), so running
        // one wasted cycle per transition into idleness is bit-identical
        // and much cheaper than probing every cycle.
        let mut probe_idle = true;
        while self.committed < n && self.cycle < self.budget {
            if probe_idle {
                let gap = self.idle_gap();
                if gap > 0 {
                    self.skip(gap);
                    // The cycle after a maximal skip always makes
                    // progress (the gap is bounded by the next event).
                    probe_idle = false;
                    continue;
                }
            }
            let commit_head0 = self.commit_head;
            let fetch_idx0 = self.fetch_idx;
            self.commit();
            if !self.warmed && self.committed >= self.opts.warmup_ops {
                self.reset_statistics();
            }
            let issued = self.issue();
            let dispatched = self.dispatch();
            self.fetch();
            let occ = self.rob_len();
            self.rob_occupancy[occ] += 1;
            if let Some(t) = &mut self.timeline {
                t.push(dispatched);
            }
            self.cycle += 1;
            probe_idle = !issued
                && dispatched == 0
                && self.commit_head == commit_head0
                && self.fetch_idx == fetch_idx0;
        }
        if self.committed < n {
            // The watchdog fired: capture forensics instead of returning
            // a silently truncated result (or spinning forever).
            return Err(SimError::BudgetExceeded(BudgetForensics {
                budget: self.budget,
                cycle: self.cycle,
                committed: self.committed,
                trace_ops: n,
                fetched: self.fetch_idx as u64,
                window_occupancy: self.rob_len() as u32,
            }));
        }
        Ok(())
    }

    fn assemble(&mut self) -> SimResult {
        // Accounting conservation, mirrored by lint BMP203: every offered
        // dispatch slot is attributed to exactly one cause, and the ROB
        // histogram samples every measured cycle.
        let cycles = self.cycle - self.stats_start_cycle;
        debug_assert_eq!(
            self.slots_acct.total(),
            cycles * u64::from(self.dispatch_width),
            "dispatch-slot accounting leaked slots (BMP203)"
        );
        debug_assert_eq!(
            self.rob_occupancy.iter().sum::<u64>(),
            cycles,
            "ROB-occupancy histogram missed cycles (BMP203)"
        );
        SimResult {
            cycles,
            instructions: self.committed - self.stats_start_committed,
            branch_stats: self.branch_stats,
            hierarchy: self.mem.stats(),
            // Cloned, not taken: the exact-size copy goes to the caller
            // while the grown buffer returns to the scratch pool.
            events: self.events.clone(),
            mispredicts: self.mispredicts.clone(),
            interval_records: self.interval_records.clone(),
            dispatch_timeline: self.timeline.take(),
            frontend_depth: self.cfg.frontend_depth,
            slots: self.slots_acct,
            fetch: self.fetch_acct,
            rob_occupancy: std::mem::take(&mut self.rob_occupancy),
            class_issue: self.class_issue,
        }
    }

    /// Length of the inert stretch starting at the current cycle: the
    /// number of cycles during which *no* stage can change machine state,
    /// bounded by the next event time. Returns 0 when the current cycle
    /// must run normally.
    ///
    /// A cycle is inert iff every stage is provably a no-op:
    /// * **issue** — ready set empty and no calendar bucket due;
    /// * **commit** — ROB empty, or its head has not completed;
    /// * **dispatch** — blocked (ROB/window full) or starved (queue empty
    ///   or its head still in the frontend pipe); blocked/starved cycles
    ///   only charge slot accounting, replicated in `skip`;
    /// * **fetch** — waiting on a redirect, stalled on a miss, out of
    ///   trace, or the frontend queue is full.
    ///
    /// The bound is the min of the times these conditions can flip:
    /// calendar head (issue), ROB-head completion (commit and everything
    /// downstream of a full ROB), frontend-pipe arrival (dispatch), and
    /// stall expiry (fetch). Conditions resolved by *other* ops issuing
    /// (window pressure, a blocked redirect) need no separate bound: any
    /// future issue is already a calendar entry, or the ready set is
    /// non-empty and the cycle is not inert in the first place.
    fn idle_gap(&self) -> u64 {
        let c = self.cycle;
        if self.sched.has_ready() {
            return 0;
        }
        let mut next = u64::MAX;
        if let Some(w) = self.sched.next_wakeup() {
            if w <= c {
                return 0;
            }
            next = next.min(w);
        }
        if self.commit_head < self.dispatch_head {
            let d = self.slots[self.commit_head].done;
            if d != NOT_DONE {
                if d <= c {
                    return 0;
                }
                next = next.min(d);
            }
        }
        let rob_full = self.rob_len() >= self.rob_size;
        let window_full = self.unissued >= self.window_size;
        if !rob_full && !window_full && self.dispatch_head < self.fetch_idx {
            let ready = self.slots[self.dispatch_head].disp;
            if ready <= c {
                return 0;
            }
            next = next.min(ready);
        }
        if self.blocked_on.is_none() {
            if c < self.fetch_stall_until {
                next = next.min(self.fetch_stall_until);
            } else if self.fetch_idx < self.n_ops
                && self.fetch_idx - self.dispatch_head < self.frontend_cap
            {
                return 0;
            }
        }
        if next == u64::MAX {
            // No future event found (e.g. drained run-out): fall back to
            // single-stepping, which matches the reference engine exactly.
            return 0;
        }
        next.min(self.budget) - c
    }

    /// Performs `k` inert cycles at once: advances the clock and applies
    /// exactly the accounting the reference engine would accumulate over
    /// `k` normal iterations of a blocked machine. The blocking causes
    /// cannot change mid-gap because `idle_gap` bounded `k` by every
    /// relevant expiry time.
    fn skip(&mut self, k: u64) {
        let occ = self.rob_len();
        self.rob_occupancy[occ] += k;
        if let Some(t) = &mut self.timeline {
            let len = t.len() + k as usize;
            t.resize(len, 0);
        }
        // Dispatch charges its full width to the first blocking cause,
        // with the same precedence as `dispatch`.
        let width = u64::from(self.dispatch_width);
        if self.rob_len() >= self.rob_size {
            self.slots_acct.rob_full += k * width;
        } else if self.unissued >= self.window_size {
            self.slots_acct.window_full += k * width;
        } else {
            self.slots_acct.frontend_starved += k * width;
        }
        if self.blocked_on.is_some() {
            self.fetch_acct.redirect_wait += k;
        } else if self.cycle < self.fetch_stall_until {
            self.fetch_acct.stall += k;
        }
        self.cycle += k;
    }

    /// Crosses the warmup boundary: zero every statistic while keeping
    /// all machine state (caches, predictor, BTB, RAS, ROB contents).
    fn reset_statistics(&mut self) {
        self.warmed = true;
        self.stats_start_cycle = self.cycle;
        self.stats_start_committed = self.committed;
        self.branch_stats.reset();
        self.mem.reset_stats();
        self.events.clear();
        self.mispredicts.clear();
        self.interval_records.clear();
        if let Some(acct) = &mut self.accountant {
            acct.reset(self.committed);
        }
        self.slots_acct = SlotAccounting::default();
        self.fetch_acct = FetchAccounting::default();
        self.rob_occupancy.iter_mut().for_each(|c| *c = 0);
        self.class_issue = [ClassIssueStats::default(); 9];
        if let Some(t) = &mut self.timeline {
            t.clear();
        }
    }

    fn commit(&mut self) {
        // One bounds check for the whole window: the committable span is
        // the done-prefix of the ROB head, found with a borrow-free scan.
        let span = (self.dispatch_head - self.commit_head).min(self.commit_width as usize);
        let mut k = 0usize;
        for s in &self.slots[self.commit_head..self.commit_head + span] {
            if s.done > self.cycle {
                break;
            }
            k += 1;
        }
        if let Some(acct) = &mut self.accountant {
            for idx in self.commit_head..self.commit_head + k {
                acct.on_commit(
                    idx as u64,
                    self.cycle - self.stats_start_cycle,
                    &mut self.interval_records,
                );
            }
        }
        self.commit_head += k;
        self.committed += k as u64;
    }

    /// Returns `true` when at least one op issued this cycle.
    fn issue(&mut self) -> bool {
        self.sched.drain(self.cycle);
        let mut budget = self.issue_width;
        // The ready set pops oldest-first (ascending trace index == ROB
        // order), replicating the reference engine's scan order.
        while budget > 0 {
            let Some(idx32) = self.sched.pop_ready() else {
                break;
            };
            let idx = idx32 as usize;
            let ci = self.ct.class(idx).index();
            let entry = self.tables.entries[ci];
            if !entry.unconstrained
                && !self
                    .fu
                    .take(usize::from(entry.fu), self.cycle, entry.occupancy)
            {
                // Lost FU arbitration: retry next cycle, exactly like the
                // reference scan skipping past a busy unit — except when
                // every unit is held across cycles (divides), where all
                // retries up to the earliest hold expiry are guaranteed
                // losses and the op goes to the calendar instead of
                // churning through the ready set every cycle.
                let at = self.fu.retry_at(usize::from(entry.fu), self.cycle);
                if at > self.cycle + 1 {
                    self.sched.schedule(idx32, at);
                } else {
                    self.sched.defer(idx32);
                }
                continue;
            }
            let base_lat = entry.latency;
            // One data-dependent branch (the memory bit) instead of a
            // 9-way class match: only loads and stores leave this path.
            let latency = if self.ct.flags(idx) & bmp_trace::compiled::FLAG_MEM != 0 {
                let addr = self.ct.mem_addr(idx).expect("memory ops carry addresses");
                let access = self.mem.data_access_at(self.ct.pc(idx), addr);
                if ci == bmp_uarch::OpClass::Load.index() {
                    if access.outcome == DataOutcome::LongMiss {
                        self.events.push(MissEvent {
                            trace_idx: idx,
                            cycle: self.cycle,
                            kind: MissEventKind::LongDCacheMiss,
                        });
                        if let Some(acct) = &mut self.accountant {
                            acct.on_event(idx as u64, IntervalEventKind::LongDCacheMiss);
                        }
                    }
                    u64::from(access.latency)
                } else {
                    // Stores retire through a write buffer: the cache sees
                    // the access (write-allocate) but the pipeline is not
                    // held up by the miss.
                    base_lat
                }
            } else {
                base_lat
            };
            // One borrow of the slot record for the whole issue: write
            // the completion time, read the dispatch cycle, and detach
            // the waiter chain, which `wake_waiters` then walks without
            // reloading this record.
            let done = self.cycle + latency;
            let s = &mut self.slots[idx];
            s.done = done;
            let disp = s.disp;
            let waiters = std::mem::replace(&mut s.waiter_head, NO_EDGE);
            self.unissued -= 1;
            budget -= 1;
            let cs = &mut self.class_issue[ci];
            cs.issued += 1;
            cs.wait_cycles += self.cycle - disp;
            self.sched.wake_waiters(waiters, done, &mut self.slots);
            // A mispredicted branch redirects fetch when it resolves.
            if self.blocked_on == Some(idx) {
                self.blocked_on = None;
                self.fetch_stall_until = self.fetch_stall_until.max(done);
                let pending = self
                    .pending
                    .take()
                    .expect("pending record for blocked branch");
                debug_assert!(pending.dispatched);
                self.mispredicts.push(MispredictRecord {
                    branch_idx: idx,
                    fetch_cycle: pending.fetch_cycle,
                    dispatch_cycle: pending.dispatch_cycle,
                    resolve_cycle: done,
                    window_occupancy: pending.window_occupancy,
                });
                if let Some(acct) = &mut self.accountant {
                    acct.on_mispredict(
                        idx as u64,
                        done.saturating_sub(pending.dispatch_cycle),
                        self.cfg.frontend_depth,
                        pending.window_occupancy,
                    );
                }
            }
        }
        self.sched.rearm_deferred();
        budget < self.issue_width
    }

    /// Moves the dispatchable prefix of the frontend queue into the ROB
    /// in one batch.
    ///
    /// The batch length is the minimum of the dispatch width, ROB space,
    /// window space and the *ready prefix* of the queue — dispatch-ready
    /// times are monotone non-decreasing in trace order (fetch cycles
    /// are), so a single forward scan finds every op that has cleared the
    /// frontend pipe. Leftover slots are attributed to the first blocking
    /// cause with the same precedence as the reference engine's per-slot
    /// loop: ROB full, then window full, then frontend starvation.
    fn dispatch(&mut self) -> u8 {
        let width = self.dispatch_width as usize;
        let start = self.dispatch_head;
        let limit = width
            .min(self.rob_size - self.rob_len())
            .min((self.window_size - self.unissued) as usize)
            .min(self.fetch_idx - start);
        let mut k = 0usize;
        while k < limit && self.slots[start + k].disp <= self.cycle {
            self.slots[start + k].disp = self.cycle;
            self.dispatch_op(start + k);
            k += 1;
        }
        self.dispatch_head = start + k;
        self.unissued += k as u32;
        self.slots_acct.used += k as u64;
        if let Some(p) = &mut self.pending {
            if !p.dispatched && p.branch_idx >= start && p.branch_idx < start + k {
                p.dispatched = true;
                p.dispatch_cycle = self.cycle;
                p.window_occupancy = (p.branch_idx + 1 - self.commit_head) as u32;
            }
        }
        if k < width {
            let rest = (width - k) as u64;
            if self.rob_len() >= self.rob_size {
                self.slots_acct.rob_full += rest;
            } else if self.unissued >= self.window_size {
                self.slots_acct.window_full += rest;
            } else {
                self.slots_acct.frontend_starved += rest;
            }
        }
        k as u8
    }

    /// Registers one dispatched op with the scheduler.
    ///
    /// Fast path: a producer index `p` satisfies
    /// `p.wrapping_add(1) <= commit_head` iff the slot is empty
    /// ([`NO_PRODUCER`](bmp_trace::compiled::NO_PRODUCER) wraps to 0) or
    /// the producer has already *committed* — and a committed producer's
    /// completion time is necessarily `<= cycle`, so the op is ready at
    /// `cycle + 1` without loading either producer's record. This skips
    /// the two data-dependent loads (often far behind the cursor, i.e.
    /// cache-cold) for the common case of long-since-resolved producers.
    #[inline]
    fn dispatch_op(&mut self, idx: usize) {
        let prods = self.ct.producers(idx);
        let ch = self.commit_head as u32;
        if prods[0].wrapping_add(1) <= ch && prods[1].wrapping_add(1) <= ch {
            let s = &mut self.slots[idx];
            s.ready_at = self.cycle + 1;
            s.waiter_head = NO_EDGE;
            s.pending = 0;
            self.sched.push_ready(idx as u32);
        } else {
            self.sched
                .on_dispatch(idx as u32, self.cycle, prods, &mut self.slots);
        }
    }

    fn fetch(&mut self) {
        if self.blocked_on.is_some() {
            self.fetch_acct.redirect_wait += 1;
            return;
        }
        if self.cycle < self.fetch_stall_until {
            self.fetch_acct.stall += 1;
            return;
        }
        let mut budget = self.fetch_width as usize;
        while budget > 0 && self.fetch_idx < self.n_ops {
            let cap_space = self.frontend_cap - (self.fetch_idx - self.dispatch_head);
            if cap_space == 0 {
                break;
            }
            let idx = self.fetch_idx;
            // The superblock map statically knows where fetch crosses an
            // I-cache line: fetch examines ops strictly in trace order,
            // so "line differs from the previous op's" is exactly the
            // reference engine's dynamic current-line compare.
            if self.sb.is_line_start(idx) && self.line_done_for != idx {
                let access = self.mem.fetch_access(self.ct.pc(idx));
                if access.l1i_miss {
                    // The access happened; when fetch resumes at this op
                    // after the stall it must not repeat it.
                    self.line_done_for = idx;
                    let extra = u64::from(access.latency - self.cfg.caches.l1i().hit_latency());
                    self.fetch_stall_until = self.cycle + 1 + extra;
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: if access.long_miss {
                            MissEventKind::ICacheLongMiss
                        } else {
                            MissEventKind::ICacheMiss
                        },
                    });
                    if let Some(acct) = &mut self.accountant {
                        acct.on_event(
                            idx as u64,
                            if access.long_miss {
                                IntervalEventKind::ICacheLongMiss
                            } else {
                                IntervalEventKind::ICacheMiss
                            },
                        );
                    }
                    // The line arrives after the stall; the op is fetched
                    // on a later cycle.
                    return;
                }
            }
            let disp = self.cycle + self.frontend_depth;
            let run = self.sb.run_len(idx) as usize;
            if run == 0 {
                // A branch is always its own superblock region. `done` is
                // initialized lazily here — the buffers come from the
                // scratch pool with a previous run's contents, and no
                // stage reads a slot past `fetch_idx`.
                self.slots[idx].done = NOT_DONE;
                self.slots[idx].disp = disp;
                self.fetch_idx += 1;
                budget -= 1;
                let pc = self.ct.pc(idx);
                let info = self
                    .ct
                    .branch_info(idx)
                    .expect("zero-run-length ops are branches");
                if self.handle_branch(pc, info) {
                    self.blocked_on = Some(idx);
                    self.pending = Some(PendingMiss {
                        branch_idx: idx,
                        fetch_cycle: self.cycle,
                        dispatch_cycle: 0,
                        window_occupancy: 0,
                        dispatched: false,
                    });
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: MissEventKind::BranchMispredict,
                    });
                    return;
                }
                if info.taken {
                    // Redirect through the BTB/RAS: the fetch group ends.
                    return;
                }
            } else {
                // A branch-free same-line run: admit as much of it as the
                // fetch budget and the frontend queue allow with one bulk
                // fill — no per-op flag loads, line compares or branch
                // tests.
                let k = run.min(budget).min(cap_space);
                for s in &mut self.slots[idx..idx + k] {
                    s.done = NOT_DONE;
                    s.disp = disp;
                }
                self.fetch_idx += k;
                budget -= k;
            }
        }
    }

    /// Runs the frontend's prediction machinery for a fetched branch.
    /// Returns `true` when the branch is mispredicted (direction or
    /// return target).
    fn handle_branch(&mut self, pc: u64, info: bmp_trace::BranchInfo) -> bool {
        match info.kind {
            BranchKind::Conditional => {
                let pred = self.predictor.predict(pc, info.taken);
                self.branch_stats.record(pred, info.taken);
                self.predictor.update(pc, info.taken);
                if pred != info.taken {
                    return true;
                }
                if info.taken {
                    self.btb_redirect(pc, info.target);
                }
                false
            }
            BranchKind::Jump => {
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Call => {
                self.ras.push(pc.wrapping_add(4));
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Return => {
                match self.ras.pop() {
                    Some(t) if t == info.target => false,
                    // Empty or stale RAS: the frontend follows a wrong
                    // target, which is a full misprediction.
                    _ => true,
                }
            }
            BranchKind::IndirectJump => {
                // The frontend follows the indirect-target predictor
                // (BTB last-target by default, gtarget when configured);
                // anything but the actual target is a full misprediction.
                let btb_target = self.btb.lookup(pc);
                let predicted = self.indirect.predict(pc, btb_target);
                self.indirect.update(pc, info.target);
                self.btb.update(pc, info.target);
                !matches!(predicted, Some(t) if t == info.target)
            }
        }
    }

    /// Models the BTB on a taken control transfer: a miss costs one fetch
    /// bubble while decode computes the target; the entry is installed
    /// either way.
    fn btb_redirect(&mut self, pc: u64, target: u64) {
        if self.btb.lookup(pc).is_none() {
            self.fetch_stall_until = self.cycle + 2;
        }
        self.btb.update(pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::{MicroOp, TraceBuilder};
    use bmp_uarch::{presets, OpClass, PredictorConfig};
    use bmp_workloads::micro;

    fn perfect_tiny() -> MachineConfig {
        presets::test_tiny()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap()
    }

    /// A loop of independent single-cycle ALU ops with a perfect
    /// predictor should sustain nearly the dispatch width.
    #[test]
    fn steady_state_reaches_dispatch_width() {
        // Long enough to amortize the cold-start I-cache misses.
        let trace = micro::chain_kernel(100_000, 16, 63, OpClass::IntAlu);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&trace);
        assert_eq!(res.instructions, 100_000);
        assert!(
            res.ipc() > 3.7,
            "balanced machine should sustain ~4 IPC, got {}",
            res.ipc()
        );
    }

    /// A serial chain runs at IPC 1 regardless of width.
    #[test]
    fn serial_chain_is_ipc_one() {
        let trace = micro::chain_kernel(10_000, 1, 64, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let ipc = res.ipc();
        assert!(
            (0.85..=1.05).contains(&ipc),
            "serial chain IPC should be ~1, got {ipc}"
        );
    }

    /// Chain of 3-cycle multiplies: IPC ~ 1/3.
    #[test]
    fn latency_scales_chain_throughput() {
        let trace = micro::latency_kernel(6_000, OpClass::IntMul);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let ipc = res.ipc();
        assert!(
            (0.28..=0.37).contains(&ipc),
            "3-cycle chain IPC should be ~0.33, got {ipc}"
        );
    }

    /// Completion must be exact: every op commits exactly once.
    #[test]
    fn commits_every_instruction() {
        for n in [1usize, 7, 100, 3_333] {
            let trace = micro::chain_kernel(n, 2, 16, OpClass::IntAlu);
            let res = Simulator::new(perfect_tiny()).run(&trace);
            assert_eq!(res.instructions, n as u64);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let res = Simulator::new(perfect_tiny()).run(&Trace::new());
        assert_eq!(res.instructions, 0);
        assert_eq!(res.cycles, 0);
    }

    /// With an always-wrong setup (always-not-taken on always-taken
    /// branches), every conditional mispredicts and each misprediction
    /// produces a record whose resolution >= 1.
    #[test]
    fn mispredictions_are_recorded() {
        let trace = micro::branch_resolution_kernel(4_000, 8, 1.0, 3);
        let cfg = perfect_tiny()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&trace);
        let conds = trace.conditional_branch_indices().len();
        assert_eq!(res.branch_stats.mispredictions() as usize, conds);
        assert_eq!(res.mispredicts.len(), conds);
        for m in &res.mispredicts {
            assert!(m.resolve_cycle > m.dispatch_cycle);
            assert!(m.dispatch_cycle >= m.fetch_cycle);
            assert!(m.window_occupancy >= 1);
        }
    }

    /// The defining property from the paper: the resolution time of a
    /// branch at the end of a serial chain grows with the chain length.
    #[test]
    fn resolution_grows_with_chain_length() {
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let mut last = 0.0;
        for chain in [2u32, 8, 24] {
            let trace = micro::branch_resolution_kernel(20_000, chain, 1.0, 5);
            let res = Simulator::new(cfg.clone()).run(&trace);
            let mean = res.mean_resolution().expect("has mispredictions");
            assert!(
                mean > last,
                "resolution must grow with chain length: chain {chain} gave {mean} (prev {last})"
            );
            last = mean;
        }
        // And it is far beyond the frontend depth for the longest chain.
        assert!(last > 10.0, "24-op chain resolution {last} too small");
    }

    /// Misprediction penalty: running the same trace with a perfect
    /// predictor must be faster, and the cycle difference per
    /// misprediction should approximate resolution + frontend depth.
    #[test]
    fn penalty_accounting_matches_two_run_difference() {
        let trace = micro::branch_resolution_kernel(30_000, 8, 0.5, 7);
        let base = presets::baseline_4wide();
        let bad = Simulator::new(
            base.to_builder()
                .predictor(PredictorConfig::AlwaysNotTaken)
                .build()
                .unwrap(),
        )
        .run(&trace);
        let good = Simulator::new(
            base.to_builder()
                .predictor(PredictorConfig::Perfect)
                .build()
                .unwrap(),
        )
        .run(&trace);
        assert!(bad.cycles > good.cycles);
        let per_miss = (bad.cycles - good.cycles) as f64 / bad.mispredicts.len() as f64;
        let accounted = bad.mean_penalty().unwrap();
        let ratio = per_miss / accounted;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "two-run penalty {per_miss} vs accounted {accounted}"
        );
    }

    /// Long D-cache misses must appear as events and crater IPC.
    #[test]
    fn long_dmisses_are_events() {
        // Working set far beyond the tiny L2 (8 KiB): misses everywhere.
        let trace = micro::memory_kernel(5_000, 8 * 1024 * 1024, 4, false, 9);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let long = res
            .events
            .iter()
            .filter(|e| e.kind == MissEventKind::LongDCacheMiss)
            .count();
        assert!(long > 500, "expected many long misses, got {long}");
        assert!(res.ipc() < 1.0);
    }

    /// A cache-resident working set produces no long-miss events after
    /// warmup.
    #[test]
    fn resident_working_set_is_quiet() {
        let trace = micro::memory_kernel(20_000, 512, 4, false, 9);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let long = res
            .events
            .iter()
            .filter(|e| e.kind == MissEventKind::LongDCacheMiss)
            .count();
        assert!(long <= 8, "resident set should only cold-miss, got {long}");
    }

    /// I-cache miss events fire when the code footprint exceeds L1I.
    #[test]
    fn icache_events_for_big_footprints() {
        // Straight-line-ish code via the workload generator.
        let mut profile = bmp_workloads::WorkloadProfile::default();
        profile.branches.code_footprint = 64 * 1024; // >> 1 KiB tiny L1I
        let trace = profile.generate(20_000, 3);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let imiss = res
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    MissEventKind::ICacheMiss | MissEventKind::ICacheLongMiss
                )
            })
            .count();
        assert!(imiss > 50, "expected I-cache events, got {imiss}");
    }

    /// The dispatch timeline, when recorded, covers every cycle and sums
    /// to the instruction count.
    #[test]
    fn timeline_accounts_for_all_dispatches() {
        let trace = micro::chain_kernel(5_000, 4, 32, OpClass::IntAlu);
        let sim = Simulator::with_options(perfect_tiny(), SimOptions::with_timeline());
        let res = sim.run(&trace);
        let t = res.dispatch_timeline.as_ref().unwrap();
        assert_eq!(t.len() as u64, res.cycles);
        let total: u64 = t.iter().map(|&d| u64::from(d)).sum();
        assert_eq!(total, res.instructions);
    }

    /// Deep frontends slow down mispredicting workloads but leave
    /// non-branching code almost unaffected.
    #[test]
    fn frontend_depth_hurts_only_mispredicting_code() {
        let branchy = micro::branch_resolution_kernel(20_000, 4, 0.5, 1);
        let straight = micro::chain_kernel(20_000, 8, 64, OpClass::IntAlu);
        let mk = |depth: u32, pred: PredictorConfig| {
            presets::baseline_4wide()
                .to_builder()
                .frontend_depth(depth)
                .predictor(pred)
                .build()
                .unwrap()
        };
        let shallow = Simulator::new(mk(5, PredictorConfig::AlwaysNotTaken)).run(&branchy);
        let deep = Simulator::new(mk(20, PredictorConfig::AlwaysNotTaken)).run(&branchy);
        assert!(
            deep.cycles as f64 > shallow.cycles as f64 * 1.3,
            "deep frontend must hurt branchy code: {} vs {}",
            deep.cycles,
            shallow.cycles
        );
        let s2 = Simulator::new(mk(5, PredictorConfig::Perfect)).run(&straight);
        let d2 = Simulator::new(mk(20, PredictorConfig::Perfect)).run(&straight);
        let ratio = d2.cycles as f64 / s2.cycles as f64;
        assert!(
            ratio < 1.05,
            "straight-line code should not care about frontend depth, ratio {ratio}"
        );
    }

    /// Window occupancy in misprediction records never exceeds the ROB.
    #[test]
    fn occupancy_bounded_by_rob() {
        let trace = micro::branch_resolution_kernel(10_000, 4, 0.5, 2);
        let cfg = presets::test_tiny()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg.clone()).run(&trace);
        for m in &res.mispredicts {
            assert!(m.window_occupancy <= cfg.rob_size);
        }
    }

    /// Stores must not block the pipeline the way loads do.
    #[test]
    fn store_misses_do_not_stall() {
        let mut b = TraceBuilder::new();
        for i in 0..4000u64 {
            // Alternate stores to a huge region with independent ALU ops.
            if i % 2 == 0 {
                b.push(MicroOp::store(0x1000, 0x6000_0000 + i * 4096, [None, None]))
                    .unwrap();
            } else {
                b.push(MicroOp::alu(0x1004, OpClass::IntAlu, [None, None]))
                    .unwrap();
            }
            // (pc consistency does not matter with a perfect predictor
            // and no branches; the fetch unit just streams.)
        }
        let trace = b.finish();
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        assert!(
            res.ipc() > 1.5,
            "store misses must be absorbed by the write buffer, ipc {}",
            res.ipc()
        );
    }

    /// Slot accounting is conservative: used slots equal dispatched
    /// instructions, and every offered slot is attributed somewhere.
    #[test]
    fn slot_accounting_is_conservative() {
        let trace = micro::chain_kernel(10_000, 4, 32, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        assert_eq!(res.slots.used, res.instructions);
        assert_eq!(
            res.slots.total(),
            res.cycles * 2, // tiny machine is 2-wide
            "every dispatch slot must be attributed"
        );
    }

    /// Memory-bound code loses its slots to a full ROB; branchy code
    /// loses them to frontend starvation.
    #[test]
    fn slot_accounting_attributes_the_right_bottleneck() {
        let membound = micro::memory_kernel(10_000, 64 * 1024 * 1024, 2, false, 3);
        let res = Simulator::new(presets::baseline_4wide()).run(&membound);
        assert!(
            res.slots.rob_full > res.slots.frontend_starved,
            "long misses should fill the ROB: {:?}",
            res.slots
        );

        let branchy = micro::branch_resolution_kernel(10_000, 2, 0.5, 3);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res2 = Simulator::new(cfg).run(&branchy);
        assert!(
            res2.slots.frontend_starved > res2.slots.rob_full,
            "mispredictions should starve the frontend: {:?}",
            res2.slots
        );
    }

    /// A serial dependence chain backs up the issue window.
    #[test]
    fn slot_accounting_sees_window_pressure() {
        let chain = micro::chain_kernel(10_000, 1, 64, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&chain);
        assert!(
            res.slots.window_full > res.slots.used / 4,
            "a serial chain should back up the window: {:?}",
            res.slots
        );
    }

    /// ROB occupancy: the histogram covers every cycle, and memory-bound
    /// code keeps the ROB nearly full while ideal code keeps it shallow.
    #[test]
    fn rob_occupancy_histogram_is_complete_and_meaningful() {
        let ideal = micro::chain_kernel(20_000, 16, 63, OpClass::IntAlu);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res = Simulator::new(cfg.clone()).run(&ideal);
        let total: u64 = res.rob_occupancy.iter().sum();
        assert_eq!(total, res.cycles, "one sample per cycle");
        assert_eq!(res.rob_occupancy.len() as u32, cfg.rob_size + 1);

        let membound = micro::memory_kernel(20_000, 64 * 1024 * 1024, 2, false, 3);
        let res2 = Simulator::new(cfg).run(&membound);
        assert!(
            res2.rob_full_fraction() > 0.3,
            "long misses should keep the ROB full: {}",
            res2.rob_full_fraction()
        );
        assert!(
            res2.mean_rob_occupancy() > res.mean_rob_occupancy(),
            "memory-bound occupancy {} should exceed ideal {}",
            res2.mean_rob_occupancy(),
            res.mean_rob_occupancy()
        );
    }

    /// Fetch accounting separates redirect waits from cache stalls.
    #[test]
    fn fetch_accounting_attributes_blockage() {
        let branchy = micro::branch_resolution_kernel(10_000, 8, 0.5, 3);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&branchy);
        assert!(
            res.fetch.redirect_wait > res.fetch.stall,
            "mispredictions dominate this kernel: {:?}",
            res.fetch
        );

        let mut profile = bmp_workloads::WorkloadProfile::default();
        profile.branches.code_footprint = 512 * 1024;
        profile.branches.easy_frac = 0.95;
        profile.branches.pattern_frac = 0.05;
        let icache_bound = profile.generate(20_000, 5);
        let perfect = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res2 = Simulator::new(perfect).run(&icache_bound);
        assert!(
            res2.fetch.stall > res2.fetch.redirect_wait,
            "I-cache misses dominate here: {:?}",
            res2.fetch
        );
    }

    /// Per-class issue stats reconcile with commit counts and reflect
    /// latency structure: a load-heavy kernel's loads wait longer than
    /// its ALU padding.
    #[test]
    fn class_issue_stats_reconcile() {
        let trace = micro::memory_kernel(10_000, 256 * 1024, 4, true, 3);
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        let issued: u64 = res.class_issue.iter().map(|c| c.issued).sum();
        assert_eq!(issued, res.instructions, "every committed op issued once");
        let load = res.class_issue[OpClass::Load.index()];
        let alu = res.class_issue[OpClass::IntAlu.index()];
        assert!(load.issued > 1000 && alu.issued > 1000);
        assert!(
            load.mean_wait() > alu.mean_wait(),
            "chained loads must wait longer than free ALU ops: {} vs {}",
            load.mean_wait(),
            alu.mean_wait()
        );
    }

    /// Warmup removes compulsory-miss pollution: a cache-resident
    /// workload shows near-zero long misses after warmup, and the
    /// accounting (instructions, slot totals, occupancy samples) stays
    /// exact over the measured region.
    #[test]
    fn warmup_removes_compulsory_misses() {
        let trace = micro::memory_kernel(40_000, 16 * 1024, 4, false, 9);
        let cold = Simulator::new(presets::baseline_4wide()).run(&trace);
        let warm =
            Simulator::with_options(presets::baseline_4wide(), SimOptions::with_warmup(10_000))
                .run(&trace);
        // The boundary lands on a commit-group edge, so up to
        // commit_width-1 extra ops may fall on the warmup side.
        assert!((29_990..=30_000).contains(&warm.instructions));
        assert!(
            warm.hierarchy.long_dmisses * 5 < cold.hierarchy.long_dmisses.max(1),
            "warmup should shed compulsory misses: {} vs {}",
            warm.hierarchy.long_dmisses,
            cold.hierarchy.long_dmisses
        );
        // Accounting invariants hold over the measured region, modulo
        // the instructions in flight when the boundary was crossed.
        let in_flight = u64::from(presets::baseline_4wide().rob_size);
        assert!(warm.slots.used <= warm.instructions);
        assert!(warm.instructions - warm.slots.used <= in_flight);
        let occ: u64 = warm.rob_occupancy.iter().sum();
        assert_eq!(occ, warm.cycles);
        let issued: u64 = warm.class_issue.iter().map(|c| c.issued).sum();
        assert!(warm.instructions - issued <= in_flight);
    }

    /// Zero warmup behaves exactly like the default.
    #[test]
    fn zero_warmup_is_identity() {
        let trace = micro::chain_kernel(5_000, 2, 32, OpClass::IntAlu);
        let a = Simulator::new(presets::test_tiny()).run(&trace);
        let b =
            Simulator::with_options(presets::test_tiny(), SimOptions::with_warmup(0)).run(&trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn max_cycles_guard_stops_runs() {
        let trace = micro::chain_kernel(100_000, 1, 64, OpClass::IntAlu);
        let opts = SimOptions {
            max_cycles: 100,
            ..SimOptions::default()
        };
        let err = Simulator::with_options(perfect_tiny(), opts)
            .try_run(&trace)
            .unwrap_err();
        let SimError::BudgetExceeded(f) = err;
        assert_eq!(f.budget, 100);
        assert_eq!(f.cycle, 100);
        assert_eq!(f.trace_ops, 100_000);
        assert!(f.committed < 100_000);
        // A serial dependence chain keeps the window mostly full while
        // the watchdog ticks down; the snapshot must see real state.
        assert!(f.fetched >= f.committed);
    }

    /// A run that fits its budget is unaffected by the watchdog: results
    /// with a generous explicit budget are bit-identical to the default.
    #[test]
    fn budget_is_inert_when_not_tripped() {
        let trace = micro::chain_kernel(5_000, 2, 32, OpClass::IntAlu);
        let plain = Simulator::new(presets::test_tiny()).run(&trace);
        let budgeted =
            Simulator::with_options(presets::test_tiny(), SimOptions::with_max_cycles(1 << 40))
                .run(&trace);
        assert_eq!(plain, budgeted);
    }

    /// The RAS predicts matched call/return pairs; unmatched returns
    /// mispredict.
    #[test]
    fn returns_predicted_via_ras() {
        let mut b = TraceBuilder::new();
        // call (0x100 -> 0x200), body, return (0x208 -> 0x104), repeated.
        for _ in 0..500 {
            b.push(MicroOp::branch(
                0x100,
                BranchKind::Call,
                true,
                0x200,
                [None, None],
            ))
            .unwrap();
            b.push(MicroOp::alu(0x200, OpClass::IntAlu, [None, None]))
                .unwrap();
            b.push(MicroOp::alu(0x204, OpClass::IntAlu, [None, None]))
                .unwrap();
            b.push(MicroOp::branch(
                0x208,
                BranchKind::Return,
                true,
                0x104,
                [None, None],
            ))
            .unwrap();
            b.push(MicroOp::branch(
                0x104,
                BranchKind::Jump,
                true,
                0x100,
                [None, None],
            ))
            .unwrap();
        }
        let trace = b.finish();
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        assert!(
            res.mispredicts.is_empty(),
            "balanced call/return should be RAS-predicted, got {} misses",
            res.mispredicts.len()
        );
    }

    /// The event-driven engine and the reference engine agree bit-for-bit
    /// across structurally different kernels and configurations. (The
    /// proptest in `tests/engine_equivalence.rs` covers random profiles;
    /// this pins the named micro-kernels deterministically.)
    #[test]
    fn engines_agree_on_micro_kernels() {
        let traces = vec![
            micro::chain_kernel(8_000, 4, 32, OpClass::IntAlu),
            micro::chain_kernel(3_000, 1, 64, OpClass::IntMul),
            micro::branch_resolution_kernel(8_000, 8, 0.5, 7),
            micro::memory_kernel(6_000, 8 * 1024 * 1024, 4, false, 9),
            micro::memory_kernel(6_000, 512, 2, true, 1),
        ];
        let configs = vec![
            presets::test_tiny(),
            presets::baseline_4wide(),
            presets::baseline_4wide()
                .to_builder()
                .predictor(PredictorConfig::AlwaysNotTaken)
                .build()
                .unwrap(),
        ];
        for trace in &traces {
            for cfg in &configs {
                let sim = Simulator::new(cfg.clone());
                let fast = sim.run_compiled(&trace.compile());
                let slow = sim.run_reference(trace);
                assert_eq!(fast, slow, "engines diverged on {cfg:?}");
            }
        }
    }

    /// Engine agreement holds under warmup and timeline options too —
    /// the statistics reset and per-cycle recording interact with
    /// idle-cycle skipping.
    #[test]
    fn engines_agree_with_options() {
        let trace = micro::memory_kernel(20_000, 16 * 1024, 4, false, 9);
        for opts in [
            SimOptions::with_timeline(),
            SimOptions::with_warmup(5_000),
            SimOptions {
                record_dispatch_timeline: true,
                max_cycles: 2_000,
                warmup_ops: 1_000,
                collect_intervals: false,
            },
            SimOptions::with_warmup(1_000).intervals(),
            SimOptions::with_intervals(),
        ] {
            let sim = Simulator::with_options(presets::baseline_4wide(), opts);
            let fast = sim.try_run_compiled(&trace.compile());
            let slow = sim.try_run_reference(&trace);
            assert_eq!(fast, slow, "engines diverged with {opts:?}");
        }
    }

    /// A prebuilt superblock map produces the same result as the on-the-
    /// fly path, and the phased API reports non-degenerate timings.
    #[test]
    fn prebuilt_superblock_map_matches() {
        let trace = micro::branch_resolution_kernel(10_000, 4, 0.5, 3);
        let ct = trace.compile();
        let sim = Simulator::new(presets::baseline_4wide());
        let sb = SuperblockMap::build(&ct, sim.config().caches.l1i().line_bytes());
        let plain = sim.run_compiled(&ct);
        let with_map = sim.run_compiled_with(&ct, &sb);
        assert_eq!(plain, with_map);
        let (phased, phases) = sim.try_run_compiled_phased(&ct, &sb).unwrap();
        assert_eq!(plain, phased);
        assert!(phases.execute_ns > 0, "cycle loop took measurable time");
    }

    /// Handing a map built for a different line size is a programming
    /// error and must fail loudly, not corrupt timing silently.
    #[test]
    #[should_panic(expected = "different L1I line size")]
    fn mismatched_superblock_map_panics() {
        let trace = micro::chain_kernel(100, 2, 16, OpClass::IntAlu);
        let ct = trace.compile();
        let sim = Simulator::new(presets::baseline_4wide());
        let wrong_line = sim.config().caches.l1i().line_bytes() * 2;
        let sb = SuperblockMap::build(&ct, wrong_line);
        let _ = sim.run_compiled_with(&ct, &sb);
    }

    /// Idle-cycle skipping must stop exactly at the budget cutoff even
    /// when the next event lies beyond it — and the forensic snapshot of
    /// the abort must match the reference engine's bit-for-bit.
    #[test]
    fn max_cycles_is_exact_under_skipping() {
        // Long memory misses create big skippable gaps.
        let trace = micro::memory_kernel(50_000, 64 * 1024 * 1024, 1, false, 3);
        let opts = SimOptions {
            max_cycles: 777,
            ..SimOptions::default()
        };
        let sim = Simulator::with_options(presets::test_tiny(), opts);
        let fast = sim.try_run_compiled(&trace.compile()).unwrap_err();
        let SimError::BudgetExceeded(f) = fast;
        assert_eq!(f.cycle, 777, "skipping overshot the budget");
        assert_eq!(
            SimError::BudgetExceeded(f),
            sim.try_run_reference(&trace).unwrap_err()
        );
    }
}
