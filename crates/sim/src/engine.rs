//! The cycle loop.
//!
//! Per-cycle stage order is commit → issue → dispatch → fetch, which gives
//! the conventional timing: an instruction dispatched in cycle `c` can
//! issue at `c + 1` at the earliest, a producer issued at `c` with latency
//! `L` wakes its consumers for issue at `c + L`, and a mispredicted branch
//! issued at `c` (1-cycle branch execution) redirects fetch at `c + 1`.

use bmp_branch::{
    build_predictor, BranchStats, Btb, DirectionPredictor, IndirectPredictor, ReturnAddressStack,
};
use bmp_cache::{DataOutcome, MemoryHierarchy};
use bmp_trace::{BranchKind, MicroOp, Trace};
use bmp_uarch::{FuKind, MachineConfig, OpClass, FU_KINDS};
use std::collections::VecDeque;

use crate::options::SimOptions;
use crate::result::{
    ClassIssueStats, FetchAccounting, MispredictRecord, MissEvent, MissEventKind, SimResult,
    SlotAccounting,
};

/// Sentinel for "not yet executed".
const NOT_DONE: u64 = u64::MAX;

/// A configured simulator, ready to run traces.
///
/// The simulator itself is immutable; each [`run`](Simulator::run) builds
/// fresh machine state, so one `Simulator` can be reused across traces and
/// the runs are independent.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    options: SimOptions,
}

impl Simulator {
    /// Creates a simulator for the given machine with default options.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: MachineConfig) -> Self {
        Self::with_options(config, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn with_options(config: MachineConfig, options: SimOptions) -> Self {
        config
            .validate()
            .expect("machine configuration must be valid");
        Self { config, options }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The simulation options.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    /// A 64-bit content fingerprint of the machine configuration and the
    /// simulation options together. Since a run is a pure function of
    /// `(config, options, trace)`, this plus a trace fingerprint fully
    /// addresses the [`SimResult`] — the experiment harness uses it as
    /// the simulation cache key.
    pub fn fingerprint(&self) -> u64 {
        bmp_uarch::fp::fingerprint_debug(&(&self.config, self.options))
    }

    /// Simulates the trace to completion and returns the measurements.
    pub fn run(&self, trace: &Trace) -> SimResult {
        Engine::new(&self.config, self.options, trace).run()
    }
}

struct RobSlot {
    idx: usize,
    issued: bool,
    dispatch_cycle: u64,
}

/// Per-misprediction bookkeeping while the branch is in flight.
struct PendingMiss {
    branch_idx: usize,
    fetch_cycle: u64,
    dispatch_cycle: u64,
    window_occupancy: u32,
    dispatched: bool,
}

struct Engine<'a> {
    cfg: &'a MachineConfig,
    opts: SimOptions,
    ops: &'a [MicroOp],

    cycle: u64,
    committed: u64,

    // Completion time per trace index (NOT_DONE until executed).
    done: Vec<u64>,

    // Frontend.
    fetch_idx: usize,
    fetch_stall_until: u64,
    blocked_on: Option<usize>,
    current_fetch_line: u64,
    frontend_q: VecDeque<(usize, u64)>,
    frontend_cap: usize,

    // Backend.
    rob: VecDeque<RobSlot>,
    unissued: u32,
    fu_busy: [Vec<u64>; 5],

    // Helpers.
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    indirect: IndirectPredictor,
    ras: ReturnAddressStack,
    mem: MemoryHierarchy,

    // Measurements.
    branch_stats: BranchStats,
    events: Vec<MissEvent>,
    mispredicts: Vec<MispredictRecord>,
    pending: Option<PendingMiss>,
    timeline: Option<Vec<u8>>,
    line_mask: u64,
    slots: SlotAccounting,
    fetch_acct: FetchAccounting,
    rob_occupancy: Vec<u64>,
    class_issue: [ClassIssueStats; 9],
    /// Set once the warmup boundary has been crossed (or immediately when
    /// no warmup is configured).
    warmed: bool,
    stats_start_cycle: u64,
    stats_start_committed: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a MachineConfig, opts: SimOptions, trace: &'a Trace) -> Self {
        let fu_busy = std::array::from_fn(|i| vec![0u64; usize::from(cfg.fus.count(FU_KINDS[i]))]);
        Self {
            cfg,
            opts,
            ops: trace.ops(),
            cycle: 0,
            committed: 0,
            done: vec![NOT_DONE; trace.len()],
            fetch_idx: 0,
            fetch_stall_until: 0,
            blocked_on: None,
            current_fetch_line: u64::MAX,
            frontend_q: VecDeque::new(),
            frontend_cap: (cfg.frontend_depth as usize * cfg.dispatch_width as usize)
                .max(cfg.fetch_width as usize),
            rob: VecDeque::with_capacity(cfg.rob_size as usize),
            unissued: 0,
            fu_busy,
            predictor: build_predictor(&cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            indirect: IndirectPredictor::build(&cfg.indirect_predictor),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            mem: MemoryHierarchy::new(&cfg.caches),
            branch_stats: BranchStats::new(),
            events: Vec::new(),
            mispredicts: Vec::new(),
            pending: None,
            timeline: opts.record_dispatch_timeline.then(Vec::new),
            line_mask: !u64::from(cfg.caches.l1i().line_bytes() - 1),
            slots: SlotAccounting::default(),
            fetch_acct: FetchAccounting::default(),
            rob_occupancy: vec![0; cfg.rob_size as usize + 1],
            class_issue: [ClassIssueStats::default(); 9],
            warmed: opts.warmup_ops == 0,
            stats_start_cycle: 0,
            stats_start_committed: 0,
        }
    }

    fn run(mut self) -> SimResult {
        let n = self.ops.len() as u64;
        while self.committed < n && self.cycle < self.opts.max_cycles {
            self.commit();
            if !self.warmed && self.committed >= self.opts.warmup_ops {
                self.reset_statistics();
            }
            self.issue();
            let dispatched = self.dispatch();
            self.fetch();
            self.rob_occupancy[self.rob.len()] += 1;
            if let Some(t) = &mut self.timeline {
                t.push(dispatched);
            }
            self.cycle += 1;
        }
        // Accounting conservation, mirrored by lint BMP203: every offered
        // dispatch slot is attributed to exactly one cause, and the ROB
        // histogram samples every measured cycle.
        let cycles = self.cycle - self.stats_start_cycle;
        debug_assert_eq!(
            self.slots.total(),
            cycles * u64::from(self.cfg.dispatch_width),
            "dispatch-slot accounting leaked slots (BMP203)"
        );
        debug_assert_eq!(
            self.rob_occupancy.iter().sum::<u64>(),
            cycles,
            "ROB-occupancy histogram missed cycles (BMP203)"
        );
        SimResult {
            cycles: self.cycle - self.stats_start_cycle,
            instructions: self.committed - self.stats_start_committed,
            branch_stats: self.branch_stats,
            hierarchy: self.mem.stats(),
            events: self.events,
            mispredicts: self.mispredicts,
            dispatch_timeline: self.timeline,
            frontend_depth: self.cfg.frontend_depth,
            slots: self.slots,
            fetch: self.fetch_acct,
            rob_occupancy: self.rob_occupancy,
            class_issue: self.class_issue,
        }
    }

    /// Crosses the warmup boundary: zero every statistic while keeping
    /// all machine state (caches, predictor, BTB, RAS, ROB contents).
    fn reset_statistics(&mut self) {
        self.warmed = true;
        self.stats_start_cycle = self.cycle;
        self.stats_start_committed = self.committed;
        self.branch_stats.reset();
        self.mem.reset_stats();
        self.events.clear();
        self.mispredicts.clear();
        self.slots = SlotAccounting::default();
        self.fetch_acct = FetchAccounting::default();
        self.rob_occupancy.iter_mut().for_each(|c| *c = 0);
        self.class_issue = [ClassIssueStats::default(); 9];
        if let Some(t) = &mut self.timeline {
            t.clear();
        }
    }

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        while budget > 0 {
            match self.rob.front() {
                Some(slot) if self.done[slot.idx] <= self.cycle => {
                    self.rob.pop_front();
                    self.committed += 1;
                    budget -= 1;
                }
                _ => break,
            }
        }
    }

    fn sources_ready(&self, idx: usize) -> bool {
        for d in self.ops[idx].src_distances() {
            let d = d as usize;
            if d <= idx && self.done[idx - d] > self.cycle {
                return false;
            }
        }
        true
    }

    /// Finds a free unit of `kind` and occupies it for `occupancy`
    /// cycles. Returns `false` when every unit is busy this cycle.
    fn take_fu(&mut self, kind: FuKind, occupancy: u64) -> bool {
        let units = &mut self.fu_busy[kind.index()];
        for busy_until in units.iter_mut() {
            if *busy_until <= self.cycle {
                *busy_until = self.cycle + occupancy;
                return true;
            }
        }
        false
    }

    fn issue(&mut self) {
        let mut budget = self.cfg.issue_width;
        // Oldest-first select over the un-issued window.
        for slot_pos in 0..self.rob.len() {
            if budget == 0 {
                break;
            }
            let (idx, issued, dispatch_cycle) = {
                let s = &self.rob[slot_pos];
                (s.idx, s.issued, s.dispatch_cycle)
            };
            if issued || !self.sources_ready(idx) {
                continue;
            }
            let class = self.ops[idx].class();
            let kind = class.fu_kind();
            // Divides hold their unit for the full latency; everything
            // else is pipelined (one issue per unit per cycle).
            let base_lat = u64::from(self.cfg.latencies.latency(class));
            let occupancy = match class {
                OpClass::IntDiv | OpClass::FpDiv => base_lat,
                _ => 1,
            };
            if !self.take_fu(kind, occupancy) {
                continue;
            }
            let latency = match class {
                OpClass::Load => {
                    let addr = self.ops[idx].mem_addr().expect("loads carry addresses");
                    let access = self.mem.data_access_at(self.ops[idx].pc(), addr);
                    if access.outcome == DataOutcome::LongMiss {
                        self.events.push(MissEvent {
                            trace_idx: idx,
                            cycle: self.cycle,
                            kind: MissEventKind::LongDCacheMiss,
                        });
                    }
                    u64::from(access.latency)
                }
                OpClass::Store => {
                    // Stores retire through a write buffer: the cache sees
                    // the access (write-allocate) but the pipeline is not
                    // held up by the miss.
                    let addr = self.ops[idx].mem_addr().expect("stores carry addresses");
                    let _ = self.mem.data_access_at(self.ops[idx].pc(), addr);
                    base_lat
                }
                _ => base_lat,
            };
            self.done[idx] = self.cycle + latency;
            self.rob[slot_pos].issued = true;
            self.unissued -= 1;
            budget -= 1;
            let cs = &mut self.class_issue[class.index()];
            cs.issued += 1;
            cs.wait_cycles += self.cycle - dispatch_cycle;
            // A mispredicted branch redirects fetch when it resolves.
            if self.blocked_on == Some(idx) {
                self.blocked_on = None;
                self.fetch_stall_until = self.fetch_stall_until.max(self.done[idx]);
                let pending = self
                    .pending
                    .take()
                    .expect("pending record for blocked branch");
                debug_assert!(pending.dispatched);
                self.mispredicts.push(MispredictRecord {
                    branch_idx: idx,
                    fetch_cycle: pending.fetch_cycle,
                    dispatch_cycle: pending.dispatch_cycle,
                    resolve_cycle: self.done[idx],
                    window_occupancy: pending.window_occupancy,
                });
            }
        }
    }

    fn dispatch(&mut self) -> u8 {
        let mut dispatched = 0u8;
        while u32::from(dispatched) < self.cfg.dispatch_width {
            if self.rob.len() >= self.cfg.rob_size as usize {
                self.slots.rob_full += u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            if self.unissued >= self.cfg.window_size {
                self.slots.window_full +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            let front = self.frontend_q.front().copied();
            let Some((idx, ready)) = front else {
                self.slots.frontend_starved +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            };
            if ready > self.cycle {
                self.slots.frontend_starved +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            self.frontend_q.pop_front();
            self.rob.push_back(RobSlot {
                idx,
                issued: false,
                dispatch_cycle: self.cycle,
            });
            self.unissued += 1;
            dispatched += 1;
            self.slots.used += 1;
            if let Some(p) = &mut self.pending {
                if p.branch_idx == idx {
                    p.dispatched = true;
                    p.dispatch_cycle = self.cycle;
                    p.window_occupancy = self.rob.len() as u32;
                }
            }
        }
        dispatched
    }

    fn fetch(&mut self) {
        if self.blocked_on.is_some() {
            self.fetch_acct.redirect_wait += 1;
            return;
        }
        if self.cycle < self.fetch_stall_until {
            self.fetch_acct.stall += 1;
            return;
        }
        let mut budget = self.cfg.effective_fetch_width();
        while budget > 0
            && self.fetch_idx < self.ops.len()
            && self.frontend_q.len() < self.frontend_cap
        {
            let idx = self.fetch_idx;
            let op = &self.ops[idx];
            let line = op.pc() & self.line_mask;
            if line != self.current_fetch_line {
                let access = self.mem.fetch_access(op.pc());
                self.current_fetch_line = line;
                if access.l1i_miss {
                    let extra = u64::from(access.latency - self.cfg.caches.l1i().hit_latency());
                    self.fetch_stall_until = self.cycle + 1 + extra;
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: if access.long_miss {
                            MissEventKind::ICacheLongMiss
                        } else {
                            MissEventKind::ICacheMiss
                        },
                    });
                    // The line arrives after the stall; the op is fetched
                    // on a later cycle.
                    return;
                }
            }
            // The op is fetched this cycle.
            self.frontend_q
                .push_back((idx, self.cycle + u64::from(self.cfg.frontend_depth)));
            self.fetch_idx += 1;
            budget -= 1;
            if let Some(info) = op.branch_info() {
                let mispredicted = self.handle_branch(idx, op.pc(), info);
                if mispredicted {
                    self.blocked_on = Some(idx);
                    self.pending = Some(PendingMiss {
                        branch_idx: idx,
                        fetch_cycle: self.cycle,
                        dispatch_cycle: 0,
                        window_occupancy: 0,
                        dispatched: false,
                    });
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: MissEventKind::BranchMispredict,
                    });
                    return;
                }
                if info.taken {
                    // Redirect through the BTB/RAS: the fetch group ends.
                    return;
                }
            }
        }
    }

    /// Runs the frontend's prediction machinery for a fetched branch.
    /// Returns `true` when the branch is mispredicted (direction or
    /// return target).
    fn handle_branch(&mut self, _idx: usize, pc: u64, info: bmp_trace::BranchInfo) -> bool {
        match info.kind {
            BranchKind::Conditional => {
                let pred = self.predictor.predict(pc, info.taken);
                self.branch_stats.record(pred, info.taken);
                self.predictor.update(pc, info.taken);
                if pred != info.taken {
                    return true;
                }
                if info.taken {
                    self.btb_redirect(pc, info.target);
                }
                false
            }
            BranchKind::Jump => {
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Call => {
                self.ras.push(pc.wrapping_add(4));
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Return => {
                match self.ras.pop() {
                    Some(t) if t == info.target => false,
                    // Empty or stale RAS: the frontend follows a wrong
                    // target, which is a full misprediction.
                    _ => true,
                }
            }
            BranchKind::IndirectJump => {
                // The frontend follows the indirect-target predictor
                // (BTB last-target by default, gtarget when configured);
                // anything but the actual target is a full misprediction.
                let btb_target = self.btb.lookup(pc);
                let predicted = self.indirect.predict(pc, btb_target);
                self.indirect.update(pc, info.target);
                self.btb.update(pc, info.target);
                !matches!(predicted, Some(t) if t == info.target)
            }
        }
    }

    /// Models the BTB on a taken control transfer: a miss costs one fetch
    /// bubble while decode computes the target; the entry is installed
    /// either way.
    fn btb_redirect(&mut self, pc: u64, target: u64) {
        if self.btb.lookup(pc).is_none() {
            self.fetch_stall_until = self.cycle + 2;
        }
        self.btb.update(pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::TraceBuilder;
    use bmp_uarch::{presets, PredictorConfig};
    use bmp_workloads::micro;

    fn perfect_tiny() -> MachineConfig {
        presets::test_tiny()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap()
    }

    /// A loop of independent single-cycle ALU ops with a perfect
    /// predictor should sustain nearly the dispatch width.
    #[test]
    fn steady_state_reaches_dispatch_width() {
        // Long enough to amortize the cold-start I-cache misses.
        let trace = micro::chain_kernel(100_000, 16, 63, OpClass::IntAlu);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&trace);
        assert_eq!(res.instructions, 100_000);
        assert!(
            res.ipc() > 3.7,
            "balanced machine should sustain ~4 IPC, got {}",
            res.ipc()
        );
    }

    /// A serial chain runs at IPC 1 regardless of width.
    #[test]
    fn serial_chain_is_ipc_one() {
        let trace = micro::chain_kernel(10_000, 1, 64, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let ipc = res.ipc();
        assert!(
            (0.85..=1.05).contains(&ipc),
            "serial chain IPC should be ~1, got {ipc}"
        );
    }

    /// Chain of 3-cycle multiplies: IPC ~ 1/3.
    #[test]
    fn latency_scales_chain_throughput() {
        let trace = micro::latency_kernel(6_000, OpClass::IntMul);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let ipc = res.ipc();
        assert!(
            (0.28..=0.37).contains(&ipc),
            "3-cycle chain IPC should be ~0.33, got {ipc}"
        );
    }

    /// Completion must be exact: every op commits exactly once.
    #[test]
    fn commits_every_instruction() {
        for n in [1usize, 7, 100, 3_333] {
            let trace = micro::chain_kernel(n, 2, 16, OpClass::IntAlu);
            let res = Simulator::new(perfect_tiny()).run(&trace);
            assert_eq!(res.instructions, n as u64);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let res = Simulator::new(perfect_tiny()).run(&Trace::new());
        assert_eq!(res.instructions, 0);
        assert_eq!(res.cycles, 0);
    }

    /// With an always-wrong setup (always-not-taken on always-taken
    /// branches), every conditional mispredicts and each misprediction
    /// produces a record whose resolution >= 1.
    #[test]
    fn mispredictions_are_recorded() {
        let trace = micro::branch_resolution_kernel(4_000, 8, 1.0, 3);
        let cfg = perfect_tiny()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&trace);
        let conds = trace.conditional_branch_indices().len();
        assert_eq!(res.branch_stats.mispredictions() as usize, conds);
        assert_eq!(res.mispredicts.len(), conds);
        for m in &res.mispredicts {
            assert!(m.resolve_cycle > m.dispatch_cycle);
            assert!(m.dispatch_cycle >= m.fetch_cycle);
            assert!(m.window_occupancy >= 1);
        }
    }

    /// The defining property from the paper: the resolution time of a
    /// branch at the end of a serial chain grows with the chain length.
    #[test]
    fn resolution_grows_with_chain_length() {
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let mut last = 0.0;
        for chain in [2u32, 8, 24] {
            let trace = micro::branch_resolution_kernel(20_000, chain, 1.0, 5);
            let res = Simulator::new(cfg.clone()).run(&trace);
            let mean = res.mean_resolution().expect("has mispredictions");
            assert!(
                mean > last,
                "resolution must grow with chain length: chain {chain} gave {mean} (prev {last})"
            );
            last = mean;
        }
        // And it is far beyond the frontend depth for the longest chain.
        assert!(last > 10.0, "24-op chain resolution {last} too small");
    }

    /// Misprediction penalty: running the same trace with a perfect
    /// predictor must be faster, and the cycle difference per
    /// misprediction should approximate resolution + frontend depth.
    #[test]
    fn penalty_accounting_matches_two_run_difference() {
        let trace = micro::branch_resolution_kernel(30_000, 8, 0.5, 7);
        let base = presets::baseline_4wide();
        let bad = Simulator::new(
            base.to_builder()
                .predictor(PredictorConfig::AlwaysNotTaken)
                .build()
                .unwrap(),
        )
        .run(&trace);
        let good = Simulator::new(
            base.to_builder()
                .predictor(PredictorConfig::Perfect)
                .build()
                .unwrap(),
        )
        .run(&trace);
        assert!(bad.cycles > good.cycles);
        let per_miss = (bad.cycles - good.cycles) as f64 / bad.mispredicts.len() as f64;
        let accounted = bad.mean_penalty().unwrap();
        let ratio = per_miss / accounted;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "two-run penalty {per_miss} vs accounted {accounted}"
        );
    }

    /// Long D-cache misses must appear as events and crater IPC.
    #[test]
    fn long_dmisses_are_events() {
        // Working set far beyond the tiny L2 (8 KiB): misses everywhere.
        let trace = micro::memory_kernel(5_000, 8 * 1024 * 1024, 4, false, 9);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let long = res
            .events
            .iter()
            .filter(|e| e.kind == MissEventKind::LongDCacheMiss)
            .count();
        assert!(long > 500, "expected many long misses, got {long}");
        assert!(res.ipc() < 1.0);
    }

    /// A cache-resident working set produces no long-miss events after
    /// warmup.
    #[test]
    fn resident_working_set_is_quiet() {
        let trace = micro::memory_kernel(20_000, 512, 4, false, 9);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let long = res
            .events
            .iter()
            .filter(|e| e.kind == MissEventKind::LongDCacheMiss)
            .count();
        assert!(long <= 8, "resident set should only cold-miss, got {long}");
    }

    /// I-cache miss events fire when the code footprint exceeds L1I.
    #[test]
    fn icache_events_for_big_footprints() {
        // Straight-line-ish code via the workload generator.
        let mut profile = bmp_workloads::WorkloadProfile::default();
        profile.branches.code_footprint = 64 * 1024; // >> 1 KiB tiny L1I
        let trace = profile.generate(20_000, 3);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        let imiss = res
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    MissEventKind::ICacheMiss | MissEventKind::ICacheLongMiss
                )
            })
            .count();
        assert!(imiss > 50, "expected I-cache events, got {imiss}");
    }

    /// The dispatch timeline, when recorded, covers every cycle and sums
    /// to the instruction count.
    #[test]
    fn timeline_accounts_for_all_dispatches() {
        let trace = micro::chain_kernel(5_000, 4, 32, OpClass::IntAlu);
        let sim = Simulator::with_options(perfect_tiny(), SimOptions::with_timeline());
        let res = sim.run(&trace);
        let t = res.dispatch_timeline.as_ref().unwrap();
        assert_eq!(t.len() as u64, res.cycles);
        let total: u64 = t.iter().map(|&d| u64::from(d)).sum();
        assert_eq!(total, res.instructions);
    }

    /// Deep frontends slow down mispredicting workloads but leave
    /// non-branching code almost unaffected.
    #[test]
    fn frontend_depth_hurts_only_mispredicting_code() {
        let branchy = micro::branch_resolution_kernel(20_000, 4, 0.5, 1);
        let straight = micro::chain_kernel(20_000, 8, 64, OpClass::IntAlu);
        let mk = |depth: u32, pred: PredictorConfig| {
            presets::baseline_4wide()
                .to_builder()
                .frontend_depth(depth)
                .predictor(pred)
                .build()
                .unwrap()
        };
        let shallow = Simulator::new(mk(5, PredictorConfig::AlwaysNotTaken)).run(&branchy);
        let deep = Simulator::new(mk(20, PredictorConfig::AlwaysNotTaken)).run(&branchy);
        assert!(
            deep.cycles as f64 > shallow.cycles as f64 * 1.3,
            "deep frontend must hurt branchy code: {} vs {}",
            deep.cycles,
            shallow.cycles
        );
        let s2 = Simulator::new(mk(5, PredictorConfig::Perfect)).run(&straight);
        let d2 = Simulator::new(mk(20, PredictorConfig::Perfect)).run(&straight);
        let ratio = d2.cycles as f64 / s2.cycles as f64;
        assert!(
            ratio < 1.05,
            "straight-line code should not care about frontend depth, ratio {ratio}"
        );
    }

    /// Window occupancy in misprediction records never exceeds the ROB.
    #[test]
    fn occupancy_bounded_by_rob() {
        let trace = micro::branch_resolution_kernel(10_000, 4, 0.5, 2);
        let cfg = presets::test_tiny()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg.clone()).run(&trace);
        for m in &res.mispredicts {
            assert!(m.window_occupancy <= cfg.rob_size);
        }
    }

    /// Stores must not block the pipeline the way loads do.
    #[test]
    fn store_misses_do_not_stall() {
        let mut b = TraceBuilder::new();
        for i in 0..4000u64 {
            // Alternate stores to a huge region with independent ALU ops.
            if i % 2 == 0 {
                b.push(MicroOp::store(0x1000, 0x6000_0000 + i * 4096, [None, None]))
                    .unwrap();
            } else {
                b.push(MicroOp::alu(0x1004, OpClass::IntAlu, [None, None]))
                    .unwrap();
            }
            // (pc consistency does not matter with a perfect predictor
            // and no branches; the fetch unit just streams.)
        }
        let trace = b.finish();
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        assert!(
            res.ipc() > 1.5,
            "store misses must be absorbed by the write buffer, ipc {}",
            res.ipc()
        );
    }

    /// Slot accounting is conservative: used slots equal dispatched
    /// instructions, and every offered slot is attributed somewhere.
    #[test]
    fn slot_accounting_is_conservative() {
        let trace = micro::chain_kernel(10_000, 4, 32, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&trace);
        assert_eq!(res.slots.used, res.instructions);
        assert_eq!(
            res.slots.total(),
            res.cycles * 2, // tiny machine is 2-wide
            "every dispatch slot must be attributed"
        );
    }

    /// Memory-bound code loses its slots to a full ROB; branchy code
    /// loses them to frontend starvation.
    #[test]
    fn slot_accounting_attributes_the_right_bottleneck() {
        let membound = micro::memory_kernel(10_000, 64 * 1024 * 1024, 2, false, 3);
        let res = Simulator::new(presets::baseline_4wide()).run(&membound);
        assert!(
            res.slots.rob_full > res.slots.frontend_starved,
            "long misses should fill the ROB: {:?}",
            res.slots
        );

        let branchy = micro::branch_resolution_kernel(10_000, 2, 0.5, 3);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res2 = Simulator::new(cfg).run(&branchy);
        assert!(
            res2.slots.frontend_starved > res2.slots.rob_full,
            "mispredictions should starve the frontend: {:?}",
            res2.slots
        );
    }

    /// A serial dependence chain backs up the issue window.
    #[test]
    fn slot_accounting_sees_window_pressure() {
        let chain = micro::chain_kernel(10_000, 1, 64, OpClass::IntAlu);
        let res = Simulator::new(perfect_tiny()).run(&chain);
        assert!(
            res.slots.window_full > res.slots.used / 4,
            "a serial chain should back up the window: {:?}",
            res.slots
        );
    }

    /// ROB occupancy: the histogram covers every cycle, and memory-bound
    /// code keeps the ROB nearly full while ideal code keeps it shallow.
    #[test]
    fn rob_occupancy_histogram_is_complete_and_meaningful() {
        let ideal = micro::chain_kernel(20_000, 16, 63, OpClass::IntAlu);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res = Simulator::new(cfg.clone()).run(&ideal);
        let total: u64 = res.rob_occupancy.iter().sum();
        assert_eq!(total, res.cycles, "one sample per cycle");
        assert_eq!(res.rob_occupancy.len() as u32, cfg.rob_size + 1);

        let membound = micro::memory_kernel(20_000, 64 * 1024 * 1024, 2, false, 3);
        let res2 = Simulator::new(cfg).run(&membound);
        assert!(
            res2.rob_full_fraction() > 0.3,
            "long misses should keep the ROB full: {}",
            res2.rob_full_fraction()
        );
        assert!(
            res2.mean_rob_occupancy() > res.mean_rob_occupancy(),
            "memory-bound occupancy {} should exceed ideal {}",
            res2.mean_rob_occupancy(),
            res.mean_rob_occupancy()
        );
    }

    /// Fetch accounting separates redirect waits from cache stalls.
    #[test]
    fn fetch_accounting_attributes_blockage() {
        let branchy = micro::branch_resolution_kernel(10_000, 8, 0.5, 3);
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let res = Simulator::new(cfg).run(&branchy);
        assert!(
            res.fetch.redirect_wait > res.fetch.stall,
            "mispredictions dominate this kernel: {:?}",
            res.fetch
        );

        let mut profile = bmp_workloads::WorkloadProfile::default();
        profile.branches.code_footprint = 512 * 1024;
        profile.branches.easy_frac = 0.95;
        profile.branches.pattern_frac = 0.05;
        let icache_bound = profile.generate(20_000, 5);
        let perfect = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let res2 = Simulator::new(perfect).run(&icache_bound);
        assert!(
            res2.fetch.stall > res2.fetch.redirect_wait,
            "I-cache misses dominate here: {:?}",
            res2.fetch
        );
    }

    /// Per-class issue stats reconcile with commit counts and reflect
    /// latency structure: a load-heavy kernel's loads wait longer than
    /// its ALU padding.
    #[test]
    fn class_issue_stats_reconcile() {
        let trace = micro::memory_kernel(10_000, 256 * 1024, 4, true, 3);
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        let issued: u64 = res.class_issue.iter().map(|c| c.issued).sum();
        assert_eq!(issued, res.instructions, "every committed op issued once");
        let load = res.class_issue[OpClass::Load.index()];
        let alu = res.class_issue[OpClass::IntAlu.index()];
        assert!(load.issued > 1000 && alu.issued > 1000);
        assert!(
            load.mean_wait() > alu.mean_wait(),
            "chained loads must wait longer than free ALU ops: {} vs {}",
            load.mean_wait(),
            alu.mean_wait()
        );
    }

    /// Warmup removes compulsory-miss pollution: a cache-resident
    /// workload shows near-zero long misses after warmup, and the
    /// accounting (instructions, slot totals, occupancy samples) stays
    /// exact over the measured region.
    #[test]
    fn warmup_removes_compulsory_misses() {
        let trace = micro::memory_kernel(40_000, 16 * 1024, 4, false, 9);
        let cold = Simulator::new(presets::baseline_4wide()).run(&trace);
        let warm =
            Simulator::with_options(presets::baseline_4wide(), SimOptions::with_warmup(10_000))
                .run(&trace);
        // The boundary lands on a commit-group edge, so up to
        // commit_width-1 extra ops may fall on the warmup side.
        assert!((29_990..=30_000).contains(&warm.instructions));
        assert!(
            warm.hierarchy.long_dmisses * 5 < cold.hierarchy.long_dmisses.max(1),
            "warmup should shed compulsory misses: {} vs {}",
            warm.hierarchy.long_dmisses,
            cold.hierarchy.long_dmisses
        );
        // Accounting invariants hold over the measured region, modulo
        // the instructions in flight when the boundary was crossed.
        let in_flight = u64::from(presets::baseline_4wide().rob_size);
        assert!(warm.slots.used <= warm.instructions);
        assert!(warm.instructions - warm.slots.used <= in_flight);
        let occ: u64 = warm.rob_occupancy.iter().sum();
        assert_eq!(occ, warm.cycles);
        let issued: u64 = warm.class_issue.iter().map(|c| c.issued).sum();
        assert!(warm.instructions - issued <= in_flight);
    }

    /// Zero warmup behaves exactly like the default.
    #[test]
    fn zero_warmup_is_identity() {
        let trace = micro::chain_kernel(5_000, 2, 32, OpClass::IntAlu);
        let a = Simulator::new(presets::test_tiny()).run(&trace);
        let b =
            Simulator::with_options(presets::test_tiny(), SimOptions::with_warmup(0)).run(&trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn max_cycles_guard_stops_runs() {
        let trace = micro::chain_kernel(100_000, 1, 64, OpClass::IntAlu);
        let opts = SimOptions {
            max_cycles: 100,
            ..SimOptions::default()
        };
        let res = Simulator::with_options(perfect_tiny(), opts).run(&trace);
        assert_eq!(res.cycles, 100);
        assert!(res.instructions < 100_000);
    }

    /// The RAS predicts matched call/return pairs; unmatched returns
    /// mispredict.
    #[test]
    fn returns_predicted_via_ras() {
        let mut b = TraceBuilder::new();
        // call (0x100 -> 0x200), body, return (0x208 -> 0x104), repeated.
        for _ in 0..500 {
            b.push(MicroOp::branch(
                0x100,
                BranchKind::Call,
                true,
                0x200,
                [None, None],
            ))
            .unwrap();
            b.push(MicroOp::alu(0x200, OpClass::IntAlu, [None, None]))
                .unwrap();
            b.push(MicroOp::alu(0x204, OpClass::IntAlu, [None, None]))
                .unwrap();
            b.push(MicroOp::branch(
                0x208,
                BranchKind::Return,
                true,
                0x104,
                [None, None],
            ))
            .unwrap();
            b.push(MicroOp::branch(
                0x104,
                BranchKind::Jump,
                true,
                0x100,
                [None, None],
            ))
            .unwrap();
        }
        let trace = b.finish();
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        assert!(
            res.mispredicts.is_empty(),
            "balanced call/return should be RAS-predicted, got {} misses",
            res.mispredicts.len()
        );
    }
}
