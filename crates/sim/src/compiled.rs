//! Config-derived per-class lookup tables for the compiled engine.
//!
//! A [`CompiledTrace`](bmp_trace::CompiledTrace) is deliberately
//! config-independent (so the experiment harness can cache one compiled
//! form per trace and reuse it across every machine configuration). The
//! config-dependent half of the op decode — execution latency, functional
//! unit and divide behavior per [`OpClass`] — is flattened here into three
//! 9-entry arrays, built once per run, indexed by
//! [`OpClass::index`].

use bmp_uarch::{MachineConfig, OpClass, FU_KINDS, OP_CLASSES};

/// One class's issue-time facts, packed so the issue stage pays a single
/// indexed load (one bounds check, one or two adjacent cache lines for
/// the whole table) instead of four scattered array lookups per op.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClassEntry {
    /// Execution latency (`>= 1`, enforced by config validation — the
    /// scheduler's "consumers wake strictly later" invariant rests on
    /// this).
    pub latency: u64,
    /// FU occupancy per issue: divides hold their unit for the full
    /// latency, everything else is pipelined (one cycle).
    pub occupancy: u64,
    /// Functional-unit pool index (`FuKind::index`).
    pub fu: u8,
    /// `true` when arbitration for this class can never reject: the pool
    /// is fully pipelined (no class sharing it holds a unit across
    /// cycles) and at least `issue_width` wide, so even a cycle that
    /// issues nothing but this pool's classes cannot exhaust it. The
    /// issue stage skips [`FuPools::take`] outright for such classes —
    /// for a balanced config that is the ALU pool, i.e. most ops.
    pub unconstrained: bool,
}

/// Per-class latency/FU/divide tables derived from a [`MachineConfig`],
/// indexed by [`OpClass::index`].
#[derive(Debug, Clone)]
pub(crate) struct ClassTables {
    pub entries: [ClassEntry; 9],
}

impl ClassTables {
    pub(crate) fn new(cfg: &MachineConfig) -> Self {
        let mut t = Self {
            entries: [ClassEntry::default(); 9],
        };
        for class in OP_CLASSES {
            let i = class.index();
            let lat = u64::from(cfg.latencies.latency(class));
            t.entries[i].latency = lat;
            t.entries[i].fu = class.fu_kind().index() as u8;
            t.entries[i].occupancy = match class {
                OpClass::IntDiv | OpClass::FpDiv => lat,
                _ => 1,
            };
        }
        for class in OP_CLASSES {
            let i = class.index();
            let pool_pipelined = OP_CLASSES
                .iter()
                .filter(|c| c.fu_kind() == class.fu_kind())
                .all(|c| t.entries[c.index()].occupancy == 1);
            t.entries[i].unconstrained =
                pool_pipelined && u32::from(cfg.fus.count(class.fu_kind())) >= cfg.issue_width;
        }
        t
    }
}

/// Counting functional-unit arbitration, replacing the per-unit
/// busy-scan of the original engine.
///
/// Only the number of free units in a pool ever matters for an
/// accept/reject decision — *which* unit an op lands on is unobservable.
/// So instead of a `busy_until` slot per unit, each pool keeps a lazily
/// refreshed count of units busy in the current cycle plus the expiry
/// times of multi-cycle occupations (divides); everything else occupies
/// its unit only for the remainder of the issuing cycle and is released
/// implicitly by the next cycle's refresh. This turns the common case —
/// pipelined op on a multi-unit pool — into one compare and one
/// increment, independent of pool size.
#[derive(Debug, Clone)]
pub(crate) struct FuPools {
    pools: [FuPool; 5],
}

#[derive(Debug, Clone)]
struct FuPool {
    /// Units in the pool.
    size: u32,
    /// Cycle `used`/`holds` were last refreshed for.
    stamp: u64,
    /// Units busy during `stamp` (multi-cycle holds + same-cycle takes).
    used: u32,
    /// Expiry times (`busy_until`) of multi-cycle occupations; a unit
    /// with expiry `e` is busy through cycle `e - 1`. Bounded by pool
    /// size, so the refresh scan is a handful of elements at most.
    holds: Vec<u64>,
}

impl FuPools {
    pub(crate) fn new(cfg: &MachineConfig) -> Self {
        Self {
            pools: std::array::from_fn(|i| FuPool {
                size: u32::from(cfg.fus.count(FU_KINDS[i])),
                stamp: 0,
                used: 0,
                holds: Vec::new(),
            }),
        }
    }

    /// Claims a unit in pool `kind_idx` for `occupancy` cycles starting
    /// at `cycle`. Returns `false` when every unit is busy this cycle.
    /// `cycle` must be non-decreasing across calls (it is the engine
    /// clock).
    #[inline]
    pub(crate) fn take(&mut self, kind_idx: usize, cycle: u64, occupancy: u64) -> bool {
        let pool = &mut self.pools[kind_idx];
        if pool.stamp != cycle {
            pool.stamp = cycle;
            pool.holds.retain(|&e| e > cycle);
            pool.used = pool.holds.len() as u32;
        }
        if pool.used >= pool.size {
            return false;
        }
        pool.used += 1;
        if occupancy > 1 {
            pool.holds.push(cycle + occupancy);
        }
        true
    }

    /// Earliest cycle at which a `take` rejected at `cycle` could
    /// possibly succeed. Usually `cycle + 1` (some unit was only held by
    /// a pipelined op and frees at the cycle boundary) — but when every
    /// unit is occupied by a multi-cycle hold, nothing can free before
    /// the earliest hold expiry, so every retry up to that cycle is
    /// guaranteed to reject too. Must be called in the same cycle as the
    /// rejecting `take` (the lazily refreshed state is what makes the
    /// bound exact).
    pub(crate) fn retry_at(&self, kind_idx: usize, cycle: u64) -> u64 {
        let pool = &self.pools[kind_idx];
        debug_assert_eq!(pool.stamp, cycle, "retry_at follows a same-cycle take");
        if pool.holds.len() >= pool.size as usize {
            pool.holds.iter().copied().min().unwrap_or(cycle + 1)
        } else {
            cycle + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::presets;

    #[test]
    fn fu_pools_count_like_unit_scans() {
        let cfg = presets::baseline_4wide();
        let mut pools = FuPools::new(&cfg);
        let alu = OpClass::IntAlu.fu_kind().index();
        let n = u32::from(cfg.fus.count(OpClass::IntAlu.fu_kind()));
        // Pipelined ops: exactly `n` grants per cycle.
        for _ in 0..n {
            assert!(pools.take(alu, 5, 1));
        }
        assert!(!pools.take(alu, 5, 1), "pool exhausted this cycle");
        assert!(pools.take(alu, 6, 1), "pipelined units free next cycle");

        // A divide holds its unit for the full latency.
        let div = OpClass::IntDiv.fu_kind().index();
        let div_units = u32::from(cfg.fus.count(OpClass::IntDiv.fu_kind()));
        assert!(pools.take(div, 10, 8));
        for c in 11..18 {
            let mut free = 0;
            while pools.take(div, c, 1) {
                free += 1;
            }
            assert_eq!(free, div_units - 1, "cycle {c}: divide still holds");
        }
        let mut free = 0;
        while pools.take(div, 18, 1) {
            free += 1;
        }
        assert_eq!(free, div_units, "divide released at its expiry");
    }

    #[test]
    fn tables_match_config() {
        let cfg = presets::baseline_4wide();
        let t = ClassTables::new(&cfg);
        for class in OP_CLASSES {
            let e = t.entries[class.index()];
            assert_eq!(e.latency, u64::from(cfg.latencies.latency(class)));
            assert_eq!(usize::from(e.fu), class.fu_kind().index());
            assert!(e.latency >= 1, "validated configs have nonzero latency");
            match class {
                OpClass::IntDiv | OpClass::FpDiv => assert_eq!(e.occupancy, e.latency),
                _ => assert_eq!(e.occupancy, 1),
            }
        }
    }
}
