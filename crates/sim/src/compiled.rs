//! Config-derived per-class lookup tables for the compiled engine.
//!
//! A [`CompiledTrace`](bmp_trace::CompiledTrace) is deliberately
//! config-independent (so the experiment harness can cache one compiled
//! form per trace and reuse it across every machine configuration). The
//! config-dependent half of the op decode — execution latency, functional
//! unit and divide behavior per [`OpClass`] — is flattened here into three
//! 9-entry arrays, built once per run, indexed by
//! [`OpClass::index`].

use bmp_uarch::{MachineConfig, OpClass, OP_CLASSES};

/// Per-class latency/FU/divide tables derived from a [`MachineConfig`].
#[derive(Debug, Clone)]
pub(crate) struct ClassTables {
    /// Execution latency per class (`>= 1`, enforced by config
    /// validation — the scheduler's "consumers wake strictly later"
    /// invariant rests on this).
    pub latency: [u64; 9],
    /// Functional-unit pool index (`FuKind::index`) per class.
    pub fu: [usize; 9],
    /// FU occupancy per issue: divides hold their unit for the full
    /// latency, everything else is pipelined (one cycle).
    pub occupancy: [u64; 9],
}

impl ClassTables {
    pub(crate) fn new(cfg: &MachineConfig) -> Self {
        let mut t = Self {
            latency: [0; 9],
            fu: [0; 9],
            occupancy: [0; 9],
        };
        for class in OP_CLASSES {
            let i = class.index();
            let lat = u64::from(cfg.latencies.latency(class));
            t.latency[i] = lat;
            t.fu[i] = class.fu_kind().index();
            t.occupancy[i] = match class {
                OpClass::IntDiv | OpClass::FpDiv => lat,
                _ => 1,
            };
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::presets;

    #[test]
    fn tables_match_config() {
        let cfg = presets::baseline_4wide();
        let t = ClassTables::new(&cfg);
        for class in OP_CLASSES {
            let i = class.index();
            assert_eq!(t.latency[i], u64::from(cfg.latencies.latency(class)));
            assert_eq!(t.fu[i], class.fu_kind().index());
            assert!(t.latency[i] >= 1, "validated configs have nonzero latency");
            match class {
                OpClass::IntDiv | OpClass::FpDiv => assert_eq!(t.occupancy[i], t.latency[i]),
                _ => assert_eq!(t.occupancy[i], 1),
            }
        }
    }
}
