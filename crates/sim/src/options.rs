//! Simulation options orthogonal to the machine configuration.

/// Knobs controlling what the simulator records, independent of the
/// machine being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Record the per-cycle dispatch count (used by the interval-profile
    /// experiment E-F1). Costs one byte per simulated cycle.
    pub record_dispatch_timeline: bool,
    /// Hard cap on simulated cycles, as a runaway guard for tests and
    /// sweeps. The run stops (marking completion) when reached.
    pub max_cycles: u64,
    /// Instructions to run before statistics start counting. Machine
    /// state (caches, predictors, BTB) carries over; every counter,
    /// event log and penalty record resets at the boundary — the
    /// standard warmup idiom that keeps compulsory misses from
    /// dominating short runs.
    pub warmup_ops: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            record_dispatch_timeline: false,
            max_cycles: u64::MAX,
            warmup_ops: 0,
        }
    }
}

impl SimOptions {
    /// Options with the dispatch timeline enabled.
    pub fn with_timeline() -> Self {
        Self {
            record_dispatch_timeline: true,
            ..Self::default()
        }
    }

    /// Options with a warmup of `ops` instructions.
    pub fn with_warmup(ops: u64) -> Self {
        Self {
            warmup_ops: ops,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = SimOptions::default();
        assert!(!o.record_dispatch_timeline);
        assert_eq!(o.max_cycles, u64::MAX);
        assert!(SimOptions::with_timeline().record_dispatch_timeline);
        assert_eq!(SimOptions::with_warmup(100).warmup_ops, 100);
        assert_eq!(o.warmup_ops, 0);
    }
}
