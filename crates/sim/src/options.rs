//! Simulation options orthogonal to the machine configuration.

/// Knobs controlling what the simulator records, independent of the
/// machine being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Record the per-cycle dispatch count (used by the interval-profile
    /// experiment E-F1). Costs one byte per simulated cycle.
    pub record_dispatch_timeline: bool,
    /// Cycle-budget watchdog: a run that reaches this many cycles with
    /// instructions still uncommitted aborts with
    /// [`SimError::BudgetExceeded`](crate::SimError::BudgetExceeded)
    /// instead of hanging its worker. The default (`u64::MAX`) means
    /// "derive a generous budget from the trace length" — see
    /// [`cycle_budget`](SimOptions::cycle_budget).
    pub max_cycles: u64,
    /// Instructions to run before statistics start counting. Machine
    /// state (caches, predictors, BTB) carries over; every counter,
    /// event log and penalty record resets at the boundary — the
    /// standard warmup idiom that keeps compulsory misses from
    /// dominating short runs.
    pub warmup_ops: u64,
    /// Emit one per-interval accounting record per miss-event interval
    /// at commit boundaries (`SimResult::interval_records`), the
    /// observability layer described in `docs/OBSERVABILITY.md`. Off by
    /// default; when off the only cost is one branch per committed
    /// instruction and the records vector stays empty.
    pub collect_intervals: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            record_dispatch_timeline: false,
            max_cycles: u64::MAX,
            warmup_ops: 0,
            collect_intervals: false,
        }
    }
}

impl SimOptions {
    /// Cycles allowed per trace instruction when `max_cycles` is left at
    /// its auto default. The slowest legitimate per-op cost is a serial
    /// chain of memory-level misses (a few hundred cycles each); 4096
    /// leaves an order of magnitude of slack above that, so only a
    /// genuinely wedged machine trips the watchdog.
    pub const AUTO_BUDGET_SLACK: u64 = 4096;

    /// Flat cycle allowance added to the auto budget, covering drain and
    /// cold-start costs of very short traces.
    pub const AUTO_BUDGET_BASE: u64 = 100_000;

    /// Options with the dispatch timeline enabled.
    pub fn with_timeline() -> Self {
        Self {
            record_dispatch_timeline: true,
            ..Self::default()
        }
    }

    /// Options with a warmup of `ops` instructions.
    pub fn with_warmup(ops: u64) -> Self {
        Self {
            warmup_ops: ops,
            ..Self::default()
        }
    }

    /// Options with per-interval accounting enabled.
    pub fn with_intervals() -> Self {
        Self {
            collect_intervals: true,
            ..Self::default()
        }
    }

    /// This options value with per-interval accounting enabled —
    /// composes with the other constructors
    /// (`SimOptions::with_warmup(n).intervals()`).
    pub fn intervals(mut self) -> Self {
        self.collect_intervals = true;
        self
    }

    /// Options with an explicit cycle budget.
    pub fn with_max_cycles(max_cycles: u64) -> Self {
        Self {
            max_cycles,
            ..Self::default()
        }
    }

    /// The effective watchdog budget for a trace of `ops` instructions:
    /// `max_cycles` when set explicitly, otherwise
    /// `ops × AUTO_BUDGET_SLACK + AUTO_BUDGET_BASE`.
    pub fn cycle_budget(&self, ops: u64) -> u64 {
        if self.max_cycles != u64::MAX {
            self.max_cycles
        } else {
            ops.saturating_mul(Self::AUTO_BUDGET_SLACK)
                .saturating_add(Self::AUTO_BUDGET_BASE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = SimOptions::default();
        assert!(!o.record_dispatch_timeline);
        assert_eq!(o.max_cycles, u64::MAX);
        assert!(SimOptions::with_timeline().record_dispatch_timeline);
        assert_eq!(SimOptions::with_warmup(100).warmup_ops, 100);
        assert_eq!(o.warmup_ops, 0);
        assert!(!o.collect_intervals);
        assert!(SimOptions::with_intervals().collect_intervals);
        let composed = SimOptions::with_warmup(100).intervals();
        assert!(composed.collect_intervals && composed.warmup_ops == 100);
    }

    #[test]
    fn budget_is_explicit_or_derived() {
        assert_eq!(
            SimOptions::with_max_cycles(500).cycle_budget(1_000_000),
            500
        );
        let auto = SimOptions::default().cycle_budget(1_000);
        assert_eq!(
            auto,
            1_000 * SimOptions::AUTO_BUDGET_SLACK + SimOptions::AUTO_BUDGET_BASE
        );
        // Saturates instead of overflowing on absurd trace lengths.
        assert_eq!(SimOptions::default().cycle_budget(u64::MAX), u64::MAX);
    }
}
