//! The reference cycle loop: the original, straightforward engine.
//!
//! This is the pre-optimization simulator kept verbatim as the ground
//! truth for the event-driven engine in [`crate::engine`]: it scans the
//! whole ROB every cycle for issue, ticks one cycle at a time, and reads
//! ops straight out of the AoS [`Trace`]. It is slow and obviously
//! correct — exactly what an equivalence baseline should be.
//!
//! Two ways to reach it:
//!
//! * `Simulator::run_reference` runs it directly;
//! * setting `BMP_REFERENCE_ENGINE=1` in the environment routes every
//!   `Simulator::run` through it, which lets CI replay the whole
//!   experiment suite on both engines and diff the CSVs.
//!
//! Per-cycle stage order is commit → issue → dispatch → fetch, which gives
//! the conventional timing: an instruction dispatched in cycle `c` can
//! issue at `c + 1` at the earliest, a producer issued at `c` with latency
//! `L` wakes its consumers for issue at `c + L`, and a mispredicted branch
//! issued at `c` (1-cycle branch execution) redirects fetch at `c + 1`.

use bmp_branch::{
    build_predictor, BranchStats, Btb, DirectionPredictor, IndirectPredictor, ReturnAddressStack,
};
use bmp_cache::{DataOutcome, MemoryHierarchy};
use bmp_core::intervals::IntervalEventKind;
use bmp_core::{IntervalAccountant, IntervalRecord};
use bmp_trace::{BranchKind, MicroOp, Trace};
use bmp_uarch::{FuKind, MachineConfig, OpClass, FU_KINDS};
use std::collections::VecDeque;

use crate::error::{BudgetForensics, SimError};
use crate::options::SimOptions;
use crate::result::{
    ClassIssueStats, FetchAccounting, MispredictRecord, MissEvent, MissEventKind, SimResult,
    SlotAccounting,
};

/// Sentinel for "not yet executed".
const NOT_DONE: u64 = u64::MAX;

/// Runs the reference engine over `trace`.
pub(crate) fn run(
    cfg: &MachineConfig,
    opts: SimOptions,
    trace: &Trace,
) -> Result<SimResult, SimError> {
    Engine::new(cfg, opts, trace).run()
}

struct RobSlot {
    idx: usize,
    issued: bool,
    dispatch_cycle: u64,
}

/// Per-misprediction bookkeeping while the branch is in flight.
struct PendingMiss {
    branch_idx: usize,
    fetch_cycle: u64,
    dispatch_cycle: u64,
    window_occupancy: u32,
    dispatched: bool,
}

struct Engine<'a> {
    cfg: &'a MachineConfig,
    opts: SimOptions,
    ops: &'a [MicroOp],

    cycle: u64,
    committed: u64,

    // Completion time per trace index (NOT_DONE until executed).
    done: Vec<u64>,

    // Frontend.
    fetch_idx: usize,
    fetch_stall_until: u64,
    blocked_on: Option<usize>,
    current_fetch_line: u64,
    frontend_q: VecDeque<(usize, u64)>,
    frontend_cap: usize,

    // Backend.
    rob: VecDeque<RobSlot>,
    unissued: u32,
    fu_busy: [Vec<u64>; 5],

    // Helpers.
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    indirect: IndirectPredictor,
    ras: ReturnAddressStack,
    mem: MemoryHierarchy,

    // Measurements.
    branch_stats: BranchStats,
    events: Vec<MissEvent>,
    mispredicts: Vec<MispredictRecord>,
    // Per-interval accounting (None when `collect_intervals` is off, so
    // the only cost on the default path is one branch per commit).
    accountant: Option<IntervalAccountant>,
    interval_records: Vec<IntervalRecord>,
    pending: Option<PendingMiss>,
    timeline: Option<Vec<u8>>,
    line_mask: u64,
    slots: SlotAccounting,
    fetch_acct: FetchAccounting,
    rob_occupancy: Vec<u64>,
    class_issue: [ClassIssueStats; 9],
    /// Set once the warmup boundary has been crossed (or immediately when
    /// no warmup is configured).
    warmed: bool,
    stats_start_cycle: u64,
    stats_start_committed: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a MachineConfig, opts: SimOptions, trace: &'a Trace) -> Self {
        let fu_busy = std::array::from_fn(|i| vec![0u64; usize::from(cfg.fus.count(FU_KINDS[i]))]);
        Self {
            cfg,
            opts,
            ops: trace.ops(),
            cycle: 0,
            committed: 0,
            done: vec![NOT_DONE; trace.len()],
            fetch_idx: 0,
            fetch_stall_until: 0,
            blocked_on: None,
            current_fetch_line: u64::MAX,
            frontend_q: VecDeque::new(),
            frontend_cap: (cfg.frontend_depth as usize * cfg.dispatch_width as usize)
                .max(cfg.fetch_width as usize),
            rob: VecDeque::with_capacity(cfg.rob_size as usize),
            unissued: 0,
            fu_busy,
            predictor: build_predictor(&cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            indirect: IndirectPredictor::build(&cfg.indirect_predictor),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            mem: MemoryHierarchy::new(&cfg.caches),
            branch_stats: BranchStats::new(),
            events: Vec::new(),
            mispredicts: Vec::new(),
            accountant: opts.collect_intervals.then(IntervalAccountant::new),
            interval_records: Vec::new(),
            pending: None,
            timeline: opts.record_dispatch_timeline.then(Vec::new),
            line_mask: !u64::from(cfg.caches.l1i().line_bytes() - 1),
            slots: SlotAccounting::default(),
            fetch_acct: FetchAccounting::default(),
            rob_occupancy: vec![0; cfg.rob_size as usize + 1],
            class_issue: [ClassIssueStats::default(); 9],
            warmed: opts.warmup_ops == 0,
            stats_start_cycle: 0,
            stats_start_committed: 0,
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let n = self.ops.len() as u64;
        let budget = self.opts.cycle_budget(n);
        while self.committed < n && self.cycle < budget {
            self.commit();
            if !self.warmed && self.committed >= self.opts.warmup_ops {
                self.reset_statistics();
            }
            self.issue();
            let dispatched = self.dispatch();
            self.fetch();
            self.rob_occupancy[self.rob.len()] += 1;
            if let Some(t) = &mut self.timeline {
                t.push(dispatched);
            }
            self.cycle += 1;
        }
        if self.committed < n {
            // Watchdog fired. The forensic snapshot must be bit-identical
            // to the event-driven engine's at the same budget — it is
            // part of the equivalence contract.
            return Err(SimError::BudgetExceeded(BudgetForensics {
                budget,
                cycle: self.cycle,
                committed: self.committed,
                trace_ops: n,
                fetched: self.fetch_idx as u64,
                window_occupancy: self.rob.len() as u32,
            }));
        }
        // Accounting conservation, mirrored by lint BMP203: every offered
        // dispatch slot is attributed to exactly one cause, and the ROB
        // histogram samples every measured cycle.
        let cycles = self.cycle - self.stats_start_cycle;
        debug_assert_eq!(
            self.slots.total(),
            cycles * u64::from(self.cfg.dispatch_width),
            "dispatch-slot accounting leaked slots (BMP203)"
        );
        debug_assert_eq!(
            self.rob_occupancy.iter().sum::<u64>(),
            cycles,
            "ROB-occupancy histogram missed cycles (BMP203)"
        );
        Ok(SimResult {
            cycles: self.cycle - self.stats_start_cycle,
            instructions: self.committed - self.stats_start_committed,
            branch_stats: self.branch_stats,
            hierarchy: self.mem.stats(),
            events: self.events,
            mispredicts: self.mispredicts,
            interval_records: self.interval_records,
            dispatch_timeline: self.timeline,
            frontend_depth: self.cfg.frontend_depth,
            slots: self.slots,
            fetch: self.fetch_acct,
            rob_occupancy: self.rob_occupancy,
            class_issue: self.class_issue,
        })
    }

    /// Crosses the warmup boundary: zero every statistic while keeping
    /// all machine state (caches, predictor, BTB, RAS, ROB contents).
    fn reset_statistics(&mut self) {
        self.warmed = true;
        self.stats_start_cycle = self.cycle;
        self.stats_start_committed = self.committed;
        self.branch_stats.reset();
        self.mem.reset_stats();
        self.events.clear();
        self.mispredicts.clear();
        self.interval_records.clear();
        if let Some(acct) = &mut self.accountant {
            acct.reset(self.committed);
        }
        self.slots = SlotAccounting::default();
        self.fetch_acct = FetchAccounting::default();
        self.rob_occupancy.iter_mut().for_each(|c| *c = 0);
        self.class_issue = [ClassIssueStats::default(); 9];
        if let Some(t) = &mut self.timeline {
            t.clear();
        }
    }

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        while budget > 0 {
            match self.rob.front() {
                Some(slot) if self.done[slot.idx] <= self.cycle => {
                    let idx = slot.idx;
                    self.rob.pop_front();
                    self.committed += 1;
                    budget -= 1;
                    if let Some(acct) = &mut self.accountant {
                        acct.on_commit(
                            idx as u64,
                            self.cycle - self.stats_start_cycle,
                            &mut self.interval_records,
                        );
                    }
                }
                _ => break,
            }
        }
    }

    fn sources_ready(&self, idx: usize) -> bool {
        for d in self.ops[idx].src_distances() {
            let d = d as usize;
            if d <= idx && self.done[idx - d] > self.cycle {
                return false;
            }
        }
        true
    }

    /// Finds a free unit of `kind` and occupies it for `occupancy`
    /// cycles. Returns `false` when every unit is busy this cycle.
    fn take_fu(&mut self, kind: FuKind, occupancy: u64) -> bool {
        let units = &mut self.fu_busy[kind.index()];
        for busy_until in units.iter_mut() {
            if *busy_until <= self.cycle {
                *busy_until = self.cycle + occupancy;
                return true;
            }
        }
        false
    }

    fn issue(&mut self) {
        let mut budget = self.cfg.issue_width;
        // Oldest-first select over the un-issued window.
        for slot_pos in 0..self.rob.len() {
            if budget == 0 {
                break;
            }
            let (idx, issued, dispatch_cycle) = {
                let s = &self.rob[slot_pos];
                (s.idx, s.issued, s.dispatch_cycle)
            };
            if issued || !self.sources_ready(idx) {
                continue;
            }
            let class = self.ops[idx].class();
            let kind = class.fu_kind();
            // Divides hold their unit for the full latency; everything
            // else is pipelined (one issue per unit per cycle).
            let base_lat = u64::from(self.cfg.latencies.latency(class));
            let occupancy = match class {
                OpClass::IntDiv | OpClass::FpDiv => base_lat,
                _ => 1,
            };
            if !self.take_fu(kind, occupancy) {
                continue;
            }
            let latency = match class {
                OpClass::Load => {
                    let addr = self.ops[idx].mem_addr().expect("loads carry addresses");
                    let access = self.mem.data_access_at(self.ops[idx].pc(), addr);
                    if access.outcome == DataOutcome::LongMiss {
                        self.events.push(MissEvent {
                            trace_idx: idx,
                            cycle: self.cycle,
                            kind: MissEventKind::LongDCacheMiss,
                        });
                        if let Some(acct) = &mut self.accountant {
                            acct.on_event(idx as u64, IntervalEventKind::LongDCacheMiss);
                        }
                    }
                    u64::from(access.latency)
                }
                OpClass::Store => {
                    // Stores retire through a write buffer: the cache sees
                    // the access (write-allocate) but the pipeline is not
                    // held up by the miss.
                    let addr = self.ops[idx].mem_addr().expect("stores carry addresses");
                    let _ = self.mem.data_access_at(self.ops[idx].pc(), addr);
                    base_lat
                }
                _ => base_lat,
            };
            self.done[idx] = self.cycle + latency;
            self.rob[slot_pos].issued = true;
            self.unissued -= 1;
            budget -= 1;
            let cs = &mut self.class_issue[class.index()];
            cs.issued += 1;
            cs.wait_cycles += self.cycle - dispatch_cycle;
            // A mispredicted branch redirects fetch when it resolves.
            if self.blocked_on == Some(idx) {
                self.blocked_on = None;
                self.fetch_stall_until = self.fetch_stall_until.max(self.done[idx]);
                let pending = self
                    .pending
                    .take()
                    .expect("pending record for blocked branch");
                debug_assert!(pending.dispatched);
                self.mispredicts.push(MispredictRecord {
                    branch_idx: idx,
                    fetch_cycle: pending.fetch_cycle,
                    dispatch_cycle: pending.dispatch_cycle,
                    resolve_cycle: self.done[idx],
                    window_occupancy: pending.window_occupancy,
                });
                if let Some(acct) = &mut self.accountant {
                    acct.on_mispredict(
                        idx as u64,
                        self.done[idx].saturating_sub(pending.dispatch_cycle),
                        self.cfg.frontend_depth,
                        pending.window_occupancy,
                    );
                }
            }
        }
    }

    fn dispatch(&mut self) -> u8 {
        let mut dispatched = 0u8;
        while u32::from(dispatched) < self.cfg.dispatch_width {
            if self.rob.len() >= self.cfg.rob_size as usize {
                self.slots.rob_full += u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            if self.unissued >= self.cfg.window_size {
                self.slots.window_full +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            let front = self.frontend_q.front().copied();
            let Some((idx, ready)) = front else {
                self.slots.frontend_starved +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            };
            if ready > self.cycle {
                self.slots.frontend_starved +=
                    u64::from(self.cfg.dispatch_width) - u64::from(dispatched);
                break;
            }
            self.frontend_q.pop_front();
            self.rob.push_back(RobSlot {
                idx,
                issued: false,
                dispatch_cycle: self.cycle,
            });
            self.unissued += 1;
            dispatched += 1;
            self.slots.used += 1;
            if let Some(p) = &mut self.pending {
                if p.branch_idx == idx {
                    p.dispatched = true;
                    p.dispatch_cycle = self.cycle;
                    p.window_occupancy = self.rob.len() as u32;
                }
            }
        }
        dispatched
    }

    fn fetch(&mut self) {
        if self.blocked_on.is_some() {
            self.fetch_acct.redirect_wait += 1;
            return;
        }
        if self.cycle < self.fetch_stall_until {
            self.fetch_acct.stall += 1;
            return;
        }
        let mut budget = self.cfg.effective_fetch_width();
        while budget > 0
            && self.fetch_idx < self.ops.len()
            && self.frontend_q.len() < self.frontend_cap
        {
            let idx = self.fetch_idx;
            let op = &self.ops[idx];
            let line = op.pc() & self.line_mask;
            if line != self.current_fetch_line {
                let access = self.mem.fetch_access(op.pc());
                self.current_fetch_line = line;
                if access.l1i_miss {
                    let extra = u64::from(access.latency - self.cfg.caches.l1i().hit_latency());
                    self.fetch_stall_until = self.cycle + 1 + extra;
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: if access.long_miss {
                            MissEventKind::ICacheLongMiss
                        } else {
                            MissEventKind::ICacheMiss
                        },
                    });
                    if let Some(acct) = &mut self.accountant {
                        acct.on_event(
                            idx as u64,
                            if access.long_miss {
                                IntervalEventKind::ICacheLongMiss
                            } else {
                                IntervalEventKind::ICacheMiss
                            },
                        );
                    }
                    // The line arrives after the stall; the op is fetched
                    // on a later cycle.
                    return;
                }
            }
            // The op is fetched this cycle.
            self.frontend_q
                .push_back((idx, self.cycle + u64::from(self.cfg.frontend_depth)));
            self.fetch_idx += 1;
            budget -= 1;
            if let Some(info) = op.branch_info() {
                let mispredicted = self.handle_branch(idx, op.pc(), info);
                if mispredicted {
                    self.blocked_on = Some(idx);
                    self.pending = Some(PendingMiss {
                        branch_idx: idx,
                        fetch_cycle: self.cycle,
                        dispatch_cycle: 0,
                        window_occupancy: 0,
                        dispatched: false,
                    });
                    self.events.push(MissEvent {
                        trace_idx: idx,
                        cycle: self.cycle,
                        kind: MissEventKind::BranchMispredict,
                    });
                    return;
                }
                if info.taken {
                    // Redirect through the BTB/RAS: the fetch group ends.
                    return;
                }
            }
        }
    }

    /// Runs the frontend's prediction machinery for a fetched branch.
    /// Returns `true` when the branch is mispredicted (direction or
    /// return target).
    fn handle_branch(&mut self, _idx: usize, pc: u64, info: bmp_trace::BranchInfo) -> bool {
        match info.kind {
            BranchKind::Conditional => {
                let pred = self.predictor.predict(pc, info.taken);
                self.branch_stats.record(pred, info.taken);
                self.predictor.update(pc, info.taken);
                if pred != info.taken {
                    return true;
                }
                if info.taken {
                    self.btb_redirect(pc, info.target);
                }
                false
            }
            BranchKind::Jump => {
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Call => {
                self.ras.push(pc.wrapping_add(4));
                self.btb_redirect(pc, info.target);
                false
            }
            BranchKind::Return => {
                match self.ras.pop() {
                    Some(t) if t == info.target => false,
                    // Empty or stale RAS: the frontend follows a wrong
                    // target, which is a full misprediction.
                    _ => true,
                }
            }
            BranchKind::IndirectJump => {
                // The frontend follows the indirect-target predictor
                // (BTB last-target by default, gtarget when configured);
                // anything but the actual target is a full misprediction.
                let btb_target = self.btb.lookup(pc);
                let predicted = self.indirect.predict(pc, btb_target);
                self.indirect.update(pc, info.target);
                self.btb.update(pc, info.target);
                !matches!(predicted, Some(t) if t == info.target)
            }
        }
    }

    /// Models the BTB on a taken control transfer: a miss costs one fetch
    /// bubble while decode computes the target; the entry is installed
    /// either way.
    fn btb_redirect(&mut self, pc: u64, target: u64) {
        if self.btb.lookup(pc).is_none() {
            self.fetch_stall_until = self.cycle + 2;
        }
        self.btb.update(pc, target);
    }
}
