//! Wakeup-list issue scheduling.
//!
//! The reference engine re-scans the entire ROB every cycle looking for
//! issueable ops — O(ROB) work per cycle even when nothing changes. The
//! [`WakeupScheduler`] replaces that scan with event-driven bookkeeping so
//! each op is examined O(1) times:
//!
//! * at **dispatch**, an op either computes its earliest issue cycle
//!   directly (all producers already executed) or registers itself on its
//!   unfinished producers' *waiter lists* and waits;
//! * at **issue** of a producer, its waiters are woken: each decrements a
//!   pending-producer count and, on reaching zero, is filed in a
//!   *calendar* keyed by the cycle the op becomes issueable
//!   (`max(dispatch + 1, producer completion times)`);
//! * each cycle, the due calendar buckets are drained into a *ready
//!   bitmap* (one bit per trace index), which reproduces the reference
//!   engine's oldest-first select exactly (dispatch is in trace order, so
//!   ROB order *is* ascending trace index). Every ready op is dispatched
//!   but unissued, i.e. in the ROB, so the set bits span at most
//!   `rob_size` indices and find-first-set is a short word scan — cheaper
//!   than heap sifts and branch-free in the common case.
//!
//! Per-op wait state (earliest issue cycle, pending-producer count,
//! waiter-list head) does not live here: it is merged into the engine's
//! [`OpSlot`] record alongside the completion and dispatch times, so the
//! dispatch and wakeup paths touch *one* cache line per op instead of
//! two parallel arrays. The scheduler owns only the calendar, the ready
//! bitmap and the intrusive edge links; every method that walks op state
//! borrows the engine's slot array.
//!
//! The calendar is a [timer wheel]: a power-of-two ring of reusable
//! buckets indexed by `cycle & mask`, with an occupancy bitmap so the
//! next due cycle is found with a word scan instead of a tree walk. A
//! wakeup can only lie at most one op latency in the future, which fits
//! the wheel for every realistic configuration; the rare wakeup beyond
//! the horizon (e.g. an extreme memory latency) spills into a `BTreeMap`
//! overflow that migrates back as the wheel advances. Buckets keep their
//! capacity across reuse — and drained overflow buckets return to a
//! freelist that survives runs through the per-thread scratch pool — so
//! steady-state scheduling performs no heap allocation at all. This is
//! what makes the event-driven engine faster per *op* than the reference
//! engine is per *scan step*.
//!
//! [timer wheel]: https://dl.acm.org/doi/10.1109/90.650142
//!
//! Ops that lose functional-unit arbitration are *deferred* for the rest
//! of the cycle and re-armed into the heap afterwards, matching the
//! reference scan's skip-and-retry-next-cycle behavior. The timing
//! invariant that makes insertion-into-the-past impossible is that every
//! latency is ≥ 1 (enforced by config validation): a producer issuing at
//! cycle `c` completes at `c + L ≥ c + 1`, so a woken consumer's ready
//! cycle always lies strictly in the future.
//!
//! Waiter lists are intrusive: edge `2·consumer + slot` lives in a flat
//! `edge_next` array, so the scheduler performs no per-op allocation.

use std::collections::BTreeMap;

use bmp_trace::compiled::NO_PRODUCER;

use crate::engine::OpSlot;

/// Sentinel terminating a waiter-edge chain.
pub(crate) const NO_EDGE: u32 = u32::MAX;

/// Completion-time sentinel shared with the engine ("not yet executed").
const NOT_DONE: u64 = u64::MAX;

/// Timer-wheel horizon in cycles. Must be a power of two and comfortably
/// exceed the largest op latency (worst memory access in a default-ish
/// config is a few hundred cycles); wakeups beyond it take the overflow
/// path, which is correct but slower.
const WHEEL_SIZE: usize = 1024;
const WHEEL_MASK: u64 = WHEEL_SIZE as u64 - 1;
const WHEEL_WORDS: usize = WHEEL_SIZE / 64;

/// Event-driven issue scheduler over a compiled trace of `n` ops.
#[derive(Debug)]
pub(crate) struct WakeupScheduler {
    /// Ops currently issueable, one bit per trace index, popped oldest
    /// (smallest index) first by scanning from `ready_min`.
    ready_bits: Vec<u64>,
    /// Number of set bits in `ready_bits`.
    ready_n: u32,
    /// Lower bound on the smallest set bit. Exact after a push into an
    /// empty set; after pops it trails the last popped index, which is
    /// within `rob_size` of every remaining ready op, so scans stay short.
    ready_min: u32,
    /// Intrusive timer-wheel bucket heads, one per cycle slot
    /// (`cycle & WHEEL_MASK`): the index of the first op filed for that
    /// slot, chained through `cal_next`. An op sits in at most one
    /// calendar bucket at a time, so one link word per op replaces the
    /// per-bucket `Vec`s — no heap traffic, and the whole head array is
    /// 4 KiB of permanently hot cache.
    bucket_head: Vec<u32>,
    /// Calendar chain link per op (`bucket_head` chains, and the `soon`
    /// list reuses it).
    cal_next: Vec<u32>,
    /// One bit per bucket: set iff the bucket is non-empty.
    bitmap: [u64; WHEEL_WORDS],
    /// Cycles `< base` have been fully drained; the wheel window is
    /// `[base, base + WHEEL_SIZE)`.
    base: u64,
    /// Earliest cycle with a wheel entry (`u64::MAX` when the wheel is
    /// empty). Kept exact: `schedule` lowers it, draining rescans.
    next_due: u64,
    /// Head of the chain of wakeups due exactly at `base` (the next
    /// cycle): the overwhelmingly common case — ALU latency is 1 and
    /// dispatch wakes at `cycle + 1` — bypasses the wheel entirely.
    soon_head: u32,
    /// Wakeups beyond the wheel horizon, migrated in as `base` advances.
    overflow: BTreeMap<u64, Vec<u32>>,
    /// Drained overflow buckets, reused for later insertions so the
    /// overflow path stops allocating a fresh `Vec` per entry. Retained
    /// across runs via the scratch pool.
    overflow_spares: Vec<Vec<u32>>,
    /// Next pointer per edge; edge id is `2 * consumer + slot`.
    edge_next: Vec<u32>,
    /// Ops that lost FU arbitration this cycle; re-armed after the scan.
    deferred: Vec<u32>,
}

impl WakeupScheduler {
    pub(crate) fn new(n: usize) -> Self {
        let mut s = Self {
            ready_bits: Vec::new(),
            ready_n: 0,
            ready_min: 0,
            bucket_head: vec![NO_EDGE; WHEEL_SIZE],
            cal_next: Vec::new(),
            bitmap: [0; WHEEL_WORDS],
            base: 0,
            next_due: u64::MAX,
            soon_head: NO_EDGE,
            overflow: BTreeMap::new(),
            overflow_spares: Vec::new(),
            edge_next: Vec::new(),
            deferred: Vec::new(),
        };
        s.reset(n);
        s
    }

    /// Rewinds the scheduler for a fresh run over `n` ops, keeping every
    /// allocation. `edge_next` is *not* re-initialized: an op's edges are
    /// written at its dispatch before any read (see
    /// [`on_dispatch`](Self::on_dispatch)), so stale links from a
    /// previous run are unreachable. Only buckets left occupied by a
    /// `max_cycles` cutoff and the ready bitmap need clearing.
    pub(crate) fn reset(&mut self, n: usize) {
        self.ready_bits.clear();
        self.ready_bits.resize((n >> 6) + 2, 0);
        self.ready_n = 0;
        self.ready_min = 0;
        for (wi, word) in self.bitmap.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let pos = (wi << 6) + w.trailing_zeros() as usize;
                self.bucket_head[pos] = NO_EDGE;
                w &= w - 1;
            }
            *word = 0;
        }
        if self.cal_next.len() < n {
            self.cal_next.resize(n, NO_EDGE);
        }
        self.base = 0;
        self.next_due = u64::MAX;
        self.soon_head = NO_EDGE;
        while let Some((_, mut v)) = self.overflow.pop_first() {
            v.clear();
            self.overflow_spares.push(v);
        }
        if self.edge_next.len() < 2 * n {
            self.edge_next.resize(2 * n, NO_EDGE);
        }
        self.deferred.clear();
    }

    /// Marks `idx` issueable right now.
    #[inline]
    pub(crate) fn push_ready(&mut self, idx: u32) {
        debug_assert_eq!(self.ready_bits[(idx >> 6) as usize] >> (idx & 63) & 1, 0);
        self.ready_bits[(idx >> 6) as usize] |= 1 << (idx & 63);
        if self.ready_n == 0 || idx < self.ready_min {
            self.ready_min = idx;
        }
        self.ready_n += 1;
    }

    #[inline]
    pub(crate) fn schedule(&mut self, idx: u32, at: u64) {
        debug_assert!(at >= self.base, "wakeups are always strictly future");
        if at == self.base {
            self.cal_next[idx as usize] = self.soon_head;
            self.soon_head = idx;
        } else if at - self.base < WHEEL_SIZE as u64 {
            let pos = (at & WHEEL_MASK) as usize;
            self.cal_next[idx as usize] = self.bucket_head[pos];
            self.bucket_head[pos] = idx;
            self.bitmap[pos >> 6] |= 1 << (pos & 63);
            if at < self.next_due {
                self.next_due = at;
            }
        } else {
            self.overflow
                .entry(at)
                .or_insert_with(|| self.overflow_spares.pop().unwrap_or_default())
                .push(idx);
        }
    }

    /// First cycle `>= from` holding a wheel entry (`u64::MAX` if none).
    /// Scans the occupancy bitmap starting at `from`'s slot, wrapping —
    /// every set bit maps to a unique cycle in `[base, base + WHEEL_SIZE)`
    /// and the caller guarantees no entry lives below `from`.
    fn scan_from(&self, from: u64) -> u64 {
        let start = (from & WHEEL_MASK) as usize;
        let mut word_i = start >> 6;
        let mut word = self.bitmap[word_i] & (!0u64 << (start & 63));
        for _ in 0..=WHEEL_WORDS {
            if word != 0 {
                let pos = (word_i << 6) + word.trailing_zeros() as usize;
                let dist = pos.wrapping_sub(start) & (WHEEL_SIZE - 1);
                return from + dist as u64;
            }
            word_i = (word_i + 1) % WHEEL_WORDS;
            word = self.bitmap[word_i];
        }
        u64::MAX
    }

    /// Registers a newly dispatched op. `producers` are absolute indices
    /// ([`NO_PRODUCER`] for empty slots); `slots` is the engine's per-op
    /// record array, which must carry one trailing *dummy* record with
    /// `done == 0` — [`NO_PRODUCER`] clamps onto it, so both producer
    /// completion times load unconditionally (the dummy is permanently
    /// hot and its `done` can never look in-flight or raise `at`). That
    /// leaves exactly one data-dependent branch — "is any producer still
    /// in flight?" — on the fast path instead of up to four.
    ///
    /// An op whose earliest issue cycle is exactly `cycle + 1` (all
    /// producers complete, no latency beyond the dispatch bubble — the
    /// dominant case) goes straight into the ready set: the engine issues
    /// *before* it dispatches within a cycle, so the first pop that can
    /// see the op happens at `cycle + 1`, exactly when it is due.
    #[inline(always)]
    pub(crate) fn on_dispatch(
        &mut self,
        idx: u32,
        cycle: u64,
        producers: [u32; 2],
        slots: &mut [OpSlot],
    ) {
        let dummy = (slots.len() - 1) as u32;
        let d0 = slots[producers[0].min(dummy) as usize].done;
        let d1 = slots[producers[1].min(dummy) as usize].done;
        if d0 != NOT_DONE && d1 != NOT_DONE {
            // Dispatch at `cycle` issues at `cycle + 1` the earliest.
            let at = (cycle + 1).max(d0).max(d1);
            // Full write of the wait fields (including the waiter-list
            // head): this is what lets `reset` skip re-initializing slot
            // records between runs. Consumers chain onto `idx` only
            // after this dispatch.
            let s = &mut slots[idx as usize];
            s.ready_at = at;
            s.waiter_head = NO_EDGE;
            s.pending = 0;
            if at == cycle + 1 {
                self.push_ready(idx);
            } else {
                self.schedule(idx, at);
            }
            return;
        }
        self.on_dispatch_waiting(idx, cycle, producers, slots);
    }

    /// Out-of-line slow half of [`on_dispatch`](Self::on_dispatch): at
    /// least one producer is still in flight, so chain onto its waiter
    /// list. (In-order dispatch guarantees producers are dispatched.)
    fn on_dispatch_waiting(
        &mut self,
        idx: u32,
        cycle: u64,
        producers: [u32; 2],
        slots: &mut [OpSlot],
    ) {
        let mut at = cycle + 1;
        let mut pend = 0u32;
        for (slot, &p) in producers.iter().enumerate() {
            if p == NO_PRODUCER {
                continue;
            }
            let d = slots[p as usize].done;
            if d == NOT_DONE {
                let e = 2 * idx + slot as u32;
                self.edge_next[e as usize] = slots[p as usize].waiter_head;
                slots[p as usize].waiter_head = e;
                pend += 1;
            } else if d > at {
                at = d;
            }
        }
        debug_assert!(pend > 0);
        let s = &mut slots[idx as usize];
        s.ready_at = at;
        s.waiter_head = NO_EDGE;
        s.pending = pend;
    }

    /// Wakes the waiters of `idx`, which just issued with completion time
    /// `slots[idx].done`.
    #[inline]
    #[cfg(test)]
    pub(crate) fn on_issue(&mut self, idx: u32, slots: &mut [OpSlot]) {
        let t = slots[idx as usize].done;
        debug_assert_ne!(t, NOT_DONE);
        let head = std::mem::replace(&mut slots[idx as usize].waiter_head, NO_EDGE);
        self.wake_waiters(head, t, slots);
    }

    /// Walks a detached waiter chain (`head`, as unhooked from the
    /// producer's slot by the caller), propagating the producer's
    /// completion time `t` into each consumer and scheduling those whose
    /// last producer this was. Split from [`Self::on_issue`] so the issue
    /// stage can fold the producer-slot writes into its own single borrow
    /// of the slot record.
    #[inline]
    pub(crate) fn wake_waiters(&mut self, head: u32, t: u64, slots: &mut [OpSlot]) {
        debug_assert_ne!(t, NOT_DONE);
        let mut e = head;
        while e != NO_EDGE {
            let next = self.edge_next[e as usize];
            let c = (e / 2) as usize;
            let op = &mut slots[c];
            if t > op.ready_at {
                op.ready_at = t;
            }
            op.pending -= 1;
            if op.pending == 0 {
                let at = op.ready_at;
                self.schedule(c as u32, at);
            }
            e = next;
        }
    }

    /// Moves every calendar bucket due at or before `cycle` into the
    /// ready set and advances the wheel window past `cycle`. Inlined: on
    /// the dominant dense-cycle path this is three predictable branches
    /// (`soon` empty, nothing due on the wheel, overflow empty) plus the
    /// window advance.
    #[inline]
    pub(crate) fn drain(&mut self, cycle: u64) {
        // The fast path: wakeups filed for `base` (== cycle on the usual
        // one-cycle advance) go straight into the ready set.
        if cycle >= self.base && self.soon_head != NO_EDGE {
            let mut e = std::mem::replace(&mut self.soon_head, NO_EDGE);
            while e != NO_EDGE {
                self.push_ready(e);
                e = self.cal_next[e as usize];
            }
        }
        if self.next_due <= cycle || !self.overflow.is_empty() {
            self.drain_calendar(cycle);
        }
        if cycle >= self.base {
            self.base = cycle + 1;
        }
    }

    /// The out-of-line half of [`drain`](Self::drain): due wheel buckets,
    /// due overflow entries (possible after a long idle skip), and the
    /// overflow-to-wheel migration as the window advances.
    fn drain_calendar(&mut self, cycle: u64) {
        // Overflow entries already due.
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() > cycle {
                break;
            }
            let mut bucket = entry.remove();
            for &idx in &bucket {
                self.push_ready(idx);
            }
            bucket.clear();
            self.overflow_spares.push(bucket);
        }
        // Due wheel buckets, earliest first via the exact `next_due`.
        while self.next_due <= cycle {
            let pos = (self.next_due & WHEEL_MASK) as usize;
            let mut e = std::mem::replace(&mut self.bucket_head[pos], NO_EDGE);
            while e != NO_EDGE {
                self.push_ready(e);
                e = self.cal_next[e as usize];
            }
            self.bitmap[pos >> 6] &= !(1 << (pos & 63));
            self.next_due = self.scan_from(self.next_due + 1);
        }
        // The window is about to move past `cycle`: future overflow
        // entries may now fit in the wheel.
        let new_base = self.base.max(cycle + 1);
        while let Some(entry) = self.overflow.first_entry() {
            let at = *entry.key();
            if at - new_base >= WHEEL_SIZE as u64 {
                break;
            }
            let pos = (at & WHEEL_MASK) as usize;
            let mut bucket = entry.remove();
            for &idx in &bucket {
                self.cal_next[idx as usize] = self.bucket_head[pos];
                self.bucket_head[pos] = idx;
            }
            bucket.clear();
            self.overflow_spares.push(bucket);
            self.bitmap[pos >> 6] |= 1 << (pos & 63);
            if at < self.next_due {
                self.next_due = at;
            }
        }
    }

    /// Pops the oldest issueable op, if any: find-first-set from
    /// `ready_min`.
    #[inline]
    pub(crate) fn pop_ready(&mut self) -> Option<u32> {
        if self.ready_n == 0 {
            return None;
        }
        let mut wi = (self.ready_min >> 6) as usize;
        let mut word = self.ready_bits[wi] & (!0u64 << (self.ready_min & 63));
        while word == 0 {
            wi += 1;
            word = self.ready_bits[wi];
        }
        let idx = ((wi << 6) as u32) + word.trailing_zeros();
        self.ready_bits[wi] = word & (word - 1);
        self.ready_n -= 1;
        self.ready_min = idx + 1;
        Some(idx)
    }

    /// Parks an op that lost FU arbitration for the rest of this cycle.
    #[inline]
    pub(crate) fn defer(&mut self, idx: u32) {
        self.deferred.push(idx);
    }

    /// Returns deferred ops to the ready set (end of the issue scan).
    #[inline]
    pub(crate) fn rearm_deferred(&mut self) {
        while let Some(idx) = self.deferred.pop() {
            self.push_ready(idx);
        }
    }

    /// `true` when issueable ops are waiting in the ready set.
    #[inline]
    pub(crate) fn has_ready(&self) -> bool {
        self.ready_n != 0
    }

    /// The earliest future calendar entry, if any.
    #[inline]
    pub(crate) fn next_wakeup(&self) -> Option<u64> {
        let mut next = self.next_due;
        if self.soon_head != NO_EDGE {
            next = next.min(self.base);
        }
        if let Some((&k, _)) = self.overflow.first_key_value() {
            next = next.min(k);
        }
        (next != u64::MAX).then_some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fresh per-op slot records, all still in flight, plus the trailing
    /// dummy record (`done == 0`) `on_dispatch` clamps [`NO_PRODUCER`]
    /// onto.
    fn in_flight(n: usize) -> Vec<OpSlot> {
        let mut slots = vec![
            OpSlot {
                done: NOT_DONE,
                disp: 0,
                ready_at: 0,
                waiter_head: NO_EDGE,
                pending: 0,
            };
            n + 1
        ];
        slots[n].done = 0;
        slots
    }

    #[test]
    fn independent_op_is_poppable_right_after_dispatch() {
        let mut slots = in_flight(4);
        let mut s = WakeupScheduler::new(4);
        s.on_dispatch(0, 10, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        // Straight into the ready set: the engine's issue-before-dispatch
        // stage order means the first pop that can observe this happens
        // at cycle 11, exactly the op's due time.
        assert!(s.has_ready());
        assert_eq!(s.next_wakeup(), None, "no calendar entry needed");
        s.drain(11);
        assert_eq!(s.pop_ready(), Some(0));
    }

    #[test]
    fn waits_for_in_flight_producer() {
        let mut slots = in_flight(4);
        let mut s = WakeupScheduler::new(4);
        s.on_dispatch(0, 5, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        s.on_dispatch(1, 5, [0, NO_PRODUCER], &mut slots);
        // Producer 0 not issued yet: nothing scheduled for op 1.
        s.drain(6);
        assert_eq!(s.pop_ready(), Some(0));
        assert_eq!(s.pop_ready(), None);
        // Op 0 issues at cycle 6 with latency 3.
        slots[0].done = 9;
        s.on_issue(0, &mut slots);
        assert_eq!(s.next_wakeup(), Some(9));
        s.drain(9);
        assert_eq!(s.pop_ready(), Some(1));
    }

    #[test]
    fn finished_producer_sets_ready_time_at_dispatch() {
        let mut slots = in_flight(4);
        slots[0].done = 20;
        let mut s = WakeupScheduler::new(4);
        // Consumer dispatched at cycle 7; producer completes at 20.
        s.on_dispatch(1, 7, [0, NO_PRODUCER], &mut slots);
        assert_eq!(s.next_wakeup(), Some(20));
        // A producer that completed long ago leaves dispatch+1 in charge.
        slots[2].done = 3;
        s.on_dispatch(3, 7, [2, NO_PRODUCER], &mut slots);
        s.drain(8);
        assert_eq!(s.pop_ready(), Some(3));
    }

    #[test]
    fn ready_set_pops_oldest_first() {
        let mut slots = in_flight(8);
        let mut s = WakeupScheduler::new(8);
        for idx in [5u32, 2, 7, 3] {
            s.on_dispatch(idx, 0, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        }
        s.drain(1);
        assert_eq!(s.pop_ready(), Some(2));
        assert_eq!(s.pop_ready(), Some(3));
        assert_eq!(s.pop_ready(), Some(5));
        assert_eq!(s.pop_ready(), Some(7));
    }

    #[test]
    fn two_pending_producers_need_both_wakeups() {
        let mut slots = in_flight(4);
        let mut s = WakeupScheduler::new(4);
        s.on_dispatch(0, 0, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        s.on_dispatch(1, 0, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        s.on_dispatch(2, 0, [1, 0], &mut slots);
        slots[0].done = 4;
        s.on_issue(0, &mut slots);
        assert_eq!(s.next_wakeup(), None, "op 2 still has a pending producer");
        slots[1].done = 9;
        s.on_issue(1, &mut slots);
        s.drain(8);
        // 0 and 1 drained at their dispatch+1 slots; op 2 still waiting.
        s.pop_ready();
        s.pop_ready();
        assert_eq!(s.pop_ready(), None);
        s.drain(9);
        assert_eq!(s.pop_ready(), Some(2));
    }

    #[test]
    fn wakeups_beyond_the_wheel_horizon_take_the_overflow_path() {
        let mut slots = in_flight(4);
        // Producer completes far beyond WHEEL_SIZE: consumer overflows.
        slots[0].done = 5 * WHEEL_SIZE as u64;
        let mut s = WakeupScheduler::new(4);
        s.on_dispatch(1, 0, [0, NO_PRODUCER], &mut slots);
        assert_eq!(s.next_wakeup(), Some(slots[0].done));
        s.drain(slots[0].done - 1);
        assert!(!s.has_ready());
        s.drain(slots[0].done);
        assert_eq!(s.pop_ready(), Some(1));
        assert_eq!(s.next_wakeup(), None);
    }

    #[test]
    fn overflow_migrates_into_the_wheel_as_the_window_advances() {
        let mut slots = in_flight(4);
        slots[0].done = WHEEL_SIZE as u64 + 100;
        let mut s = WakeupScheduler::new(4);
        s.on_dispatch(1, 0, [0, NO_PRODUCER], &mut slots);
        // Advancing the window pulls the wakeup out of overflow; it still
        // fires at exactly the right cycle.
        s.drain(500);
        assert!(s.overflow.is_empty(), "entry should have migrated");
        assert_eq!(s.next_wakeup(), Some(slots[0].done));
        s.drain(slots[0].done);
        assert_eq!(s.pop_ready(), Some(1));
    }

    #[test]
    fn overflow_buckets_recycle_through_the_freelist() {
        let mut slots = in_flight(6);
        slots[0].done = 5 * WHEEL_SIZE as u64;
        let mut s = WakeupScheduler::new(6);
        s.on_dispatch(1, 0, [0, NO_PRODUCER], &mut slots);
        s.drain(slots[0].done);
        assert_eq!(s.pop_ready(), Some(1));
        assert_eq!(
            s.overflow_spares.len(),
            1,
            "drained overflow bucket returns to the freelist"
        );
        // The next overflow insertion reuses it instead of allocating.
        slots[2].done = 9 * WHEEL_SIZE as u64;
        s.on_dispatch(3, slots[0].done, [2, NO_PRODUCER], &mut slots);
        assert!(s.overflow_spares.is_empty(), "spare bucket was reused");
        // Buckets stranded by a budget cutoff are reclaimed at reset.
        s.reset(6);
        assert_eq!(s.overflow_spares.len(), 1);
        assert!(s.overflow.is_empty());
    }

    #[test]
    fn deferred_ops_rearm() {
        let mut slots = in_flight(2);
        let mut s = WakeupScheduler::new(2);
        s.on_dispatch(0, 0, [NO_PRODUCER, NO_PRODUCER], &mut slots);
        s.drain(1);
        let idx = s.pop_ready().unwrap();
        s.defer(idx);
        assert!(!s.has_ready());
        s.rearm_deferred();
        assert!(s.has_ready());
        assert_eq!(s.pop_ready(), Some(0));
    }
}
