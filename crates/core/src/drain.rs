//! The analytical window model: dispatch-rate-limited, window-capped
//! data-flow scheduling.
//!
//! Interval analysis models the drain behaviour of the issue window
//! without simulating cycle-by-cycle. An interval's instructions enter the
//! window at the dispatch rate `D` (the steady-state throughput of a
//! balanced design), subject to the window-capacity constraint — op `i`
//! cannot enter before op `i - W` has issued — and then execute in data-
//! flow order with their class latencies. From the resulting schedule the
//! *branch resolution time* (window-entry to execution) is read off
//! directly.
//!
//! This captures the paper's mechanisms in one model:
//!
//! * long intervals fill the window, so instructions accumulate a queueing
//!   lag behind dispatch that saturates near `W / D` (Little's law) — the
//!   interval-length/burstiness contributor (ii);
//! * the lag itself is created by the program's dependence structure —
//!   the inherent-ILP contributor (iii);
//! * latencies scale every chain — contributor (iv);
//! * short D-cache misses locally stretch chains — contributor (v).

use bmp_trace::MicroOp;
use bmp_uarch::{LatencyTable, MachineConfig, OpClass};

/// Scheduling parameters extracted from a machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowParams {
    /// Dispatch width `D`.
    pub dispatch_width: u32,
    /// Window capacity `W`.
    pub window_size: u32,
}

impl From<&MachineConfig> for WindowParams {
    fn from(cfg: &MachineConfig) -> Self {
        Self {
            dispatch_width: cfg.dispatch_width,
            window_size: cfg.window_size,
        }
    }
}

/// The schedule of one interval under the window model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSchedule {
    /// Cycle each op enters the window.
    pub enter: Vec<u64>,
    /// Cycle each op issues (starts executing).
    pub issue: Vec<u64>,
    /// Cycle each op's result becomes available.
    pub done: Vec<u64>,
}

impl IntervalSchedule {
    /// The resolution time of op `i`: window entry to result, the drain
    /// component of a misprediction's penalty when `i` is the mispredicted
    /// branch.
    pub fn resolution(&self, i: usize) -> u64 {
        self.done[i] - self.enter[i]
    }

    /// The interval's total drain time: the last completion.
    pub fn drain_time(&self) -> u64 {
        self.done.iter().copied().max().unwrap_or(0)
    }
}

/// Schedules `ops` (one interval, oldest first) under the window model.
///
/// `load_latency(i)` supplies the latency of the load at interval-relative
/// position `i` (from the functional cache pass); non-loads use `lat`.
/// Dependences whose distance reaches before the interval are treated as
/// ready at cycle 0 — the previous interval has drained past them.
///
/// Set `ignore_deps` to schedule the same ops without dependence
/// constraints (the ILP knock-out of the penalty decomposition).
///
/// # Examples
///
/// ```
/// use bmp_core::drain::{schedule_interval, WindowParams};
/// use bmp_trace::MicroOp;
/// use bmp_uarch::{LatencyTable, OpClass};
///
/// let ops: Vec<_> = (0..8)
///     .map(|i| MicroOp::alu(i * 4, OpClass::IntAlu, [if i > 0 { Some(1) } else { None }, None]))
///     .collect();
/// let params = WindowParams { dispatch_width: 4, window_size: 32 };
/// let s = schedule_interval(&ops, params, &LatencyTable::unit(), |_| None, false);
/// // A serial chain: op 0 enters at 0 and issues at 1 (dispatch-to-issue
/// // takes a cycle), so op 7 completes at cycle 9 having entered at 1.
/// assert_eq!(s.done[7], 9);
/// assert_eq!(s.resolution(7), 8);
/// ```
pub fn schedule_interval<F>(
    ops: &[MicroOp],
    params: WindowParams,
    lat: &LatencyTable,
    mut load_latency: F,
    ignore_deps: bool,
) -> IntervalSchedule
where
    F: FnMut(usize) -> Option<u32>,
{
    let d = u64::from(params.dispatch_width.max(1));
    let w = params.window_size as usize;
    let n = ops.len();
    let mut enter = Vec::with_capacity(n);
    let mut issue = Vec::with_capacity(n);
    let mut done = Vec::with_capacity(n);
    for (i, op) in ops.iter().enumerate() {
        // Dispatch-rate entry: D ops per cycle, starting at cycle 0.
        let mut e = i as u64 / d;
        // Window cap: op i waits for op i-W to have issued.
        if i >= w {
            e = e.max(issue[i - w]);
        }
        // Data-flow constraint. Issue is at least one cycle after entry
        // (dispatch-to-issue latency, matching the simulator's timing).
        let mut start = e + 1;
        if !ignore_deps {
            for dist in op.src_distances() {
                let dist = dist as usize;
                if dist <= i {
                    start = start.max(done[i - dist]);
                }
            }
        }
        let latency = match op.class() {
            OpClass::Load => {
                u64::from(load_latency(i).unwrap_or_else(|| lat.latency(OpClass::Load)))
            }
            c => u64::from(lat.latency(c)),
        }
        .max(1);
        enter.push(e);
        issue.push(start);
        done.push(start + latency);
    }
    IntervalSchedule { enter, issue, done }
}

/// Full machine parameters for the whole-trace schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Dispatch width `D`.
    pub dispatch_width: u32,
    /// Issue width.
    pub issue_width: u32,
    /// Issue-window capacity `W`.
    pub window_size: u32,
    /// Reorder-buffer capacity.
    pub rob_size: u32,
    /// Frontend pipeline depth `c_fe`.
    pub frontend_depth: u32,
    /// Functional-unit counts in `FU_KINDS` order.
    pub fu_counts: [u8; 5],
}

impl From<&MachineConfig> for MachineModel {
    fn from(cfg: &MachineConfig) -> Self {
        let fu_counts = std::array::from_fn(|i| cfg.fus.count(bmp_uarch::FU_KINDS[i]));
        Self {
            dispatch_width: cfg.dispatch_width,
            issue_width: cfg.issue_width,
            window_size: cfg.window_size,
            rob_size: cfg.rob_size,
            frontend_depth: cfg.frontend_depth,
            fu_counts,
        }
    }
}

/// A frontend disruption injected into the whole-trace schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendEvent {
    /// The op at `pos` is a mispredicted branch: ops after it enter the
    /// window no earlier than `done(pos) + frontend_depth`.
    Mispredict {
        /// Trace index of the branch.
        pos: usize,
    },
    /// Fetch of the op at `pos` stalled `extra` cycles (I-cache miss).
    FetchStall {
        /// Trace index of the stalled op.
        pos: usize,
        /// Extra delivery cycles.
        extra: u32,
    },
}

impl FrontendEvent {
    fn pos(&self) -> usize {
        match *self {
            FrontendEvent::Mispredict { pos } | FrontendEvent::FetchStall { pos, .. } => pos,
        }
    }
}

/// The whole-trace schedule — "interval simulation": every interval-
/// analysis mechanism applied across the full instruction stream, so
/// cross-interval state (a window still full from before a miss event,
/// chains reaching across events) is captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSchedule {
    /// Cycle each op enters the window.
    pub enter: Vec<u64>,
    /// Cycle each op issues.
    pub issue: Vec<u64>,
    /// Cycle each op's result is available.
    pub done: Vec<u64>,
}

impl TraceSchedule {
    /// Resolution time of op `i` (window entry to result).
    pub fn resolution(&self, i: usize) -> u64 {
        self.done[i] - self.enter[i]
    }

    /// Predicted total execution time: the last completion.
    pub fn total_cycles(&self) -> u64 {
        self.done.iter().copied().max().unwrap_or(0)
    }
}

/// Per-cycle issue-slot ledger: total issue width plus per-FU-kind
/// capacity.
struct SlotLedger {
    total: Vec<u8>,
    kinds: Vec<[u8; 5]>,
    issue_width: u8,
    fu_counts: [u8; 5],
}

impl SlotLedger {
    fn new(issue_width: u32, fu_counts: [u8; 5]) -> Self {
        Self {
            total: Vec::new(),
            kinds: Vec::new(),
            issue_width: issue_width.min(255) as u8,
            fu_counts,
        }
    }

    /// First cycle `>= start` where an issue slot is free and a unit of
    /// `kind` is free for `occupancy` consecutive cycles; books both.
    /// Pipelined classes use occupancy 1; non-pipelined divides hold
    /// their unit for the full latency, exactly as the simulator does.
    fn allocate(&mut self, start: u64, kind: usize, occupancy: u64) -> u64 {
        let occ = occupancy.max(1) as usize;
        let mut t = start as usize;
        'search: loop {
            let need = t + occ;
            if need >= self.total.len() {
                self.total.resize(need + 64, 0);
                self.kinds.resize(need + 64, [0; 5]);
            }
            if self.total[t] >= self.issue_width {
                t += 1;
                continue;
            }
            let mut conflict = None;
            for c in t..t + occ {
                if self.kinds[c][kind] >= self.fu_counts[kind] {
                    conflict = Some(c);
                    break;
                }
            }
            if let Some(c) = conflict {
                t = c + 1;
                continue 'search;
            }
            self.total[t] += 1;
            for c in t..t + occ {
                self.kinds[c][kind] += 1;
            }
            return t as u64;
        }
    }
}

/// Schedules the whole trace under the interval model.
///
/// Mechanisms applied, in the spirit of the paper's framework:
///
/// * **dispatch-rate entry** — `D` ops per cycle;
/// * **frontend events** — mispredictions restart entry at
///   `done(branch) + c_fe`; I-cache misses add their delivery stall;
/// * **window and ROB caps** — op `i` waits for op `i − W` to issue and
///   op `i − R` to complete (the long-miss ROB-fill mechanism);
/// * **issue bandwidth** — at most `issue_width` ops per cycle, with
///   per-FU-kind capacity, allocated oldest-first;
/// * **data-flow dependences** with class latencies, loads resolved by
///   `load_latency` (pass the functional pass's per-load latencies).
///
/// `events` must be sorted by position.
///
/// # Panics
///
/// Panics if `events` is not sorted by position.
pub fn schedule_trace<F>(
    ops: &[MicroOp],
    model: MachineModel,
    lat: &LatencyTable,
    mut load_latency: F,
    events: &[FrontendEvent],
    ignore_deps: bool,
) -> TraceSchedule
where
    F: FnMut(usize) -> Option<u32>,
{
    assert!(
        events.windows(2).all(|w| w[0].pos() <= w[1].pos()),
        "frontend events must be sorted by position"
    );
    let d = u64::from(model.dispatch_width.max(1));
    let w = model.window_size as usize;
    let r = model.rob_size as usize;
    let fe = u64::from(model.frontend_depth);
    let n = ops.len();
    let mut enter = Vec::with_capacity(n);
    let mut issue = Vec::with_capacity(n);
    let mut done = Vec::with_capacity(n);
    let mut slots = SlotLedger::new(model.issue_width, model.fu_counts);

    // Entry cursor: `cursor` is the cycle the next op would enter;
    // `count` how many already entered that cycle.
    let mut cursor = 0u64;
    let mut count = 0u64;
    let mut next_event = 0usize;
    // Barrier waiting for a mispredicted branch to resolve: set when the
    // branch is scheduled, consumed before the next op enters.
    let mut pending_barrier: Option<u64> = None;

    for (i, op) in ops.iter().enumerate() {
        // Frontend events at this op.
        let mut mispredict_here = false;
        while next_event < events.len() && events[next_event].pos() == i {
            match events[next_event] {
                FrontendEvent::FetchStall { extra, .. } => {
                    cursor += u64::from(extra);
                    count = 0;
                }
                FrontendEvent::Mispredict { .. } => mispredict_here = true,
            }
            next_event += 1;
        }
        if let Some(b) = pending_barrier.take() {
            if b > cursor {
                cursor = b;
                count = 0;
            }
        }
        // Window / ROB capacity.
        let mut floor = cursor;
        if i >= w {
            floor = floor.max(issue[i - w]);
        }
        if i >= r {
            floor = floor.max(done[i - r]);
        }
        if floor > cursor {
            cursor = floor;
            count = 0;
        }
        let e = cursor;
        count += 1;
        if count >= d {
            cursor += 1;
            count = 0;
        }

        // Data-flow start: at least one cycle after entry (dispatch-to-
        // issue latency, matching the simulator's timing).
        let mut start = e + 1;
        if !ignore_deps {
            for dist in op.src_distances() {
                let dist = dist as usize;
                if dist <= i {
                    start = start.max(done[i - dist]);
                }
            }
        }
        // Issue-slot allocation; divides occupy their unit for the full
        // latency (non-pipelined), everything else for one cycle.
        let kind = op.class().fu_kind().index();
        let latency = match op.class() {
            OpClass::Load => {
                u64::from(load_latency(i).unwrap_or_else(|| lat.latency(OpClass::Load)))
            }
            c => u64::from(lat.latency(c)),
        }
        .max(1);
        let occupancy = match op.class() {
            OpClass::IntDiv | OpClass::FpDiv => latency,
            _ => 1,
        };
        let s = slots.allocate(start, kind, occupancy);
        enter.push(e);
        issue.push(s);
        done.push(s + latency);

        // A misprediction at this op gates the next op's entry.
        if mispredict_here {
            pending_barrier = Some(done[i] + fe);
        }
    }
    TraceSchedule { enter, issue, done }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(d: u32, w: u32) -> WindowParams {
        WindowParams {
            dispatch_width: d,
            window_size: w,
        }
    }

    fn chain(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::alu(
                    i as u64 * 4,
                    OpClass::IntAlu,
                    [if i > 0 { Some(1) } else { None }, None],
                )
            })
            .collect()
    }

    fn independent(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp::alu(i as u64 * 4, OpClass::IntAlu, [None, None]))
            .collect()
    }

    #[test]
    fn independent_ops_track_dispatch_rate() {
        let ops = independent(16);
        let s = schedule_interval(&ops, params(4, 64), &LatencyTable::unit(), |_| None, false);
        for i in 0..16 {
            assert_eq!(s.enter[i], i as u64 / 4);
            assert_eq!(
                s.resolution(i),
                2,
                "dispatch-to-issue plus execution when ILP is unbounded"
            );
        }
        assert_eq!(s.drain_time(), 5);
    }

    #[test]
    fn serial_chain_lag_grows_until_window_cap() {
        // ILP 1 against dispatch 4: the lag grows ~3 cycles per 4 ops
        // until the window constraint throttles entry.
        let ops = chain(256);
        let w = 32;
        let s = schedule_interval(&ops, params(4, w), &LatencyTable::unit(), |_| None, false);
        // Late in the interval the resolution saturates near W (the op
        // waits for the full window ahead of it to drain at 1/cycle).
        let late = s.resolution(255);
        assert!(
            (w as u64 - 4..=w as u64 + 5).contains(&late),
            "saturated resolution {late} should be near the window size {w}"
        );
        // Early ops have small resolution (ramp-up).
        assert!(s.resolution(4) < 8);
        // Monotone-ish growth from early to late.
        assert!(s.resolution(200) > s.resolution(10));
    }

    #[test]
    fn resolution_scales_with_latency() {
        let ops = chain(64);
        let unit = schedule_interval(&ops, params(4, 64), &LatencyTable::unit(), |_| None, false);
        let mut lat3 = [1u32; 9];
        lat3[bmp_uarch::OpClass::IntAlu.index()] = 3;
        let table = LatencyTable::new(lat3).unwrap();
        let slow = schedule_interval(&ops, params(4, 64), &table, |_| None, false);
        assert!(
            slow.resolution(63) > unit.resolution(63) * 2,
            "3x latency should ~3x the chain drain: {} vs {}",
            slow.resolution(63),
            unit.resolution(63)
        );
    }

    #[test]
    fn load_latencies_are_injected() {
        // op1 is a load feeding op2.
        let ops = vec![
            MicroOp::alu(0, OpClass::IntAlu, [None, None]),
            MicroOp::load(4, 0x100, [Some(1), None]),
            MicroOp::alu(8, OpClass::IntAlu, [Some(1), None]),
        ];
        let fast = schedule_interval(
            &ops,
            params(4, 64),
            &LatencyTable::unit(),
            |_| Some(2),
            false,
        );
        let slow = schedule_interval(
            &ops,
            params(4, 64),
            &LatencyTable::unit(),
            |_| Some(14),
            false,
        );
        assert_eq!(slow.done[2] - fast.done[2], 12, "short-miss inflation");
    }

    #[test]
    fn ignore_deps_knocks_out_chains() {
        let ops = chain(64);
        let s = schedule_interval(&ops, params(4, 64), &LatencyTable::unit(), |_| None, true);
        for i in 0..64 {
            assert_eq!(s.resolution(i), 2);
        }
    }

    #[test]
    fn out_of_interval_dependences_are_ready() {
        // distance 5 at position 0 reaches before the interval.
        let ops = vec![MicroOp::alu(0, OpClass::IntAlu, [Some(5), None])];
        let s = schedule_interval(&ops, params(4, 64), &LatencyTable::unit(), |_| None, false);
        assert_eq!(s.done[0], 2, "enter 0, issue 1, done 2");
    }

    #[test]
    fn empty_interval_is_fine() {
        let s = schedule_interval(&[], params(4, 64), &LatencyTable::unit(), |_| None, false);
        assert_eq!(s.drain_time(), 0);
    }

    #[test]
    fn window_params_from_config() {
        let cfg = bmp_uarch::presets::baseline_4wide();
        let p = WindowParams::from(&cfg);
        assert_eq!(p.dispatch_width, 4);
        assert_eq!(p.window_size, 64);
    }

    fn model4() -> MachineModel {
        MachineModel::from(&bmp_uarch::presets::baseline_4wide())
    }

    #[test]
    fn trace_schedule_ideal_code_runs_at_width() {
        // 4 independent streams of int ALU ops (4 units, width 4).
        let ops: Vec<MicroOp> = (0..4000)
            .map(|i| {
                MicroOp::alu(
                    i as u64 * 4,
                    OpClass::IntAlu,
                    [if i >= 4 { Some(4) } else { None }, None],
                )
            })
            .collect();
        let s = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::default(),
            |_| None,
            &[],
            false,
        );
        let cycles = s.total_cycles();
        assert!(
            (1000..=1020).contains(&cycles),
            "4000 ops at width 4 should take ~1000 cycles, got {cycles}"
        );
    }

    #[test]
    fn issue_width_caps_ready_bursts() {
        // All ops independent and ready at once — the issue ledger must
        // spread them at 4/cycle even though dependences allow 1 cycle.
        let ops = independent(64);
        let s = schedule_trace(&ops, model4(), &LatencyTable::unit(), |_| None, &[], false);
        // op 63 enters at cycle 15 and issues the cycle after.
        assert_eq!(s.issue[63], 16);
        // Force them ready early by ignoring entry pacing is not
        // possible; instead check no cycle got more than 4 issues.
        let mut per_cycle = std::collections::HashMap::new();
        for &t in &s.issue {
            *per_cycle.entry(t).or_insert(0u32) += 1;
        }
        assert!(per_cycle.values().all(|&c| c <= 4));
    }

    #[test]
    fn fu_capacity_binds_below_issue_width() {
        // Only 1 int mul/div unit: a burst of multiplies issues 1/cycle.
        let ops: Vec<MicroOp> = (0..16)
            .map(|i| MicroOp::alu(i as u64 * 4, OpClass::IntMul, [None, None]))
            .collect();
        let s = schedule_trace(&ops, model4(), &LatencyTable::unit(), |_| None, &[], false);
        let mut per_cycle = std::collections::HashMap::new();
        for &t in &s.issue {
            *per_cycle.entry(t).or_insert(0u32) += 1;
        }
        assert!(
            per_cycle.values().all(|&c| c <= 1),
            "one mul unit allows one multiply per cycle"
        );
    }

    #[test]
    fn mispredict_barrier_delays_following_ops() {
        let ops = independent(32);
        let events = [FrontendEvent::Mispredict { pos: 7 }];
        let s = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::unit(),
            |_| None,
            &events,
            false,
        );
        // done(7) = enter(7)+2 = 3; barrier = 3 + 5 = 8.
        assert_eq!(s.enter[8], s.done[7] + 5);
        // Ops before the barrier are unaffected.
        assert_eq!(s.enter[7], 1);
    }

    #[test]
    fn fetch_stall_shifts_entry() {
        let ops = independent(16);
        let events = [FrontendEvent::FetchStall { pos: 4, extra: 10 }];
        let s = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::unit(),
            |_| None,
            &events,
            false,
        );
        assert_eq!(s.enter[3], 0);
        assert_eq!(s.enter[4], 11, "1 cycle of pacing + 10 stall");
    }

    #[test]
    fn rob_cap_blocks_behind_long_miss() {
        // A long-miss load followed by >R independent ops: entry of op
        // load+R waits for the load's completion.
        let mut ops = vec![MicroOp::load(0, 0x100, [None, None])];
        ops.extend(independent(200));
        let s = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::unit(),
            |i| if i == 0 { Some(200) } else { None },
            &[],
            false,
        );
        let r = 128;
        assert!(
            s.enter[r] >= 200,
            "op R after the load must wait for ROB space: entered {}",
            s.enter[r]
        );
        assert!(s.enter[r - 1] < 200, "ops within ROB reach proceed");
    }

    #[test]
    fn coincident_stall_and_mispredict_apply_both() {
        let ops = independent(16);
        let events = [
            FrontendEvent::FetchStall { pos: 3, extra: 5 },
            FrontendEvent::Mispredict { pos: 3 },
        ];
        let s = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::unit(),
            |_| None,
            &events,
            false,
        );
        // Stall delays op 3 itself; the mispredict barrier gates op 4.
        assert!(s.enter[3] >= 5);
        assert_eq!(s.enter[4], s.done[3] + 5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_events_panic() {
        let ops = independent(4);
        let events = [
            FrontendEvent::Mispredict { pos: 3 },
            FrontendEvent::Mispredict { pos: 1 },
        ];
        let _ = schedule_trace(
            &ops,
            model4(),
            &LatencyTable::unit(),
            |_| None,
            &events,
            false,
        );
    }

    #[test]
    fn empty_trace_schedule() {
        let s = schedule_trace(&[], model4(), &LatencyTable::unit(), |_| None, &[], false);
        assert_eq!(s.total_cycles(), 0);
    }
}
