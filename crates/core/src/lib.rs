//! Interval analysis of superscalar performance — the reproduction of
//! Eyerman, Smith & Eeckhout, *"Characterizing the branch misprediction
//! penalty"* (ISPASS 2006).
//!
//! Interval analysis views execution as a sequence of *intervals* between
//! *miss events* (branch mispredictions, I-cache misses, long D-cache
//! misses). Between events a balanced machine sustains its dispatch width
//! `D`; each event inserts a penalty. This crate provides:
//!
//! * [`functional`] — a timing-free frontend pass that derives the miss
//!   events and per-load latencies of a trace from the machine's
//!   predictor and cache models (no cycle-level simulation needed);
//! * [`intervals`] — segmentation of the instruction stream into
//!   inter-miss intervals;
//! * [`drain`] — the analytical window model: dispatch-rate-limited,
//!   window-capped data-flow scheduling of an interval, from which a
//!   branch's *resolution time* is read off;
//! * [`penalty`] — the paper's centerpiece: per-misprediction penalty
//!   `= resolution + frontend refill`, decomposed into the five
//!   contributors by knock-out re-scheduling;
//! * [`closed_form`] — the statistics-only penalty estimate built from
//!   the `I_W(k)` ILP curve and the interval-length distribution;
//! * [`cpi`] — the interval-model CPI stack built on the same machinery;
//! * [`accounting`] — the observability layer's per-interval record and
//!   the shared bookkeeping both sim engines use to emit it (see
//!   `docs/OBSERVABILITY.md`);
//! * [`metrics`] — the `results/metrics/*.json` schema aggregating those
//!   records per experiment;
//! * [`identities`] — the accounting identities above as checkable
//!   predicates, shared by the model's debug assertions and the
//!   BMP2xx/BMP6xx lints (see `docs/STATIC_ANALYSIS.md`);
//! * [`journal`] + [`json`] — the crash-safe run journal and the shared
//!   hand-rolled JSON reader behind it;
//! * [`io`] + [`store`] — the atomic-write primitive and the crash-safe
//!   persistent artifact store built on it (see `docs/SERVING.md`);
//! * [`report`] — markdown rendering of an analysis;
//! * [`validate`] — error metrics for comparing the model against the
//!   cycle-level simulator (experiment E-F10).
//!
//! # Examples
//!
//! ```
//! use bmp_core::PenaltyModel;
//! use bmp_uarch::presets;
//! use bmp_workloads::spec;
//!
//! let trace = spec::by_name("twolf").unwrap().generate(20_000, 1);
//! let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
//! // The headline result: the penalty exceeds the frontend pipeline length.
//! if let Some(mean) = analysis.mean_penalty() {
//!     assert!(mean > 5.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod closed_form;
pub mod cpi;
pub mod drain;
pub mod functional;
pub mod identities;
pub mod intervals;
pub mod io;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod penalty;
pub mod report;
pub mod store;
pub mod validate;

pub use accounting::{CycleAccounting, IntervalAccountant, IntervalRecord};
pub use functional::{FunctionalOutcome, LoadClass};
pub use intervals::{
    segment, Interval, IntervalEvent, IntervalEventKind, IntervalLengthHistogram, LENGTH_BUCKETS,
};
pub use io::write_atomic;
pub use metrics::{ExperimentMetrics, ModelMetrics, WorkloadMetrics};
pub use penalty::{PenaltyAnalysis, PenaltyBreakdown, PenaltyModel};
pub use store::{DiskStore, RecoveryReport, StoreConfig, StoreError};
