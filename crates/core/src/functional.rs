//! The timing-free functional frontend pass.
//!
//! Interval analysis needs to know *where* the miss events are and *which*
//! loads are short misses — but none of that requires cycle-level timing:
//! it only requires running the predictor and the caches over the
//! instruction stream in order. This pass does exactly that, making the
//! analytical model fully standalone.
//!
//! The pass is the model's view of the machine; the cycle-level simulator
//! performs the same accesses in (out-of-order) execution order, so the
//! two can classify borderline accesses differently. That divergence is
//! part of what experiment E-F10 quantifies.

use bmp_branch::{build_predictor, BranchStats, Btb, IndirectPredictor, ReturnAddressStack};
use bmp_cache::{DataOutcome, MemoryHierarchy};
use bmp_trace::{BranchKind, Trace};
use bmp_uarch::{MachineConfig, OpClass};

use crate::intervals::{IntervalEvent, IntervalEventKind};

/// Classification of one load, from the model's functional cache pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadClass {
    /// L1D hit.
    L1Hit,
    /// Short miss: served by the L2 — contributor (v).
    ShortMiss,
    /// Long miss: served by memory — an interval-terminating event.
    LongMiss,
}

/// Everything the functional pass learns about a trace under a machine
/// configuration.
#[derive(Debug, Clone)]
pub struct FunctionalOutcome {
    /// Miss events in trace order (mispredicted branches, I-cache misses,
    /// long D-cache misses).
    pub events: Vec<IntervalEvent>,
    /// For every op index that is a load, its latency in cycles
    /// (`None` for non-loads).
    pub load_latency: Vec<Option<u32>>,
    /// For every op index that is a load, its classification.
    pub load_class: Vec<Option<LoadClass>>,
    /// Direction-prediction accounting from the pass.
    pub branch_stats: BranchStats,
}

impl FunctionalOutcome {
    /// Runs the functional pass of `cfg`'s predictor and caches over
    /// `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn compute(trace: &Trace, cfg: &MachineConfig) -> Self {
        cfg.validate().expect("machine configuration must be valid");
        let mut predictor = build_predictor(&cfg.predictor);
        let mut ras = ReturnAddressStack::new(cfg.ras_entries);
        // The BTB must see the same update stream as the simulator's so
        // indirect-target predictions (and their aliasing) agree.
        let mut btb = Btb::new(cfg.btb_entries);
        let mut indirect = IndirectPredictor::build(&cfg.indirect_predictor);
        let mut mem = MemoryHierarchy::new(&cfg.caches);
        let mut branch_stats = BranchStats::new();
        let line_mask = !u64::from(cfg.caches.l1i().line_bytes() - 1);
        let mut current_line = u64::MAX;

        let n = trace.len();
        let mut events = Vec::new();
        let mut load_latency = vec![None; n];
        let mut load_class = vec![None; n];

        for (idx, op) in trace.iter().enumerate() {
            // Instruction side, per line.
            let line = op.pc() & line_mask;
            if line != current_line {
                current_line = line;
                let access = mem.fetch_access(op.pc());
                if access.l1i_miss {
                    events.push(IntervalEvent {
                        pos: idx,
                        kind: if access.long_miss {
                            IntervalEventKind::ICacheLongMiss
                        } else {
                            IntervalEventKind::ICacheMiss
                        },
                    });
                }
            }
            // Data side.
            match op.class() {
                OpClass::Load => {
                    let addr = op.mem_addr().expect("loads carry addresses");
                    let access = mem.data_access_at(op.pc(), addr);
                    load_latency[idx] = Some(access.latency);
                    load_class[idx] = Some(match access.outcome {
                        DataOutcome::L1Hit => LoadClass::L1Hit,
                        DataOutcome::ShortMiss => LoadClass::ShortMiss,
                        DataOutcome::LongMiss => {
                            events.push(IntervalEvent {
                                pos: idx,
                                kind: IntervalEventKind::LongDCacheMiss,
                            });
                            LoadClass::LongMiss
                        }
                    });
                }
                OpClass::Store => {
                    let addr = op.mem_addr().expect("stores carry addresses");
                    let _ = mem.data_access_at(op.pc(), addr);
                }
                _ => {}
            }
            // Branch side.
            if let Some(info) = op.branch_info() {
                let mispredicted = match info.kind {
                    BranchKind::Conditional => {
                        let pred = predictor.predict(op.pc(), info.taken);
                        branch_stats.record(pred, info.taken);
                        predictor.update(op.pc(), info.taken);
                        if info.taken {
                            btb.update(op.pc(), info.target);
                        }
                        pred != info.taken
                    }
                    BranchKind::Call => {
                        ras.push(op.pc().wrapping_add(4));
                        btb.update(op.pc(), info.target);
                        false
                    }
                    BranchKind::Return => !matches!(ras.pop(), Some(t) if t == info.target),
                    BranchKind::Jump => {
                        btb.update(op.pc(), info.target);
                        false
                    }
                    BranchKind::IndirectJump => {
                        let btb_target = btb.lookup(op.pc());
                        let predicted = indirect.predict(op.pc(), btb_target);
                        indirect.update(op.pc(), info.target);
                        btb.update(op.pc(), info.target);
                        !matches!(predicted, Some(t) if t == info.target)
                    }
                };
                if mispredicted {
                    events.push(IntervalEvent {
                        pos: idx,
                        kind: IntervalEventKind::BranchMispredict,
                    });
                }
            }
        }
        // Several events can share a position ordering already in trace
        // order because the loop is in order; enforce it anyway.
        events.sort_by_key(|e| e.pos);
        Self {
            events,
            load_latency,
            load_class,
            branch_stats,
        }
    }

    /// Positions of the mispredicted branches.
    pub fn mispredict_positions(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.kind == IntervalEventKind::BranchMispredict)
            .map(|e| e.pos)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::{presets, PredictorConfig};
    use bmp_workloads::{micro, spec};

    fn tiny_perfect() -> MachineConfig {
        presets::test_tiny()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_predictor_produces_no_branch_events() {
        let trace = micro::branch_resolution_kernel(5_000, 4, 0.5, 1);
        let out = FunctionalOutcome::compute(&trace, &tiny_perfect());
        assert!(out.mispredict_positions().is_empty());
        assert_eq!(out.branch_stats.mispredictions(), 0);
    }

    #[test]
    fn always_wrong_predictor_flags_every_conditional() {
        let trace = micro::branch_resolution_kernel(5_000, 4, 1.0, 1);
        let cfg = tiny_perfect()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let out = FunctionalOutcome::compute(&trace, &cfg);
        assert_eq!(
            out.mispredict_positions(),
            trace.conditional_branch_indices()
        );
    }

    #[test]
    fn load_latencies_cover_exactly_the_loads() {
        let trace = micro::memory_kernel(5_000, 4096, 4, false, 2);
        let out = FunctionalOutcome::compute(&trace, &tiny_perfect());
        for (idx, op) in trace.iter().enumerate() {
            assert_eq!(
                out.load_latency[idx].is_some(),
                op.class() == OpClass::Load,
                "latency presence mismatch at {idx}"
            );
        }
    }

    #[test]
    fn big_working_set_yields_long_miss_events() {
        let trace = micro::memory_kernel(5_000, 16 * 1024 * 1024, 4, false, 2);
        let out = FunctionalOutcome::compute(&trace, &tiny_perfect());
        let long = out
            .events
            .iter()
            .filter(|e| e.kind == IntervalEventKind::LongDCacheMiss)
            .count();
        assert!(long > 500, "expected many long-miss events, got {long}");
    }

    #[test]
    fn small_working_set_is_mostly_hits() {
        let trace = micro::memory_kernel(20_000, 512, 4, false, 2);
        let out = FunctionalOutcome::compute(&trace, &tiny_perfect());
        let hits = out
            .load_class
            .iter()
            .flatten()
            .filter(|c| **c == LoadClass::L1Hit)
            .count();
        let loads = out.load_class.iter().flatten().count();
        assert!(hits as f64 > loads as f64 * 0.95);
    }

    #[test]
    fn events_are_sorted_by_position() {
        let trace = spec::by_name("gcc").unwrap().generate(30_000, 9);
        let out = FunctionalOutcome::compute(&trace, &presets::baseline_4wide());
        assert!(out.events.windows(2).all(|w| w[0].pos <= w[1].pos));
        assert!(!out.events.is_empty(), "gcc-like trace should have events");
    }
}
