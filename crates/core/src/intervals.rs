//! Segmentation of the instruction stream into inter-miss intervals.

use serde::{Deserialize, Serialize};

/// The miss-event kinds of interval analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntervalEventKind {
    /// Mispredicted branch (conditional direction or return target).
    BranchMispredict,
    /// L1 I-cache miss served by the L2.
    ICacheMiss,
    /// Instruction fetch that went to memory.
    ICacheLongMiss,
    /// Load served by memory.
    LongDCacheMiss,
}

impl IntervalEventKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            IntervalEventKind::BranchMispredict => "bmiss",
            IntervalEventKind::ICacheMiss => "il1",
            IntervalEventKind::ICacheLongMiss => "il2",
            IntervalEventKind::LongDCacheMiss => "dlong",
        }
    }
}

/// One miss event, positioned in the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalEvent {
    /// Dynamic-instruction index the event is attached to.
    pub pos: usize,
    /// What happened there.
    pub kind: IntervalEventKind,
}

/// One inter-miss interval: the instructions from just after the previous
/// miss event up to and including the instruction carrying this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// First instruction of the interval.
    pub start: usize,
    /// The instruction carrying the terminating event (inclusive).
    pub end: usize,
    /// Kind of the terminating event, or `None` for the final partial
    /// interval that runs to the end of the trace.
    pub kind: Option<IntervalEventKind>,
}

impl Interval {
    /// Number of instructions in the interval (including the event
    /// instruction). Never zero — an interval always contains at least
    /// its event instruction, so there is deliberately no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// `true` when the interval holds a single instruction (back-to-back
    /// events — maximal burstiness).
    pub fn is_single(&self) -> bool {
        self.len() == 1
    }
}

/// Splits a trace of `n_ops` instructions into intervals at `events`.
///
/// `events` must be sorted by position (as produced by
/// [`FunctionalOutcome`](crate::FunctionalOutcome) or by sorting a
/// simulator event log); consecutive events at the same position are
/// collapsed into one interval boundary, keeping the first kind. A final
/// partial interval (with `kind: None`) covers any tail after the last
/// event.
///
/// # Panics
///
/// Panics if `events` is not sorted or an event position is out of range.
///
/// # Examples
///
/// ```
/// use bmp_core::{segment, IntervalEvent, IntervalEventKind};
///
/// let events = [
///     IntervalEvent { pos: 9, kind: IntervalEventKind::BranchMispredict },
///     IntervalEvent { pos: 29, kind: IntervalEventKind::LongDCacheMiss },
/// ];
/// let ivs = segment(40, &events);
/// assert_eq!(ivs.len(), 3);
/// assert_eq!(ivs[0].len(), 10);
/// assert_eq!(ivs[1].len(), 20);
/// assert_eq!(ivs[2].kind, None);
/// ```
pub fn segment(n_ops: usize, events: &[IntervalEvent]) -> Vec<Interval> {
    let mut intervals = Vec::with_capacity(events.len() + 1);
    let mut start = 0usize;
    let mut last_pos: Option<usize> = None;
    for e in events {
        assert!(e.pos < n_ops, "event position {} out of range", e.pos);
        if let Some(lp) = last_pos {
            assert!(e.pos >= lp, "events must be sorted by position");
            if e.pos == lp {
                // Same instruction carries several events; one boundary.
                continue;
            }
        }
        intervals.push(Interval {
            start,
            end: e.pos,
            kind: Some(e.kind),
        });
        start = e.pos + 1;
        last_pos = Some(e.pos);
    }
    if start < n_ops {
        intervals.push(Interval {
            start,
            end: n_ops - 1,
            kind: None,
        });
    }
    intervals
}

/// Histogram of interval lengths with logarithmic-ish buckets, used by
/// the burstiness characterization (E-F4).
///
/// Bucket `i` covers lengths in `[BUCKETS[i], BUCKETS[i+1])`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalLengthHistogram {
    counts: Vec<u64>,
    total: u64,
}

/// Bucket boundaries for [`IntervalLengthHistogram`].
pub const LENGTH_BUCKETS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

impl IntervalLengthHistogram {
    /// Builds the histogram from a set of intervals (the final partial
    /// interval, if present, is excluded — it has no terminating event).
    pub fn from_intervals(intervals: &[Interval]) -> Self {
        let mut counts = vec![0u64; LENGTH_BUCKETS.len() + 1];
        let mut total = 0;
        for iv in intervals.iter().filter(|iv| iv.kind.is_some()) {
            let len = iv.len();
            let bucket = LENGTH_BUCKETS
                .iter()
                .position(|&b| len < b)
                .map(|p| p.saturating_sub(1))
                .unwrap_or(LENGTH_BUCKETS.len());
            // position() gives the first boundary exceeding len; bucket
            // index is one less. len >= 1 always, so position 0 never
            // fires (boundary 1 <= len).
            counts[bucket] += 1;
            total += 1;
        }
        Self { counts, total }
    }

    /// Count in bucket `i` (see [`LENGTH_BUCKETS`]); the final bucket
    /// holds everything at or beyond the last boundary.
    pub fn count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Number of buckets (boundaries + overflow).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total intervals recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of intervals in bucket `i`.
    pub fn fraction(&self, bucket: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[bucket] as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pos: usize, kind: IntervalEventKind) -> IntervalEvent {
        IntervalEvent { pos, kind }
    }

    #[test]
    fn segments_with_tail() {
        let events = [
            ev(4, IntervalEventKind::BranchMispredict),
            ev(5, IntervalEventKind::BranchMispredict),
            ev(19, IntervalEventKind::ICacheMiss),
        ];
        let ivs = segment(30, &events);
        assert_eq!(ivs.len(), 4);
        assert_eq!((ivs[0].start, ivs[0].end, ivs[0].len()), (0, 4, 5));
        assert_eq!(ivs[1].len(), 1, "back-to-back events give a 1-interval");
        assert!(ivs[1].is_single());
        assert_eq!(ivs[2].len(), 14);
        assert_eq!(ivs[3].kind, None);
        assert_eq!(ivs[3].end, 29);
    }

    #[test]
    fn no_events_gives_one_partial_interval() {
        let ivs = segment(10, &[]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].kind, None);
        assert_eq!(ivs[0].len(), 10);
    }

    #[test]
    fn event_on_last_instruction_leaves_no_tail() {
        let ivs = segment(10, &[ev(9, IntervalEventKind::LongDCacheMiss)]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].kind, Some(IntervalEventKind::LongDCacheMiss));
    }

    #[test]
    fn coincident_events_collapse() {
        let ivs = segment(
            10,
            &[
                ev(3, IntervalEventKind::ICacheMiss),
                ev(3, IntervalEventKind::BranchMispredict),
            ],
        );
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].kind, Some(IntervalEventKind::ICacheMiss));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_events_panic() {
        let _ = segment(
            10,
            &[
                ev(5, IntervalEventKind::ICacheMiss),
                ev(3, IntervalEventKind::ICacheMiss),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_event_panics() {
        let _ = segment(5, &[ev(5, IntervalEventKind::ICacheMiss)]);
    }

    #[test]
    fn lengths_partition_the_trace() {
        let events = [
            ev(10, IntervalEventKind::BranchMispredict),
            ev(11, IntervalEventKind::BranchMispredict),
            ev(99, IntervalEventKind::LongDCacheMiss),
        ];
        let n = 250;
        let ivs = segment(n, &events);
        let total: usize = ivs.iter().map(|iv| iv.len()).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn histogram_buckets() {
        let ivs = [
            Interval {
                start: 0,
                end: 0,
                kind: Some(IntervalEventKind::BranchMispredict),
            }, // len 1
            Interval {
                start: 1,
                end: 3,
                kind: Some(IntervalEventKind::BranchMispredict),
            }, // len 3
            Interval {
                start: 4,
                end: 600,
                kind: Some(IntervalEventKind::BranchMispredict),
            }, // len 597
            Interval {
                start: 601,
                end: 700,
                kind: None,
            }, // excluded
        ];
        let h = IntervalLengthHistogram::from_intervals(&ivs);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(0), 1, "len 1 in bucket [1,2)");
        assert_eq!(h.count(1), 1, "len 3 in bucket [2,4)");
        assert_eq!(h.count(LENGTH_BUCKETS.len()), 1, "len 597 in overflow");
        assert!((h.fraction(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_edges() {
        // len exactly at boundary 8 belongs to bucket [8,16) = index 3.
        let ivs = [Interval {
            start: 0,
            end: 7,
            kind: Some(IntervalEventKind::ICacheMiss),
        }];
        let h = IntervalLengthHistogram::from_intervals(&ivs);
        assert_eq!(h.count(3), 1);
    }
}
