//! Crash-safe run journal: the persistent manifest of an experiment run.
//!
//! `bmp-bench` (the `run_all` binary in `crates/bench`) maintains
//! `results/run_journal.json` as it works: one [`ExperimentRecord`] per
//! experiment with its completion status, content fingerprint, attempt
//! count and — for failures — the error that stopped it. The journal is
//! rewritten atomically after every experiment finishes, so a crash (or
//! an injected fault) leaves a consistent manifest of exactly what was
//! produced. `bmp-bench --resume` reads it back and skips experiments
//! whose record says *completed*, whose fingerprint matches the current
//! configuration, and whose CSV is still on disk.
//!
//! When the observability layer is enabled (`BMP_METRICS=1`, see
//! `docs/OBSERVABILITY.md`), completed records also carry the relative
//! path of the experiment's metrics file under `results/` in the
//! optional `metrics` field, tying each CSV to the accounting that
//! produced it.
//!
//! The format is deliberately plain JSON so humans and the `bmp-lint
//! --journal` checker (rule family BMP4xx in `bmp-analyze`) can read it.
//! Serialization is hand-rolled like every other emitter in this
//! workspace; parsing uses the workspace's shared recursive-descent
//! reader, [`crate::json`] — the workspace carries no JSON dependency.
//!
//! Fingerprints are 64-bit content hashes (see `cache_key` in the bench
//! crate) and are stored as fixed-width hex *strings*: JSON tooling
//! treats numbers as f64 and would silently corrupt the top bits.

use crate::json::{self, JsonError, ObjectExt};
use std::fmt;

/// Journal format version written by this crate; readers reject others.
pub const JOURNAL_VERSION: u32 = 1;

/// Terminal status of one experiment within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The experiment produced its table and the CSV was written.
    Completed,
    /// The experiment (or writing its output) ultimately failed after
    /// all retry attempts.
    Failed,
}

impl RunStatus {
    fn as_str(self) -> &'static str {
        match self {
            RunStatus::Completed => "completed",
            RunStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(RunStatus::Completed),
            "failed" => Some(RunStatus::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One experiment's entry in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// Experiment name (matches the registry and the CSV filename stem).
    pub name: String,
    /// Terminal status of the most recent run of this experiment.
    pub status: RunStatus,
    /// Content fingerprint of `(name, ops, seed)` at the time of the
    /// run; a resume only trusts records whose fingerprint matches the
    /// current configuration.
    pub fingerprint: u64,
    /// Attempts consumed (≥ 1; a first-try success is 1).
    pub attempts: u32,
    /// Human-readable error for failed records; `None` when completed.
    pub error: Option<String>,
    /// Path of the experiment's metrics file, relative to `results/`
    /// (e.g. `metrics/fig2_penalty_per_benchmark.json`). Present only
    /// for completed records of runs made with `BMP_METRICS=1`.
    pub metrics: Option<String>,
    /// FNV-1a content hash of the experiment's CSV bytes as written,
    /// in fixed-width hex (same string discipline as `fingerprint`).
    /// `--resume` re-hashes the CSV on disk and recomputes on mismatch,
    /// so a deleted *or silently corrupted* artifact never causes a
    /// false skip. Absent in journals from before this field existed —
    /// such records are resumed on existence alone, as before.
    pub csv_fnv: Option<String>,
}

/// The whole journal: run-level configuration plus per-experiment records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunJournal {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Instruction budget the run was scaled to (`BMP_OPS`).
    pub ops: u64,
    /// Trace seed the run used (`BMP_SEED`).
    pub seed: u64,
    /// Per-experiment records, in registry order.
    pub experiments: Vec<ExperimentRecord>,
}

impl RunJournal {
    /// An empty journal for a run at the given scale.
    pub fn new(ops: u64, seed: u64) -> Self {
        Self {
            version: JOURNAL_VERSION,
            ops,
            seed,
            experiments: Vec::new(),
        }
    }

    /// Looks up a record by experiment name.
    pub fn find(&self, name: &str) -> Option<&ExperimentRecord> {
        self.experiments.iter().find(|r| r.name == name)
    }

    /// Inserts or replaces the record for `record.name`.
    pub fn upsert(&mut self, record: ExperimentRecord) {
        match self.experiments.iter_mut().find(|r| r.name == record.name) {
            Some(slot) => *slot = record,
            None => self.experiments.push(record),
        }
    }

    /// Number of records with [`RunStatus::Failed`].
    pub fn failed_count(&self) -> usize {
        self.experiments
            .iter()
            .filter(|r| r.status == RunStatus::Failed)
            .count()
    }

    /// Serializes the journal as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"ops\": {},\n", self.ops));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"experiments\": [");
        for (i, r) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"name\": {},\n",
                json::escape_string(&r.name)
            ));
            out.push_str(&format!("      \"status\": \"{}\",\n", r.status));
            out.push_str(&format!(
                "      \"fingerprint\": \"{:016x}\",\n",
                r.fingerprint
            ));
            out.push_str(&format!("      \"attempts\": {}", r.attempts));
            if let Some(err) = &r.error {
                out.push_str(&format!(",\n      \"error\": {}", json::escape_string(err)));
            }
            if let Some(metrics) = &r.metrics {
                out.push_str(&format!(
                    ",\n      \"metrics\": {}",
                    json::escape_string(metrics)
                ));
            }
            if let Some(csv_fnv) = &r.csv_fnv {
                out.push_str(&format!(
                    ",\n      \"csv_fnv\": {}",
                    json::escape_string(csv_fnv)
                ));
            }
            out.push_str("\n    }");
        }
        if !self.experiments.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a journal previously written by [`to_json`](Self::to_json)
    /// (or any JSON object with the same shape).
    pub fn parse(text: &str) -> Result<Self, JournalError> {
        let value = json::parse(text)?;
        let obj = value.as_object("journal root")?;
        let version = obj.get_u64("version")? as u32;
        if version != JOURNAL_VERSION {
            return Err(JournalError::new(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            )));
        }
        let ops = obj.get_u64("ops")?;
        let seed = obj.get_u64("seed")?;
        let mut experiments = Vec::new();
        for item in obj.get_array("experiments")? {
            let rec = item.as_object("experiment record")?;
            let name = rec.get_string("name")?.to_string();
            let status_raw = rec.get_string("status")?;
            let status = RunStatus::parse(status_raw).ok_or_else(|| {
                JournalError::new(format!("unknown status {status_raw:?} for {name:?}"))
            })?;
            let fp_raw = rec.get_string("fingerprint")?;
            let fingerprint = u64::from_str_radix(fp_raw, 16).map_err(|_| {
                JournalError::new(format!("bad fingerprint {fp_raw:?} for {name:?}"))
            })?;
            let attempts = rec.get_u64("attempts")? as u32;
            let error = match rec.get("error") {
                Some(v) => Some(v.as_string("error")?.to_string()),
                None => None,
            };
            let metrics = match rec.get("metrics") {
                Some(v) => Some(v.as_string("metrics")?.to_string()),
                None => None,
            };
            let csv_fnv = match rec.get("csv_fnv") {
                Some(v) => Some(v.as_string("csv_fnv")?.to_string()),
                None => None,
            };
            experiments.push(ExperimentRecord {
                name,
                status,
                fingerprint,
                attempts,
                error,
                metrics,
                csv_fnv,
            });
        }
        Ok(Self {
            version,
            ops,
            seed,
            experiments,
        })
    }
}

/// Why a journal could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    message: String,
}

impl JournalError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl From<JsonError> for JournalError {
    fn from(err: JsonError) -> Self {
        JournalError::new(err.message().to_string())
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid run journal: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunJournal {
        RunJournal {
            version: JOURNAL_VERSION,
            ops: 50_000,
            seed: 1,
            experiments: vec![
                ExperimentRecord {
                    name: "fig8_ilp".into(),
                    status: RunStatus::Completed,
                    fingerprint: 0xdead_beef_0bad_f00d,
                    attempts: 1,
                    error: None,
                    metrics: None,
                    csv_fnv: None,
                },
                ExperimentRecord {
                    name: "fig9_cpi".into(),
                    status: RunStatus::Failed,
                    fingerprint: 3,
                    attempts: 2,
                    error: Some("cell \"fig9:gcc\" panicked:\n\tboom".into()),
                    metrics: None,
                    csv_fnv: None,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let j = sample();
        let text = j.to_json();
        let back = RunJournal::parse(&text).unwrap();
        assert_eq!(j, back);
        // Serialization is deterministic: same journal, same bytes.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn empty_journal_round_trips() {
        let j = RunJournal::new(1_000, 7);
        assert_eq!(RunJournal::parse(&j.to_json()).unwrap(), j);
    }

    #[test]
    fn metrics_path_round_trips_and_is_optional() {
        let mut j = RunJournal::new(1_000, 7);
        j.upsert(ExperimentRecord {
            name: "fig2_penalty".into(),
            status: RunStatus::Completed,
            fingerprint: 42,
            attempts: 1,
            error: None,
            metrics: Some("metrics/fig2_penalty.json".into()),
            csv_fnv: None,
        });
        let text = j.to_json();
        let back = RunJournal::parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(
            back.find("fig2_penalty").unwrap().metrics.as_deref(),
            Some("metrics/fig2_penalty.json")
        );
        // A metrics-off journal stays byte-for-byte free of the field.
        let plain = sample().to_json();
        assert!(!plain.contains("metrics"));
    }

    #[test]
    fn csv_hash_round_trips_and_is_optional() {
        let mut j = RunJournal::new(1_000, 7);
        j.upsert(ExperimentRecord {
            name: "fig8_ilp".into(),
            status: RunStatus::Completed,
            fingerprint: 42,
            attempts: 1,
            error: None,
            metrics: None,
            csv_fnv: Some("00f00ddeadbeef12".into()),
        });
        let back = RunJournal::parse(&j.to_json()).unwrap();
        assert_eq!(back, j);
        assert_eq!(
            back.find("fig8_ilp").unwrap().csv_fnv.as_deref(),
            Some("00f00ddeadbeef12")
        );
        // A journal written before the field existed parses fine and
        // yields None.
        assert!(!sample().to_json().contains("csv_fnv"));
        assert_eq!(sample().experiments[0].csv_fnv, None);
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut j = sample();
        j.upsert(ExperimentRecord {
            name: "fig9_cpi".into(),
            status: RunStatus::Completed,
            fingerprint: 3,
            attempts: 3,
            error: None,
            metrics: None,
            csv_fnv: None,
        });
        assert_eq!(j.experiments.len(), 2);
        let r = j.find("fig9_cpi").unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.attempts, 3);
        assert_eq!(j.failed_count(), 0);
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let wrong = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 9");
        assert!(RunJournal::parse(&wrong).is_err());
        assert!(RunJournal::parse("not json").is_err());
        assert!(RunJournal::parse("{\"version\": 1}").is_err());
        let trailing = format!("{}extra", sample().to_json());
        assert!(RunJournal::parse(&trailing).is_err());
    }

    #[test]
    fn fingerprints_survive_the_top_bits() {
        // The reason fingerprints are hex strings: this value is not
        // representable as an f64 and a number-typed field would corrupt
        // it in any JS-based tooling.
        let mut j = RunJournal::new(1, 1);
        j.upsert(ExperimentRecord {
            name: "x".into(),
            status: RunStatus::Completed,
            fingerprint: u64::MAX - 1,
            attempts: 1,
            error: None,
            metrics: None,
            csv_fnv: None,
        });
        let back = RunJournal::parse(&j.to_json()).unwrap();
        assert_eq!(back.find("x").unwrap().fingerprint, u64::MAX - 1);
    }
}
