//! Crash-safe run journal: the persistent manifest of an experiment run.
//!
//! `bmp-bench` (the `run_all` binary in `crates/bench`) maintains
//! `results/run_journal.json` as it works: one [`ExperimentRecord`] per
//! experiment with its completion status, content fingerprint, attempt
//! count and — for failures — the error that stopped it. The journal is
//! rewritten atomically after every experiment finishes, so a crash (or
//! an injected fault) leaves a consistent manifest of exactly what was
//! produced. `bmp-bench --resume` reads it back and skips experiments
//! whose record says *completed*, whose fingerprint matches the current
//! configuration, and whose CSV is still on disk.
//!
//! The format is deliberately plain JSON so humans and the `bmp-lint
//! --journal` checker (rule family BMP4xx in `bmp-analyze`) can read it.
//! Serialization is hand-rolled like every other emitter in this
//! workspace; parsing uses the minimal recursive-descent reader in this
//! module — the workspace carries no JSON dependency.
//!
//! Fingerprints are 64-bit content hashes (see `cache_key` in the bench
//! crate) and are stored as fixed-width hex *strings*: JSON tooling
//! treats numbers as f64 and would silently corrupt the top bits.

use std::fmt;

/// Journal format version written by this crate; readers reject others.
pub const JOURNAL_VERSION: u32 = 1;

/// Terminal status of one experiment within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The experiment produced its table and the CSV was written.
    Completed,
    /// The experiment (or writing its output) ultimately failed after
    /// all retry attempts.
    Failed,
}

impl RunStatus {
    fn as_str(self) -> &'static str {
        match self {
            RunStatus::Completed => "completed",
            RunStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(RunStatus::Completed),
            "failed" => Some(RunStatus::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One experiment's entry in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// Experiment name (matches the registry and the CSV filename stem).
    pub name: String,
    /// Terminal status of the most recent run of this experiment.
    pub status: RunStatus,
    /// Content fingerprint of `(name, ops, seed)` at the time of the
    /// run; a resume only trusts records whose fingerprint matches the
    /// current configuration.
    pub fingerprint: u64,
    /// Attempts consumed (≥ 1; a first-try success is 1).
    pub attempts: u32,
    /// Human-readable error for failed records; `None` when completed.
    pub error: Option<String>,
}

/// The whole journal: run-level configuration plus per-experiment records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunJournal {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Instruction budget the run was scaled to (`BMP_OPS`).
    pub ops: u64,
    /// Trace seed the run used (`BMP_SEED`).
    pub seed: u64,
    /// Per-experiment records, in registry order.
    pub experiments: Vec<ExperimentRecord>,
}

impl RunJournal {
    /// An empty journal for a run at the given scale.
    pub fn new(ops: u64, seed: u64) -> Self {
        Self {
            version: JOURNAL_VERSION,
            ops,
            seed,
            experiments: Vec::new(),
        }
    }

    /// Looks up a record by experiment name.
    pub fn find(&self, name: &str) -> Option<&ExperimentRecord> {
        self.experiments.iter().find(|r| r.name == name)
    }

    /// Inserts or replaces the record for `record.name`.
    pub fn upsert(&mut self, record: ExperimentRecord) {
        match self.experiments.iter_mut().find(|r| r.name == record.name) {
            Some(slot) => *slot = record,
            None => self.experiments.push(record),
        }
    }

    /// Number of records with [`RunStatus::Failed`].
    pub fn failed_count(&self) -> usize {
        self.experiments
            .iter()
            .filter(|r| r.status == RunStatus::Failed)
            .count()
    }

    /// Serializes the journal as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"ops\": {},\n", self.ops));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"experiments\": [");
        for (i, r) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&r.name)));
            out.push_str(&format!("      \"status\": \"{}\",\n", r.status));
            out.push_str(&format!(
                "      \"fingerprint\": \"{:016x}\",\n",
                r.fingerprint
            ));
            out.push_str(&format!("      \"attempts\": {}", r.attempts));
            if let Some(err) = &r.error {
                out.push_str(&format!(",\n      \"error\": {}", json_string(err)));
            }
            out.push_str("\n    }");
        }
        if !self.experiments.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a journal previously written by [`to_json`](Self::to_json)
    /// (or any JSON object with the same shape).
    pub fn parse(text: &str) -> Result<Self, JournalError> {
        let value = Parser::new(text).parse_document()?;
        let obj = value.as_object("journal root")?;
        let version = obj.get_u64("version")? as u32;
        if version != JOURNAL_VERSION {
            return Err(JournalError::new(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            )));
        }
        let ops = obj.get_u64("ops")?;
        let seed = obj.get_u64("seed")?;
        let mut experiments = Vec::new();
        for item in obj.get_array("experiments")? {
            let rec = item.as_object("experiment record")?;
            let name = rec.get_string("name")?.to_string();
            let status_raw = rec.get_string("status")?;
            let status = RunStatus::parse(status_raw).ok_or_else(|| {
                JournalError::new(format!("unknown status {status_raw:?} for {name:?}"))
            })?;
            let fp_raw = rec.get_string("fingerprint")?;
            let fingerprint = u64::from_str_radix(fp_raw, 16).map_err(|_| {
                JournalError::new(format!("bad fingerprint {fp_raw:?} for {name:?}"))
            })?;
            let attempts = rec.get_u64("attempts")? as u32;
            let error = match rec.get("error") {
                Some(v) => Some(v.as_string("error")?.to_string()),
                None => None,
            };
            experiments.push(ExperimentRecord {
                name,
                status,
                fingerprint,
                attempts,
                error,
            });
        }
        Ok(Self {
            version,
            ops,
            seed,
            experiments,
        })
    }
}

/// Why a journal could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    message: String,
}

impl JournalError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid run journal: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for the journal's shape: objects,
// arrays, strings, unsigned integers, and the standard escapes. Strict
// about structure, tolerant of whitespace.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    String(String),
    Number(u64),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, JournalError> {
        match self {
            Value::Object(fields) => Ok(fields),
            _ => Err(JournalError::new(format!("{what} is not a JSON object"))),
        }
    }

    fn as_string(&self, what: &str) -> Result<&str, JournalError> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(JournalError::new(format!("{what} is not a string"))),
        }
    }
}

trait ObjectExt {
    fn get(&self, key: &str) -> Option<&Value>;
    fn get_u64(&self, key: &str) -> Result<u64, JournalError>;
    fn get_string(&self, key: &str) -> Result<&str, JournalError>;
    fn get_array(&self, key: &str) -> Result<&Vec<Value>, JournalError>;
}

impl ObjectExt for Vec<(String, Value)> {
    fn get(&self, key: &str) -> Option<&Value> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_u64(&self, key: &str) -> Result<u64, JournalError> {
        match self.get(key) {
            Some(Value::Number(n)) => Ok(*n),
            Some(_) => Err(JournalError::new(format!("{key:?} is not a number"))),
            None => Err(JournalError::new(format!("missing field {key:?}"))),
        }
    }

    fn get_string(&self, key: &str) -> Result<&str, JournalError> {
        self.get(key)
            .ok_or_else(|| JournalError::new(format!("missing field {key:?}")))?
            .as_string(key)
    }

    fn get_array(&self, key: &str) -> Result<&Vec<Value>, JournalError> {
        match self.get(key) {
            Some(Value::Array(items)) => Ok(items),
            Some(_) => Err(JournalError::new(format!("{key:?} is not an array"))),
            None => Err(JournalError::new(format!("missing field {key:?}"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, JournalError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(JournalError::new(format!(
                "trailing garbage at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JournalError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JournalError::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), JournalError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(JournalError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JournalError> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'0'..=b'9' => self.parse_number(),
            other => Err(JournalError::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, JournalError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(JournalError::new(format!(
                        "expected ',' or '}}', found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JournalError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(JournalError::new(format!(
                        "expected ',' or ']', found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JournalError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| JournalError::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| JournalError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JournalError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JournalError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // The journal never emits surrogate pairs
                            // (only control characters go through \u).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JournalError::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(JournalError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                b => {
                    // Reassemble multi-byte UTF-8 sequences: the input
                    // came from a &str, so continuation bytes are valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| JournalError::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| JournalError::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JournalError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JournalError::new("invalid number"))?;
        text.parse::<u64>()
            .map(Value::Number)
            .map_err(|_| JournalError::new(format!("number out of range: {text}")))
    }
}

/// Byte length of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunJournal {
        RunJournal {
            version: JOURNAL_VERSION,
            ops: 50_000,
            seed: 1,
            experiments: vec![
                ExperimentRecord {
                    name: "fig8_ilp".into(),
                    status: RunStatus::Completed,
                    fingerprint: 0xdead_beef_0bad_f00d,
                    attempts: 1,
                    error: None,
                },
                ExperimentRecord {
                    name: "fig9_cpi".into(),
                    status: RunStatus::Failed,
                    fingerprint: 3,
                    attempts: 2,
                    error: Some("cell \"fig9:gcc\" panicked:\n\tboom".into()),
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let j = sample();
        let text = j.to_json();
        let back = RunJournal::parse(&text).unwrap();
        assert_eq!(j, back);
        // Serialization is deterministic: same journal, same bytes.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn empty_journal_round_trips() {
        let j = RunJournal::new(1_000, 7);
        assert_eq!(RunJournal::parse(&j.to_json()).unwrap(), j);
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut j = sample();
        j.upsert(ExperimentRecord {
            name: "fig9_cpi".into(),
            status: RunStatus::Completed,
            fingerprint: 3,
            attempts: 3,
            error: None,
        });
        assert_eq!(j.experiments.len(), 2);
        let r = j.find("fig9_cpi").unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.attempts, 3);
        assert_eq!(j.failed_count(), 0);
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let wrong = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 9");
        assert!(RunJournal::parse(&wrong).is_err());
        assert!(RunJournal::parse("not json").is_err());
        assert!(RunJournal::parse("{\"version\": 1}").is_err());
        let trailing = format!("{}extra", sample().to_json());
        assert!(RunJournal::parse(&trailing).is_err());
    }

    #[test]
    fn fingerprints_survive_the_top_bits() {
        // The reason fingerprints are hex strings: this value is not
        // representable as an f64 and a number-typed field would corrupt
        // it in any JS-based tooling.
        let mut j = RunJournal::new(1, 1);
        j.upsert(ExperimentRecord {
            name: "x".into(),
            status: RunStatus::Completed,
            fingerprint: u64::MAX - 1,
            attempts: 1,
            error: None,
        });
        let back = RunJournal::parse(&j.to_json()).unwrap();
        assert_eq!(back.find("x").unwrap().fingerprint, u64::MAX - 1);
    }
}
