//! The metrics-file schema: per-experiment observability artifacts.
//!
//! When `bmp-bench` runs with `BMP_METRICS=1` it writes one JSON file
//! per experiment under `results/metrics/`, aggregating the
//! per-interval records of [`crate::accounting`] into per-workload
//! histograms plus the analytical model's contributor totals and CPI
//! stack. This module is the *schema*: the struct definitions, the
//! aggregation from raw records, and the hand-rolled JSON round-trip
//! (the workspace carries no JSON dependency — see [`crate::json`]).
//!
//! The schema lives in `bmp-core` rather than the bench crate so
//! `bmp-analyze` can lint metrics files (rule family BMP5xx) without
//! depending on the harness, and `bmp-report` can render them without
//! depending on the analyzer. Field-by-field documentation and the
//! accounting identities the lints enforce are in
//! `docs/OBSERVABILITY.md` — keep the two in sync.

use crate::accounting::IntervalRecord;
use crate::cpi::CpiStack;
use crate::intervals::{IntervalEventKind, LENGTH_BUCKETS};
use crate::json::{self, JsonError, ObjectExt, Value};
use crate::penalty::PenaltyAnalysis;

/// Metrics format version written by this crate. Version 2 added the
/// per-workload `predictor` name and `branch_classes` attribution rows;
/// readers still accept version-1 documents (the new fields default to
/// empty) and reject anything newer.
pub const METRICS_VERSION: u32 = 2;

/// Number of histogram buckets: one per [`LENGTH_BUCKETS`] boundary
/// plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = LENGTH_BUCKETS.len() + 1;

/// Bucket index for `value` under the [`LENGTH_BUCKETS`] scheme (the
/// same power-of-two buckets the interval-length histogram uses;
/// values at or past the last boundary land in the overflow bucket).
pub fn bucket_index(value: u64) -> usize {
    LENGTH_BUCKETS
        .iter()
        .position(|&b| value < b as u64)
        .map(|p| p.saturating_sub(1))
        .unwrap_or(LENGTH_BUCKETS.len())
}

/// Interval counts by terminating-event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalCounts {
    /// Branch-misprediction intervals.
    pub bmiss: u64,
    /// L1 I-cache-miss intervals.
    pub il1: u64,
    /// Long (memory) I-cache-miss intervals.
    pub il2: u64,
    /// Long D-cache-miss intervals.
    pub dlong: u64,
}

impl IntervalCounts {
    /// Total intervals across all kinds.
    pub fn total(&self) -> u64 {
        self.bmiss + self.il1 + self.il2 + self.dlong
    }
}

/// The analytical model's aggregate accounting for one workload:
/// contributor totals over every mispredicted branch plus the
/// first-order CPI stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMetrics {
    /// Branch intervals the model analyzed (breakdown count).
    pub intervals: u64,
    /// Sum of observed (whole-trace-schedule) resolution times.
    pub resolution: u64,
    /// Sum of isolated-schedule resolution times. Equals
    /// `base + ilp + fu_latency + short_dmiss` — the BMP501 identity.
    pub local_resolution: u64,
    /// Contributor total: resolution floor.
    pub base: u64,
    /// Contributor total: dependence-chain (ILP) share.
    pub ilp: u64,
    /// Contributor total: functional-unit-latency share.
    pub fu_latency: u64,
    /// Contributor total: short D-miss share.
    pub short_dmiss: u64,
    /// Cross-interval carryover total; closes the gap between
    /// `local_resolution` and `resolution` (may be negative).
    pub carryover: i64,
    /// Frontend refill total (`breakdown count × frontend depth`).
    pub refill: u64,
    /// The first-order CPI stack for the workload.
    pub cpi_stack: CpiStack,
}

impl ModelMetrics {
    /// Aggregates a finished penalty analysis plus its CPI stack.
    pub fn from_analysis(analysis: &PenaltyAnalysis, cpi_stack: CpiStack) -> Self {
        let mut m = Self {
            intervals: analysis.breakdowns.len() as u64,
            resolution: 0,
            local_resolution: 0,
            base: 0,
            ilp: 0,
            fu_latency: 0,
            short_dmiss: 0,
            carryover: 0,
            refill: 0,
            cpi_stack,
        };
        for b in &analysis.breakdowns {
            m.resolution += b.resolution;
            m.local_resolution += b.local_resolution;
            m.base += b.base;
            m.ilp += b.ilp;
            m.fu_latency += b.fu_latency;
            m.short_dmiss += b.short_dmiss;
            m.carryover += b.carryover;
            m.refill += u64::from(b.frontend);
        }
        m
    }
}

/// Penalty attribution for one branch predictability class (schema v2).
///
/// The class labels are the static analyzer's
/// (`biased`/`patterned`/`mixed`/`h2p`/`indirect`); the cycle totals are
/// the exact static-pass local resolutions plus the refill identity, so
/// `local_resolution + refill` sums charged cycles per class (lint
/// BMP700 checks the labels, BMP701 the interval sum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPenalty {
    /// Class label (`biased`, `patterned`, `mixed`, `h2p`, `indirect`).
    pub class: String,
    /// Static branch sites in the class.
    pub sites: u64,
    /// Mispredicted-branch intervals terminated by a site of this class.
    pub intervals: u64,
    /// Local-resolution cycles charged to the class.
    pub local_resolution: u64,
    /// Frontend-refill cycles charged (`intervals × depth`).
    pub refill: u64,
}

impl ClassPenalty {
    /// Total cycles charged (local resolution + refill).
    pub fn total(&self) -> u64 {
        self.local_resolution + self.refill
    }
}

/// One workload's aggregated accounting within an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMetrics {
    /// Workload name (e.g. `gzip`).
    pub workload: String,
    /// Direction-predictor name of the simulated machine (schema v2;
    /// empty for version-1 documents, which implied the baseline).
    pub predictor: String,
    /// Per-branch-class penalty attribution (schema v2; empty when the
    /// experiment recorded no classifier pass).
    pub branch_classes: Vec<ClassPenalty>,
    /// Instructions covered by the statistics epoch.
    pub instructions: u64,
    /// Cycles covered by the statistics epoch.
    pub cycles: u64,
    /// Frontend depth of the simulated machine (the refill term).
    pub frontend_depth: u32,
    /// Mispredicted branches recorded by the simulator. BMP502 checks
    /// this equals `intervals.bmiss`.
    pub mispredicts: u64,
    /// Interval counts by kind, from the simulator's records.
    pub intervals: IntervalCounts,
    /// Sum of branch resolution times over all branch intervals.
    pub resolution_total: u64,
    /// Sum of frontend refills over all branch intervals.
    pub refill_total: u64,
    /// Sum of window occupancies at dispatch over all branch intervals.
    pub occupancy_total: u64,
    /// Interval lengths bucketed per [`LENGTH_BUCKETS`]
    /// ([`HISTOGRAM_BUCKETS`] entries; all interval kinds). BMP504
    /// checks the bucket sum equals `intervals.total()`.
    pub length_histogram: Vec<u64>,
    /// Branch resolution times bucketed per the same boundaries
    /// (branch intervals only; bucket sum equals `intervals.bmiss`).
    pub resolution_histogram: Vec<u64>,
    /// The analytical model's view, when the experiment ran an
    /// analysis cell for this workload.
    pub model: Option<ModelMetrics>,
}

impl WorkloadMetrics {
    /// Aggregates simulator-side interval records. `mispredicts` is the
    /// simulator's own mispredict count, carried separately so the
    /// BMP502 cross-check stays meaningful.
    pub fn from_records(
        workload: impl Into<String>,
        instructions: u64,
        cycles: u64,
        frontend_depth: u32,
        mispredicts: u64,
        records: &[IntervalRecord],
    ) -> Self {
        let mut m = Self {
            workload: workload.into(),
            predictor: String::new(),
            branch_classes: Vec::new(),
            instructions,
            cycles,
            frontend_depth,
            mispredicts,
            intervals: IntervalCounts::default(),
            resolution_total: 0,
            refill_total: 0,
            occupancy_total: 0,
            length_histogram: vec![0; HISTOGRAM_BUCKETS],
            resolution_histogram: vec![0; HISTOGRAM_BUCKETS],
            model: None,
        };
        for r in records {
            match r.kind {
                IntervalEventKind::BranchMispredict => {
                    m.intervals.bmiss += 1;
                    m.resolution_total += r.resolution;
                    m.refill_total += u64::from(r.refill);
                    m.occupancy_total += u64::from(r.occupancy);
                    m.resolution_histogram[bucket_index(r.resolution)] += 1;
                }
                IntervalEventKind::ICacheMiss => m.intervals.il1 += 1,
                IntervalEventKind::ICacheLongMiss => m.intervals.il2 += 1,
                IntervalEventKind::LongDCacheMiss => m.intervals.dlong += 1,
            }
            m.length_histogram[bucket_index(r.len())] += 1;
        }
        m
    }

    /// Measured cycles per instruction (0 for an empty epoch).
    pub fn measured_cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Mean observed branch penalty (resolution + refill), if any
    /// branch intervals were recorded.
    pub fn mean_penalty(&self) -> Option<f64> {
        if self.intervals.bmiss == 0 {
            None
        } else {
            Some((self.resolution_total + self.refill_total) as f64 / self.intervals.bmiss as f64)
        }
    }
}

/// One experiment's metrics file: run identity plus per-workload
/// aggregates, in cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentMetrics {
    /// Experiment name (matches the registry and the CSV stem).
    pub name: String,
    /// Instruction budget of the run (`BMP_OPS`).
    pub ops: u64,
    /// Trace seed of the run (`BMP_SEED`).
    pub seed: u64,
    /// Per-workload aggregates.
    pub workloads: Vec<WorkloadMetrics>,
}

impl ExperimentMetrics {
    /// An empty metrics document for an experiment.
    pub fn new(name: impl Into<String>, ops: u64, seed: u64) -> Self {
        Self {
            name: name.into(),
            ops,
            seed,
            workloads: Vec::new(),
        }
    }

    /// Serializes the document as pretty-printed JSON (trailing
    /// newline). Deterministic: same document, same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", METRICS_VERSION));
        out.push_str(&format!(
            "  \"name\": {},\n",
            json::escape_string(&self.name)
        ));
        out.push_str(&format!("  \"ops\": {},\n", self.ops));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"workload\": {},\n",
                json::escape_string(&w.workload)
            ));
            out.push_str(&format!(
                "      \"predictor\": {},\n",
                json::escape_string(&w.predictor)
            ));
            out.push_str(&format!("      \"instructions\": {},\n", w.instructions));
            out.push_str(&format!("      \"cycles\": {},\n", w.cycles));
            out.push_str(&format!(
                "      \"frontend_depth\": {},\n",
                w.frontend_depth
            ));
            out.push_str(&format!("      \"mispredicts\": {},\n", w.mispredicts));
            out.push_str(&format!(
                "      \"intervals\": {{ \"bmiss\": {}, \"il1\": {}, \"il2\": {}, \"dlong\": {} }},\n",
                w.intervals.bmiss, w.intervals.il1, w.intervals.il2, w.intervals.dlong
            ));
            out.push_str(&format!(
                "      \"resolution_total\": {},\n",
                w.resolution_total
            ));
            out.push_str(&format!("      \"refill_total\": {},\n", w.refill_total));
            out.push_str(&format!(
                "      \"occupancy_total\": {},\n",
                w.occupancy_total
            ));
            out.push_str(&format!(
                "      \"length_histogram\": {},\n",
                fmt_u64_array(&w.length_histogram)
            ));
            out.push_str(&format!(
                "      \"resolution_histogram\": {}",
                fmt_u64_array(&w.resolution_histogram)
            ));
            if !w.branch_classes.is_empty() {
                out.push_str(",\n      \"branch_classes\": [");
                for (ci, c) in w.branch_classes.iter().enumerate() {
                    if ci > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n        {{ \"class\": {}, \"sites\": {}, \"intervals\": {}, \
                         \"local_resolution\": {}, \"refill\": {} }}",
                        json::escape_string(&c.class),
                        c.sites,
                        c.intervals,
                        c.local_resolution,
                        c.refill
                    ));
                }
                out.push_str("\n      ]");
            }
            if let Some(m) = &w.model {
                out.push_str(",\n      \"model\": {\n");
                out.push_str(&format!("        \"intervals\": {},\n", m.intervals));
                out.push_str(&format!("        \"resolution\": {},\n", m.resolution));
                out.push_str(&format!(
                    "        \"local_resolution\": {},\n",
                    m.local_resolution
                ));
                out.push_str(&format!("        \"base\": {},\n", m.base));
                out.push_str(&format!("        \"ilp\": {},\n", m.ilp));
                out.push_str(&format!("        \"fu_latency\": {},\n", m.fu_latency));
                out.push_str(&format!("        \"short_dmiss\": {},\n", m.short_dmiss));
                out.push_str(&format!("        \"carryover\": {},\n", m.carryover));
                out.push_str(&format!("        \"refill\": {},\n", m.refill));
                out.push_str(&format!(
                    "        \"cpi_stack\": {{ \"instructions\": {}, \"base_cycles\": {}, \"branch_cycles\": {}, \"icache_cycles\": {}, \"long_dmiss_cycles\": {} }}\n",
                    m.cpi_stack.instructions,
                    json::fmt_f64(m.cpi_stack.base_cycles),
                    json::fmt_f64(m.cpi_stack.branch_cycles),
                    json::fmt_f64(m.cpi_stack.icache_cycles),
                    json::fmt_f64(m.cpi_stack.long_dmiss_cycles)
                ));
                out.push_str("      }");
            }
            out.push_str("\n    }");
        }
        if !self.workloads.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a document previously written by
    /// [`to_json`](Self::to_json) (or any JSON with the same shape).
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let value = json::parse(text)?;
        let obj = value.as_object("metrics root")?;
        let version = obj.get_u64("version")? as u32;
        if version == 0 || version > METRICS_VERSION {
            return Err(JsonError::new(format!(
                "unsupported metrics version {version} (expected 1..={METRICS_VERSION})"
            )));
        }
        let mut doc = Self::new(
            obj.get_string("name")?,
            obj.get_u64("ops")?,
            obj.get_u64("seed")?,
        );
        for item in obj.get_array("workloads")? {
            let w = item.as_object("workload entry")?;
            let counts = w.get_object("intervals")?;
            let model = match w.get("model") {
                None => None,
                Some(v) => {
                    let m = v.as_object("model")?;
                    let stack = m.get_object("cpi_stack")?;
                    Some(ModelMetrics {
                        intervals: m.get_u64("intervals")?,
                        resolution: m.get_u64("resolution")?,
                        local_resolution: m.get_u64("local_resolution")?,
                        base: m.get_u64("base")?,
                        ilp: m.get_u64("ilp")?,
                        fu_latency: m.get_u64("fu_latency")?,
                        short_dmiss: m.get_u64("short_dmiss")?,
                        carryover: m.get_i64("carryover")?,
                        refill: m.get_u64("refill")?,
                        cpi_stack: CpiStack {
                            instructions: stack.get_u64("instructions")?,
                            base_cycles: stack.get_f64("base_cycles")?,
                            branch_cycles: stack.get_f64("branch_cycles")?,
                            icache_cycles: stack.get_f64("icache_cycles")?,
                            long_dmiss_cycles: stack.get_f64("long_dmiss_cycles")?,
                        },
                    })
                }
            };
            // Schema-v2 fields; absent from version-1 documents.
            let predictor = match w.get("predictor") {
                Some(v) => v.as_string("predictor")?.to_string(),
                None => String::new(),
            };
            let branch_classes = match w.get("branch_classes") {
                None => Vec::new(),
                Some(v) => v
                    .as_array("branch_classes")?
                    .iter()
                    .map(|item| {
                        let c = item.as_object("branch class entry")?;
                        Ok(ClassPenalty {
                            class: c.get_string("class")?.to_string(),
                            sites: c.get_u64("sites")?,
                            intervals: c.get_u64("intervals")?,
                            local_resolution: c.get_u64("local_resolution")?,
                            refill: c.get_u64("refill")?,
                        })
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?,
            };
            doc.workloads.push(WorkloadMetrics {
                workload: w.get_string("workload")?.to_string(),
                predictor,
                branch_classes,
                instructions: w.get_u64("instructions")?,
                cycles: w.get_u64("cycles")?,
                frontend_depth: w.get_u64("frontend_depth")? as u32,
                mispredicts: w.get_u64("mispredicts")?,
                intervals: IntervalCounts {
                    bmiss: counts.get_u64("bmiss")?,
                    il1: counts.get_u64("il1")?,
                    il2: counts.get_u64("il2")?,
                    dlong: counts.get_u64("dlong")?,
                },
                resolution_total: w.get_u64("resolution_total")?,
                refill_total: w.get_u64("refill_total")?,
                occupancy_total: w.get_u64("occupancy_total")?,
                length_histogram: parse_u64_array(w.get_array("length_histogram")?)?,
                resolution_histogram: parse_u64_array(w.get_array("resolution_histogram")?)?,
                model,
            });
        }
        Ok(doc)
    }
}

fn fmt_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn parse_u64_array(items: &[Value]) -> Result<Vec<u64>, JsonError> {
    items.iter().map(|v| v.as_u64("histogram bucket")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::records_from_analysis;
    use crate::penalty::PenaltyModel;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    fn sample_records() -> Vec<IntervalRecord> {
        let base = IntervalRecord {
            kind: IntervalEventKind::ICacheMiss,
            start: 0,
            pos: 9,
            commit_cycle: 12,
            resolution: 0,
            refill: 0,
            occupancy: 0,
            base: 0,
            ilp: 0,
            fu_latency: 0,
            short_dmiss: 0,
            carryover: 0,
        };
        vec![
            base,
            IntervalRecord {
                kind: IntervalEventKind::BranchMispredict,
                start: 10,
                pos: 41,
                commit_cycle: 40,
                resolution: 14,
                refill: 5,
                occupancy: 30,
                ..base
            },
            IntervalRecord {
                kind: IntervalEventKind::LongDCacheMiss,
                start: 42,
                pos: 600,
                commit_cycle: 900,
                ..base
            },
        ]
    }

    #[test]
    fn aggregation_counts_and_buckets() {
        let m = WorkloadMetrics::from_records("gzip", 1_000, 2_500, 5, 1, &sample_records());
        assert_eq!(m.intervals.bmiss, 1);
        assert_eq!(m.intervals.il1, 1);
        assert_eq!(m.intervals.dlong, 1);
        assert_eq!(m.intervals.total(), 3);
        assert_eq!(m.resolution_total, 14);
        assert_eq!(m.refill_total, 5);
        assert_eq!(m.occupancy_total, 30);
        assert_eq!(m.length_histogram.iter().sum::<u64>(), 3);
        assert_eq!(m.resolution_histogram.iter().sum::<u64>(), 1);
        // Lengths 10, 32, 559: buckets for [8,16), [32,64), overflow.
        assert_eq!(m.length_histogram[bucket_index(10)], 1);
        assert_eq!(m.length_histogram[LENGTH_BUCKETS.len()], 1);
        assert!((m.measured_cpi() - 2.5).abs() < 1e-12);
        assert_eq!(m.mean_penalty(), Some(19.0));
    }

    #[test]
    fn bucket_index_matches_histogram_boundaries() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(256), 8);
        assert_eq!(bucket_index(511), 8);
        assert_eq!(bucket_index(512), LENGTH_BUCKETS.len());
        assert_eq!(bucket_index(u64::MAX), LENGTH_BUCKETS.len());
        // Resolution 0 (non-branch) would land in bucket 0 — callers
        // only bucket branch resolutions, but it must not panic.
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn json_round_trips_with_and_without_model() {
        let trace = spec::by_name("gzip").unwrap().generate(20_000, 1);
        let cfg = presets::baseline_4wide();
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = crate::cpi::predict(&trace, &cfg);
        let records = records_from_analysis(&analysis);

        let mut doc = ExperimentMetrics::new("fig2_penalty", 20_000, 1);
        let mut w = WorkloadMetrics::from_records(
            "gzip",
            trace.len() as u64,
            40_000,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.model = Some(ModelMetrics::from_analysis(&analysis, stack));
        doc.workloads.push(w.clone());
        w.workload = "plain".into();
        w.model = None;
        doc.workloads.push(w);

        let text = doc.to_json();
        let back = ExperimentMetrics::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Deterministic bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn model_aggregates_preserve_the_identities() {
        let trace = spec::by_name("gcc").unwrap().generate(20_000, 3);
        let cfg = presets::baseline_4wide();
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = crate::cpi::predict(&trace, &cfg);
        let m = ModelMetrics::from_analysis(&analysis, stack);
        // The BMP501 identities, in aggregate.
        assert_eq!(
            m.local_resolution,
            m.base + m.ilp + m.fu_latency + m.short_dmiss
        );
        assert_eq!(m.resolution as i64, m.local_resolution as i64 + m.carryover);
        assert_eq!(m.refill, m.intervals * u64::from(analysis.frontend_depth));
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let doc = ExperimentMetrics::new("x", 1, 1);
        let wrong = doc.to_json().replace("\"version\": 2", "\"version\": 9");
        assert!(ExperimentMetrics::parse(&wrong).is_err());
        let zero = doc.to_json().replace("\"version\": 2", "\"version\": 0");
        assert!(ExperimentMetrics::parse(&zero).is_err());
        assert!(ExperimentMetrics::parse("not json").is_err());
        assert!(ExperimentMetrics::parse("{\"version\": 2}").is_err());
    }

    #[test]
    fn v2_fields_round_trip() {
        let mut doc = ExperimentMetrics::new("ex_predictor_generations", 2_000, 42);
        let mut w = WorkloadMetrics::from_records("gcc", 2_000, 4_100, 5, 1, &sample_records());
        w.predictor = "tage".into();
        w.branch_classes = vec![
            ClassPenalty {
                class: "biased".into(),
                sites: 12,
                intervals: 3,
                local_resolution: 40,
                refill: 15,
            },
            ClassPenalty {
                class: "h2p".into(),
                sites: 2,
                intervals: 9,
                local_resolution: 170,
                refill: 45,
            },
        ];
        doc.workloads.push(w);
        let text = doc.to_json();
        let back = ExperimentMetrics::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_json(), text, "deterministic bytes");
        assert_eq!(back.workloads[0].predictor, "tage");
        assert_eq!(back.workloads[0].branch_classes[1].total(), 215);
    }

    #[test]
    fn version_1_documents_still_parse_with_empty_v2_fields() {
        let mut doc = ExperimentMetrics::new("legacy", 1_000, 7);
        doc.workloads.push(WorkloadMetrics::from_records(
            "gzip",
            1_000,
            2_000,
            5,
            1,
            &sample_records(),
        ));
        // A v1 writer emitted no predictor/branch_classes fields.
        let v1 = doc
            .to_json()
            .replace("\"version\": 2", "\"version\": 1")
            .replace("      \"predictor\": \"\",\n", "");
        let back = ExperimentMetrics::parse(&v1).unwrap();
        assert_eq!(back.workloads[0].predictor, "");
        assert!(back.workloads[0].branch_classes.is_empty());
        assert_eq!(back.workloads[0].intervals.bmiss, 1);
    }
}
