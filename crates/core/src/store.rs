//! Crash-safe, content-addressed persistent artifact store.
//!
//! The bench harness's in-memory `Memo` cache makes every artifact a
//! pure function of a 64-bit content key. This module gives those
//! artifacts a durable tier: a directory of checksummed, versioned
//! records — one file per key — written with the workspace's
//! [`write_atomic`](crate::io::write_atomic) discipline so a crash at
//! any point leaves either no record or a complete one.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   LOCK              # exclusive-owner lock file ("pid <n>")
//!   quarantine/       # corrupt records moved aside by recovery
//!   3f/               # shard directory: top byte of the key, hex
//!     3f82...c441.rec # one record, named by its 16-hex-digit key
//! ```
//!
//! Sharding by the key's top byte keeps directory sizes flat at sweep
//! scale (10⁵–10⁶ records spread over ≤ 256 directories) and gives a
//! natural partition for future multi-process sweep ownership.
//!
//! # Record format
//!
//! A record is a 32-byte header followed by the payload, all
//! little-endian:
//!
//! | offset | bytes | field                          |
//! |-------:|------:|--------------------------------|
//! |      0 |     4 | magic `"BMPS"`                 |
//! |      4 |     4 | format version ([`STORE_VERSION`]) |
//! |      8 |     8 | content key                    |
//! |     16 |     8 | payload length                 |
//! |     24 |     8 | FNV-1a checksum of the payload |
//! |     32 |     … | payload                        |
//!
//! # Integrity contract
//!
//! The store **never serves bad bytes**: every [`get`](DiskStore::get)
//! re-verifies magic, version, key, length and checksum, and a record
//! failing any check is moved to `quarantine/` and reported as a miss —
//! the caller recomputes, and the recompute re-persists a good record.
//! [`DiskStore::open`] runs the same verification over the whole tree
//! (the *recovery scan*) so a restart after a torn write, a bit flip or
//! a crash starts from a provably clean store.
//!
//! # Ownership
//!
//! One process owns a store at a time: `open` takes the `LOCK` file
//! (breaking it automatically when its recorded owner pid is no longer
//! alive) and holds it until the store is dropped. Records themselves
//! are immutable once renamed into place, so sharing between
//! *sequential* runs is always safe; the lock protects the mutating
//! operations (recovery, eviction) from racing a concurrent owner.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use crate::io::write_atomic;

/// Record format version written by this crate; readers reject others.
pub const STORE_VERSION: u32 = 1;

/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"BMPS";

/// Header bytes preceding the payload.
pub const RECORD_HEADER_LEN: usize = 32;

/// File extension of a record.
pub const RECORD_EXT: &str = "rec";

/// Name of the exclusive-owner lock file at the store root.
pub const LOCK_FILE: &str = "LOCK";

/// Name of the quarantine directory at the store root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// 64-bit FNV-1a, the workspace's content hash (kept bit-compatible
/// with `bmp_uarch::fp::fnv1a`, re-implemented here so the store's
/// integrity checking has no config-layer dependency).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a record failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordDefect {
    /// Shorter than the header, or shorter than the header claims.
    Truncated,
    /// The magic bytes are not `"BMPS"`.
    BadMagic,
    /// The version field is not [`STORE_VERSION`].
    BadVersion(u32),
    /// The file is longer than header + declared payload length.
    TrailingBytes,
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The key in the header does not match the expected key (the
    /// filename, for on-disk records).
    KeyMismatch {
        /// Key the caller expected (from the filename).
        expected: u64,
        /// Key the header carries.
        found: u64,
    },
}

impl fmt::Display for RecordDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordDefect::Truncated => f.write_str("truncated record"),
            RecordDefect::BadMagic => f.write_str("bad magic"),
            RecordDefect::BadVersion(v) => {
                write!(f, "unsupported version {v} (expected {STORE_VERSION})")
            }
            RecordDefect::TrailingBytes => f.write_str("trailing bytes after payload"),
            RecordDefect::ChecksumMismatch => f.write_str("payload checksum mismatch"),
            RecordDefect::KeyMismatch { expected, found } => {
                write!(
                    f,
                    "key mismatch: header {found:016x}, expected {expected:016x}"
                )
            }
        }
    }
}

/// Encodes `payload` as a store record for `key`.
pub fn encode_record(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies a record against `expected_key` and returns its payload.
///
/// # Errors
///
/// The first [`RecordDefect`] found, checked in header order.
pub fn decode_record(expected_key: u64, bytes: &[u8]) -> Result<&[u8], RecordDefect> {
    if bytes.len() < RECORD_HEADER_LEN {
        return Err(RecordDefect::Truncated);
    }
    if bytes[0..4] != RECORD_MAGIC {
        return Err(RecordDefect::BadMagic);
    }
    let word = |at: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(b)
    };
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != STORE_VERSION {
        return Err(RecordDefect::BadVersion(version));
    }
    let key = word(8);
    if key != expected_key {
        return Err(RecordDefect::KeyMismatch {
            expected: expected_key,
            found: key,
        });
    }
    let len = word(16) as usize;
    let payload = &bytes[RECORD_HEADER_LEN..];
    if payload.len() < len {
        return Err(RecordDefect::Truncated);
    }
    if payload.len() > len {
        return Err(RecordDefect::TrailingBytes);
    }
    if fnv1a(payload) != word(24) {
        return Err(RecordDefect::ChecksumMismatch);
    }
    Ok(payload)
}

/// Relative path of `key`'s record inside a store root: shard directory
/// (top byte, hex) plus the 16-hex-digit filename.
pub fn record_rel_path(key: u64) -> PathBuf {
    PathBuf::from(format!("{:02x}", (key >> 56) as u8)).join(format!("{key:016x}.{RECORD_EXT}"))
}

/// Parses a record filename (`<16 hex digits>.rec`) back into its key.
pub fn key_from_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{RECORD_EXT}"))?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Why a store could not be opened or written.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// Another live process owns the store's lock file.
    Locked {
        /// The owner line read from the lock file.
        owner: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Locked { owner } => {
                write!(f, "store is locked by a live owner ({owner})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Deterministic write-fault selector consulted once per
/// [`DiskStore::put`] — the hook the bench crate's `BMP_FAULT`
/// `torn-write`/`corrupt` rules plug into (see `bmp_bench::fault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedWriteFault {
    /// Write normally.
    None,
    /// Simulate a crash mid-write: leave a truncated record visible at
    /// the final path (bypassing the atomic-rename discipline, which is
    /// exactly what a lying disk or a power cut produces).
    Torn,
    /// Flip one payload bit after checksumming, then write atomically —
    /// a silent media corruption the next read must catch.
    BitFlip,
}

/// The hook signature: `(key, write sequence number) -> fault`.
pub type WriteFaultHook = Box<dyn Fn(u64, u64) -> InjectedWriteFault + Send + Sync>;

/// Counters for one store's lifetime (monotonic, relaxed).
#[derive(Debug, Default)]
pub struct StoreStats {
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
}

impl StoreStats {
    /// Lookups attempted.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Lookups that returned a verified payload.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Records written (including injected-fault writes).
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Records moved to quarantine (at open-time recovery or on a
    /// failed read).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Records evicted by the size bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// What the open-time recovery scan found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Record files examined.
    pub scanned: usize,
    /// Records that verified clean.
    pub valid: usize,
    /// Corrupt records moved to `quarantine/`.
    pub quarantined: usize,
    /// Leftover temporary files removed.
    pub temps_removed: usize,
    /// Total bytes of valid records after the scan.
    pub live_bytes: u64,
}

/// Size bound and ownership options for [`DiskStore::open`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreConfig {
    /// Evict least-recently-used records once the live tree exceeds
    /// this many bytes (`None` = unbounded).
    pub max_bytes: Option<u64>,
}

/// The crash-safe persistent artifact store. See the module docs for
/// layout, record format and the integrity contract.
pub struct DiskStore {
    root: PathBuf,
    config: StoreConfig,
    stats: StoreStats,
    live_bytes: AtomicU64,
    write_seq: AtomicU64,
    fault_hook: Mutex<Option<WriteFaultHook>>,
    /// Whether this instance owns `LOCK` (and must remove it on drop).
    owns_lock: bool,
}

impl fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskStore")
            .field("root", &self.root)
            .field("config", &self.config)
            .field("live_bytes", &self.live_bytes)
            .finish()
    }
}

impl DiskStore {
    /// Opens (creating if needed) the store at `root`: takes the owner
    /// lock, runs the recovery scan — quarantining every record that
    /// fails verification and sweeping crash-leftover temp files — and
    /// returns the store plus what recovery found.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another *live* process holds the
    /// lock (a lock whose recorded pid is dead is broken and taken
    /// over); [`StoreError::Io`] for filesystem failures.
    pub fn open(
        root: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        std::fs::create_dir_all(root.join(QUARANTINE_DIR))?;
        acquire_lock(&root)?;
        let store = Self {
            root,
            config,
            stats: StoreStats::default(),
            live_bytes: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
            fault_hook: Mutex::new(None),
            owns_lock: true,
        };
        let report = store.recover()?;
        Ok((store, report))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The lifetime counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Total bytes of live records (maintained incrementally; seeded by
    /// the open-time scan).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Installs the deterministic write-fault hook (replacing any
    /// previous one). Test/fault-injection plumbing only.
    pub fn set_fault_hook(&self, hook: WriteFaultHook) {
        *self.fault_hook.lock().expect("fault hook poisoned") = Some(hook);
    }

    /// Absolute path of `key`'s record.
    pub fn record_path(&self, key: u64) -> PathBuf {
        self.root.join(record_rel_path(key))
    }

    /// Returns the verified payload for `key`, or `None` on a miss.
    /// A record failing verification is quarantined (never served) and
    /// reported as a miss. A hit refreshes the record's modification
    /// time so size-bounded eviction approximates LRU.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let path = self.record_path(key);
        let bytes = std::fs::read(&path).ok()?;
        match decode_record(key, &bytes) {
            Ok(payload) => {
                let payload = payload.to_vec();
                // Best-effort LRU touch; failure only degrades eviction
                // ordering, never correctness.
                if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(defect) => {
                self.quarantine(key, &path, defect);
                None
            }
        }
    }

    /// Persists `payload` under `key`, atomically, then applies the
    /// size bound (evicting least-recently-used records first). Writing
    /// an existing key replaces its record.
    ///
    /// When a fault hook is installed it may turn this write into a
    /// deliberately torn or bit-flipped record — simulating a crash or
    /// media corruption that the next read/recovery must catch.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; the store is usable afterwards (a
    /// failed put simply leaves the key absent or with its old record).
    pub fn put(&self, key: u64, payload: &[u8]) -> Result<(), StoreError> {
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .fault_hook
            .lock()
            .expect("fault hook poisoned")
            .as_ref()
            .map_or(InjectedWriteFault::None, |h| h(key, seq));
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        let path = self.record_path(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let old_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let mut record = encode_record(key, payload);
        match fault {
            InjectedWriteFault::None => {}
            InjectedWriteFault::Torn => {
                // A torn write leaves a visible partial record: write it
                // straight to the final path, no temp, no rename — the
                // on-disk state a power cut mid-write produces.
                record.truncate(RECORD_HEADER_LEN + payload.len() / 2);
                std::fs::write(&path, &record)?;
                return Ok(());
            }
            InjectedWriteFault::BitFlip => {
                // Flip one payload bit *after* the checksum was
                // computed: silent corruption, caught only by
                // verification on the next read.
                let last = record.len() - 1;
                record[last] ^= 0x01;
            }
        }
        write_atomic(&path, &record)?;
        let new_bytes = record.len() as u64;
        self.live_bytes
            .fetch_add(new_bytes.saturating_sub(old_bytes), Ordering::Relaxed);
        if let Some(max) = self.config.max_bytes {
            if self.live_bytes() > max {
                self.evict_to(max, key)?;
            }
        }
        Ok(())
    }

    /// Whether a (possibly unverified) record file exists for `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.record_path(key).is_file()
    }

    /// Number of record files currently in the live tree.
    pub fn len(&self) -> usize {
        self.walk_records().map_or(0, |v| v.len())
    }

    /// Whether the live tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of files in `quarantine/`.
    pub fn quarantine_len(&self) -> usize {
        std::fs::read_dir(self.root.join(QUARANTINE_DIR))
            .map(|rd| rd.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// Moves `key`'s record (if any) to quarantine — for callers whose
    /// *decoding* of a checksum-valid payload failed (e.g. a codec
    /// version skew): the bytes are intact but unusable, and must not
    /// be served again.
    pub fn quarantine_key(&self, key: u64) {
        let path = self.record_path(key);
        if path.is_file() {
            self.quarantine(key, &path, RecordDefect::BadVersion(0));
        }
    }

    /// Re-runs the verification scan over the live tree: corrupt
    /// records are quarantined, leftover temp files removed, and the
    /// live-byte counter re-seeded. Called by [`open`](Self::open);
    /// callable any time for an explicit integrity audit.
    ///
    /// # Errors
    ///
    /// Filesystem errors walking the tree; per-record read failures are
    /// treated as corruption, not errors.
    pub fn recover(&self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();
        for shard in self.shard_dirs()? {
            for entry in std::fs::read_dir(&shard)?.filter_map(|e| e.ok()) {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".tmp") {
                    let _ = std::fs::remove_file(&path);
                    report.temps_removed += 1;
                    continue;
                }
                let Some(key) = key_from_file_name(&name) else {
                    continue; // foreign file; the lint flags it
                };
                report.scanned += 1;
                let verdict = std::fs::read(&path)
                    .map_err(|_| RecordDefect::Truncated)
                    .and_then(|bytes| {
                        decode_record(key, &bytes)?;
                        Ok(bytes.len() as u64)
                    });
                // A record in the wrong shard directory is an orphan:
                // unreachable by get(), so recovery quarantines it too.
                let misplaced = shard
                    .file_name()
                    .is_some_and(|s| s.to_string_lossy() != format!("{:02x}", (key >> 56) as u8));
                match verdict {
                    Ok(bytes) if !misplaced => {
                        report.valid += 1;
                        report.live_bytes += bytes;
                    }
                    Ok(_) => {
                        self.quarantine(
                            key,
                            &path,
                            RecordDefect::KeyMismatch {
                                expected: key,
                                found: key,
                            },
                        );
                        report.quarantined += 1;
                    }
                    Err(defect) => {
                        self.quarantine(key, &path, defect);
                        report.quarantined += 1;
                    }
                }
            }
        }
        self.live_bytes.store(report.live_bytes, Ordering::Relaxed);
        Ok(report)
    }

    /// Existing shard directories (two-hex-digit names) under the root.
    fn shard_dirs(&self) -> io::Result<Vec<PathBuf>> {
        let mut dirs = Vec::new();
        for entry in std::fs::read_dir(&self.root)?.filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.len() == 2
                && name.chars().all(|c| c.is_ascii_hexdigit())
                && entry.path().is_dir()
            {
                dirs.push(entry.path());
            }
        }
        dirs.sort();
        Ok(dirs)
    }

    /// All live record files as `(path, bytes, mtime)`.
    fn walk_records(&self) -> io::Result<Vec<(PathBuf, u64, SystemTime)>> {
        let mut out = Vec::new();
        for shard in self.shard_dirs()? {
            for entry in std::fs::read_dir(&shard)?.filter_map(|e| e.ok()) {
                let name = entry.file_name().to_string_lossy().into_owned();
                if key_from_file_name(&name).is_none() {
                    continue;
                }
                if let Ok(meta) = entry.metadata() {
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    out.push((entry.path(), meta.len(), mtime));
                }
            }
        }
        Ok(out)
    }

    /// Evicts oldest-mtime records until the live tree is at or under
    /// `max` bytes, never evicting `keep` (the record just written).
    fn evict_to(&self, max: u64, keep: u64) -> Result<(), StoreError> {
        let keep_path = self.record_path(keep);
        let mut records = self.walk_records()?;
        records.sort_by_key(|(_, _, mtime)| *mtime);
        let mut total: u64 = records.iter().map(|(_, b, _)| b).sum();
        for (path, bytes, _) in records {
            if total <= max {
                break;
            }
            if path == keep_path {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= bytes;
                self.stats.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.live_bytes.store(total, Ordering::Relaxed);
        Ok(())
    }

    /// Moves a corrupt record into `quarantine/`, tagging the filename
    /// with the defect class; falls back to deletion when the rename
    /// fails. Either way the record is no longer servable.
    fn quarantine(&self, key: u64, path: &Path, defect: RecordDefect) {
        let tag = match defect {
            RecordDefect::Truncated => "truncated",
            RecordDefect::BadMagic => "magic",
            RecordDefect::BadVersion(_) => "version",
            RecordDefect::TrailingBytes => "trailing",
            RecordDefect::ChecksumMismatch => "checksum",
            RecordDefect::KeyMismatch { .. } => "key",
        };
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let dest = self
            .root
            .join(QUARANTINE_DIR)
            .join(format!("{key:016x}.{tag}.{RECORD_EXT}"));
        let _ = std::fs::create_dir_all(self.root.join(QUARANTINE_DIR));
        if std::fs::rename(path, &dest).is_err() {
            let _ = std::fs::remove_file(path);
        }
        self.live_bytes
            .fetch_sub(bytes.min(self.live_bytes()), Ordering::Relaxed);
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if self.owns_lock {
            let _ = std::fs::remove_file(self.root.join(LOCK_FILE));
        }
    }
}

/// Information about a store's lock file, for the read-only scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockInfo {
    /// The owner line as written (`pid <n>`).
    pub owner: String,
    /// The recorded pid, when parsable.
    pub pid: Option<u32>,
    /// Whether that pid is demonstrably alive (only determinable where
    /// `/proc` exists; `false` means *dead or unknowable*).
    pub alive: bool,
}

/// Takes the `LOCK` file at `root`, breaking a stale (dead-owner) lock.
fn acquire_lock(root: &Path) -> Result<(), StoreError> {
    let lock = root.join(LOCK_FILE);
    let body = format!("pid {}\n", std::process::id());
    for _ in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                f.write_all(body.as_bytes())?;
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let info = read_lock(&lock);
                match info {
                    Some(info) if info.alive => {
                        return Err(StoreError::Locked { owner: info.owner })
                    }
                    // Dead or unreadable owner: break the lock, retry.
                    _ => {
                        let _ = std::fs::remove_file(&lock);
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(StoreError::Locked {
        owner: "unknown (lock contention)".to_string(),
    })
}

/// Reads and interprets a lock file; `None` when it vanished.
pub fn read_lock(lock: &Path) -> Option<LockInfo> {
    let owner = std::fs::read_to_string(lock).ok()?.trim().to_string();
    let pid: Option<u32> = owner.strip_prefix("pid ").and_then(|s| s.parse().ok());
    let alive = pid.is_some_and(pid_alive);
    Some(LockInfo { owner, pid, alive })
}

/// Whether `pid` is a live process. Uses `/proc` where it exists; on
/// other platforms the answer is conservatively `true` for our own pid
/// and `false` otherwise is *not* assumed — we return `true` so locks
/// are never broken on systems we cannot check.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).is_dir()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bmp_store_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_roundtrip_and_defects() {
        let rec = encode_record(0xabcd, b"hello");
        assert_eq!(decode_record(0xabcd, &rec).unwrap(), b"hello");
        assert_eq!(
            decode_record(0xabce, &rec),
            Err(RecordDefect::KeyMismatch {
                expected: 0xabce,
                found: 0xabcd
            })
        );
        assert_eq!(
            decode_record(0xabcd, &rec[..10]),
            Err(RecordDefect::Truncated)
        );
        let mut torn = rec.clone();
        torn.truncate(rec.len() - 1);
        assert_eq!(decode_record(0xabcd, &torn), Err(RecordDefect::Truncated));
        let mut flipped = rec.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            decode_record(0xabcd, &flipped),
            Err(RecordDefect::ChecksumMismatch)
        );
        let mut long = rec.clone();
        long.push(0);
        assert_eq!(
            decode_record(0xabcd, &long),
            Err(RecordDefect::TrailingBytes)
        );
        let mut bad_magic = rec.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_record(0xabcd, &bad_magic),
            Err(RecordDefect::BadMagic)
        );
        let mut bad_version = rec;
        bad_version[4] = 99;
        assert!(matches!(
            decode_record(0xabcd, &bad_version),
            Err(RecordDefect::BadVersion(_))
        ));
    }

    #[test]
    fn paths_and_filenames_roundtrip() {
        let key = 0x3f82_0000_0000_c441_u64;
        let rel = record_rel_path(key);
        assert_eq!(rel, PathBuf::from("3f").join("3f8200000000c441.rec"));
        assert_eq!(key_from_file_name("3f8200000000c441.rec"), Some(key));
        assert_eq!(key_from_file_name("3f82.rec"), None);
        assert_eq!(key_from_file_name("3f8200000000c441.csv"), None);
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = fresh("roundtrip");
        {
            let (store, report) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            store.put(7, b"payload-7").unwrap();
            store.put(u64::MAX, b"payload-max").unwrap();
            assert_eq!(store.get(7).as_deref(), Some(&b"payload-7"[..]));
            assert_eq!(store.stats().hits(), 1);
            assert_eq!(store.get(8), None);
        }
        // Reopen: the lock was released, recovery finds 2 valid records.
        let (store, report) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.valid, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(store.get(u64::MAX).as_deref(), Some(&b"payload-max"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_are_quarantined_never_served() {
        let dir = fresh("corrupt");
        let (store, _) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(42, b"the truth").unwrap();
        // Flip a payload bit on disk behind the store's back.
        let path = store.record_path(42);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(42), None, "bad bytes are never served");
        assert_eq!(store.quarantine_len(), 1);
        assert!(!store.contains(42), "the corrupt record left the live tree");
        // A recompute re-persists, and the store serves the good copy.
        store.put(42, b"the truth").unwrap();
        assert_eq!(store.get(42).as_deref(), Some(&b"the truth"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_quarantines_torn_and_flipped_writes() {
        let dir = fresh("recovery");
        {
            let (store, _) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
            let fired = std::sync::atomic::AtomicU64::new(0);
            store.set_fault_hook(Box::new(move |_key, seq| {
                fired.fetch_add(1, Ordering::Relaxed);
                match seq {
                    0 => InjectedWriteFault::Torn,
                    1 => InjectedWriteFault::BitFlip,
                    _ => InjectedWriteFault::None,
                }
            }));
            store.put(1, b"torn away").unwrap();
            store.put(2, b"flipped bit").unwrap();
            store.put(3, b"clean").unwrap();
        }
        let (store, report) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined, 2);
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(2), None);
        assert_eq!(store.get(3).as_deref(), Some(&b"clean"[..]));
        assert_eq!(store.quarantine_len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_bound_evicts_lru() {
        let dir = fresh("evict");
        let (store, _) = DiskStore::open(
            &dir,
            StoreConfig {
                // Three ~(32+8)-byte records fit; the fourth evicts.
                max_bytes: Some(3 * (RECORD_HEADER_LEN as u64 + 8)),
            },
        )
        .unwrap();
        store.put(1, b"aaaaaaaa").unwrap();
        store.put(2, b"bbbbbbbb").unwrap();
        store.put(3, b"cccccccc").unwrap();
        assert_eq!(store.len(), 3);
        store.put(4, b"dddddddd").unwrap();
        assert_eq!(store.len(), 3, "the bound evicted one record");
        assert!(store.contains(4), "the fresh write is never the victim");
        assert_eq!(store.stats().evicted(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_owner_locks_dead_owner_is_broken() {
        let dir = fresh("lock");
        let (_store, _) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        // Same-process second open: the recorded pid is alive → Locked.
        match DiskStore::open(&dir, StoreConfig::default()) {
            Err(StoreError::Locked { owner }) => {
                assert!(owner.contains(&std::process::id().to_string()));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(_store);
        // Dropping released the lock; a stale lock with a dead pid is
        // broken automatically.
        std::fs::write(dir.join(LOCK_FILE), "pid 999999999\n").unwrap();
        let (store, _) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        drop(store);
        assert!(!dir.join(LOCK_FILE).exists(), "drop removes the lock");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_key_retires_undecodable_payloads() {
        let dir = fresh("retire");
        let (store, _) = DiskStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(9, b"checksum fine, meaning wrong").unwrap();
        store.quarantine_key(9);
        assert!(!store.contains(9));
        assert_eq!(store.quarantine_len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_matches_the_workspace_hash() {
        // Bit-compatibility with bmp_uarch::fp::fnv1a (same constants).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
