//! Rendered analysis reports.
//!
//! Turns a [`PenaltyAnalysis`] (plus optional measured values from a
//! simulator run) into a human-readable markdown report — the programmatic
//! equivalent of the `mispredict` CLI's output, for embedding in logs,
//! CI summaries or notebooks.

use std::fmt::Write as _;

use crate::cpi::CpiStack;
use crate::intervals::IntervalLengthHistogram;
use crate::penalty::PenaltyAnalysis;

/// Measured counterpart values to place next to the model's, when a
/// simulator run of the same trace/machine is available.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeasuredSummary {
    /// Measured cycles per instruction.
    pub cpi: f64,
    /// Measured mean penalty per misprediction.
    pub mean_penalty: Option<f64>,
    /// Measured misprediction count.
    pub mispredictions: u64,
}

/// Options controlling what the report includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportOptions {
    /// Include the resolution-vs-interval-length curve.
    pub interval_curve: bool,
    /// Include the interval-length distribution.
    pub interval_histogram: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            interval_curve: true,
            interval_histogram: true,
        }
    }
}

/// Renders a markdown report for `analysis`, optionally comparing against
/// a `measured` simulator summary and including a CPI `stack`.
///
/// # Examples
///
/// ```
/// use bmp_core::{report, PenaltyModel};
/// use bmp_uarch::presets;
/// use bmp_workloads::spec;
///
/// let trace = spec::by_name("twolf").unwrap().generate(10_000, 1);
/// let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
/// let md = report::render("twolf", &analysis, None, None, report::ReportOptions::default());
/// assert!(md.contains("# Misprediction-penalty report: twolf"));
/// assert!(md.contains("contributor"));
/// ```
pub fn render(
    label: &str,
    analysis: &PenaltyAnalysis,
    stack: Option<&CpiStack>,
    measured: Option<&MeasuredSummary>,
    options: ReportOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Misprediction-penalty report: {label}\n");
    let _ = writeln!(
        out,
        "- instructions analyzed: **{}**",
        analysis.instructions
    );
    let _ = writeln!(
        out,
        "- mispredictions (model): **{}** ({:.2} MPKI)",
        analysis.breakdowns.len(),
        analysis.mispredict_mpki()
    );
    if let Some(m) = measured {
        let _ = writeln!(out, "- mispredictions (measured): **{}**", m.mispredictions);
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Penalty\n");
    match analysis.mean_penalty() {
        Some(p) => {
            let _ = writeln!(
                out,
                "| quantity | model{} |",
                if measured.is_some() {
                    " | measured"
                } else {
                    ""
                }
            );
            let _ = writeln!(
                out,
                "|---|---{}|",
                if measured.is_some() { "|---" } else { "" }
            );
            let meas_pen = measured
                .and_then(|m| m.mean_penalty)
                .map(|v| format!(" | {v:.1}"))
                .unwrap_or_else(|| {
                    if measured.is_some() {
                        " | -".to_owned()
                    } else {
                        String::new()
                    }
                });
            let _ = writeln!(out, "| mean penalty (cycles) | {p:.1}{meas_pen} |");
            let _ = writeln!(
                out,
                "| frontend depth (cycles) | {}{} |",
                analysis.frontend_depth,
                if measured.is_some() { " | —" } else { "" }
            );
        }
        None => {
            let _ = writeln!(out, "No mispredictions in this run.");
        }
    }
    let _ = writeln!(out);

    if let Some((base, ilp, fu, dmiss)) = analysis.mean_contributions() {
        let n = analysis.breakdowns.len() as f64;
        let carry: f64 = analysis
            .breakdowns
            .iter()
            .map(|b| b.carryover as f64)
            .sum::<f64>()
            / n;
        let _ = writeln!(out, "## Mean contributor shares (cycles)\n");
        let _ = writeln!(out, "| contributor | share |");
        let _ = writeln!(out, "|---|---|");
        let _ = writeln!(
            out,
            "| (i) frontend refill | {:.1} |",
            analysis.frontend_depth
        );
        let _ = writeln!(out, "| branch execution | {base:.1} |");
        let _ = writeln!(out, "| (iii) inherent ILP | {ilp:.1} |");
        let _ = writeln!(out, "| (iv) FU latencies | {fu:.1} |");
        let _ = writeln!(out, "| (v) short D-misses | {dmiss:.1} |");
        let _ = writeln!(out, "| (ii) window state (carryover) | {carry:.1} |");
        let _ = writeln!(out);
    }

    if let Some(stack) = stack {
        let (b, br, ic, dm) = stack.components();
        let _ = writeln!(out, "## CPI stack (model)\n");
        let _ = writeln!(out, "| component | CPI |");
        let _ = writeln!(out, "|---|---|");
        let _ = writeln!(out, "| base | {b:.3} |");
        let _ = writeln!(out, "| branch | {br:.3} |");
        let _ = writeln!(out, "| I-cache | {ic:.3} |");
        let _ = writeln!(out, "| long D-miss | {dm:.3} |");
        let _ = writeln!(out, "| **total** | **{:.3}** |", stack.cpi());
        if let Some(m) = measured {
            let _ = writeln!(out, "| measured | {:.3} |", m.cpi);
        }
        let _ = writeln!(out);
    }

    if options.interval_curve {
        let curve = analysis.local_resolution_by_interval_length();
        if !curve.is_empty() {
            let _ = writeln!(out, "## Resolution vs. interval length (window ramp-up)\n");
            let _ = writeln!(out, "| interval ≥ | mean resolution | events |");
            let _ = writeln!(out, "|---|---|---|");
            for (lo, mean, n) in curve {
                let _ = writeln!(out, "| {lo} | {mean:.1} | {n} |");
            }
            let _ = writeln!(out);
        }
    }

    if options.interval_histogram {
        let hist = IntervalLengthHistogram::from_intervals(&analysis.intervals);
        if hist.total() > 0 {
            let _ = writeln!(out, "## Inter-miss interval lengths\n");
            let _ = writeln!(out, "| bucket ≥ | fraction |");
            let _ = writeln!(out, "|---|---|");
            for (i, lo) in crate::intervals::LENGTH_BUCKETS.iter().enumerate() {
                if hist.count(i) > 0 {
                    let _ = writeln!(out, "| {lo} | {:.3} |", hist.fraction(i));
                }
            }
            let over = crate::intervals::LENGTH_BUCKETS.len();
            if hist.count(over) > 0 {
                let _ = writeln!(
                    out,
                    "| {}+ | {:.3} |",
                    crate::intervals::LENGTH_BUCKETS[over - 1],
                    hist.fraction(over)
                );
            }
            let _ = writeln!(out);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpi;
    use crate::penalty::PenaltyModel;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    fn sample() -> (bmp_trace::Trace, PenaltyAnalysis) {
        let trace = spec::by_name("twolf").expect("known").generate(10_000, 3);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        (trace, analysis)
    }

    #[test]
    fn full_report_has_all_sections() {
        let (trace, analysis) = sample();
        let stack = cpi::predict(&trace, &presets::baseline_4wide());
        let measured = MeasuredSummary {
            cpi: 2.0,
            mean_penalty: Some(20.0),
            mispredictions: 123,
        };
        let md = render(
            "twolf",
            &analysis,
            Some(&stack),
            Some(&measured),
            ReportOptions::default(),
        );
        for section in [
            "# Misprediction-penalty report: twolf",
            "## Penalty",
            "## Mean contributor shares",
            "## CPI stack",
            "## Resolution vs. interval length",
            "## Inter-miss interval lengths",
            "| measured | 2.000 |",
            "mispredictions (measured): **123**",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
    }

    #[test]
    fn options_disable_sections() {
        let (_, analysis) = sample();
        let md = render(
            "t",
            &analysis,
            None,
            None,
            ReportOptions {
                interval_curve: false,
                interval_histogram: false,
            },
        );
        assert!(!md.contains("## Resolution vs. interval length"));
        assert!(!md.contains("## Inter-miss interval lengths"));
        assert!(md.contains("## Penalty"));
    }

    #[test]
    fn empty_analysis_renders_gracefully() {
        let analysis =
            PenaltyModel::new(presets::baseline_4wide()).analyze(&bmp_trace::Trace::new());
        let md = render("empty", &analysis, None, None, ReportOptions::default());
        assert!(md.contains("No mispredictions"));
    }
}
