//! Per-interval cycle accounting: the observability layer's data model.
//!
//! The simulators in `bmp-sim` historically emitted only end-of-run
//! aggregates, which is enough to *validate* the interval model but not
//! to *see* where cycles went inside a run. This module defines the
//! record both engines emit at commit boundaries when
//! `SimOptions::collect_intervals` is on (see `docs/OBSERVABILITY.md`):
//! one [`IntervalRecord`] per interval, carrying the interval kind and
//! extent, the branch-resolution timing observed by the pipeline, and —
//! for records produced by the analytical model — the paper's five
//! contributor terms.
//!
//! Three pieces live here:
//!
//! * [`IntervalRecord`] — the record itself, with the accounting
//!   identities (`penalty = resolution + refill`, contributor sum) as
//!   doc-tested methods;
//! * [`CycleAccounting`] — the sink trait records are pushed into
//!   (implemented for `Vec<IntervalRecord>`; custom sinks can stream);
//! * [`IntervalAccountant`] — the bookkeeping both sim engines share so
//!   their records are **bit-identical by construction**: each engine
//!   feeds it the same event/mispredict/commit stream it already
//!   records for [`SimResult`](../../bmp_sim/struct.SimResult.html)
//!   equivalence, and the accountant does the rest.
//!
//! The model-side path ([`records_from_analysis`]) converts a
//! [`PenaltyAnalysis`] into the same
//! record shape with the contributor terms filled in, so measured and
//! modeled accounting land in one schema.

use crate::intervals::IntervalEventKind;
use crate::penalty::PenaltyAnalysis;
use serde::{Deserialize, Serialize};

/// One interval's cycle accounting, emitted when the instruction
/// carrying the interval's terminating event commits.
///
/// Intervals follow the semantics of [`segment`](crate::intervals::segment):
/// the interval spans `[start, pos]` inclusive, where `pos` is the
/// dynamic index of the instruction the terminating event is attached
/// to. The trailing run of instructions after the last event has no
/// terminating event and produces no record.
///
/// Two producers fill this struct differently:
///
/// * **Simulators** fill the timing fields (`commit_cycle`, and for
///   branch intervals `resolution`, `refill`, `occupancy`) and leave
///   the contributor terms zero — a pipeline observes *when* a branch
///   resolved, not *why*.
/// * **The analytical model** fills the contributor terms from the
///   knock-out schedule and leaves `commit_cycle` zero — the model has
///   no commit timeline.
///
/// # Examples
///
/// The paper's two accounting identities hold field-by-field. The
/// penalty is the window-drain (resolution) component plus the
/// frontend refill:
///
/// ```
/// use bmp_core::accounting::IntervalRecord;
/// use bmp_core::intervals::IntervalEventKind;
///
/// let r = IntervalRecord {
///     kind: IntervalEventKind::BranchMispredict,
///     start: 100,
///     pos: 131,
///     commit_cycle: 0,
///     resolution: 14,
///     refill: 5,
///     occupancy: 32,
///     base: 6,
///     ilp: 4,
///     fu_latency: 2,
///     short_dmiss: 0,
///     carryover: 2,
/// };
/// assert_eq!(r.penalty(), r.resolution + u64::from(r.refill));
/// assert_eq!(r.penalty(), 19);
/// assert_eq!(r.len(), 32);
/// ```
///
/// And the four in-interval contributors sum to the *local* resolution,
/// which differs from the observed resolution exactly by the cross-
/// interval carryover term:
///
/// ```
/// # use bmp_core::accounting::IntervalRecord;
/// # use bmp_core::intervals::IntervalEventKind;
/// # let r = IntervalRecord {
/// #     kind: IntervalEventKind::BranchMispredict,
/// #     start: 100, pos: 131, commit_cycle: 0,
/// #     resolution: 14, refill: 5, occupancy: 32,
/// #     base: 6, ilp: 4, fu_latency: 2, short_dmiss: 0, carryover: 2,
/// # };
/// assert_eq!(r.local_resolution(), r.base + r.ilp + r.fu_latency + r.short_dmiss);
/// assert_eq!(r.resolution as i64, r.local_resolution() as i64 + r.carryover);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// The terminating event's kind.
    pub kind: IntervalEventKind,
    /// Dynamic index of the interval's first instruction.
    pub start: u64,
    /// Dynamic index of the instruction carrying the terminating event
    /// (inclusive end of the interval).
    pub pos: u64,
    /// Cycle at which the terminating instruction committed, rebased so
    /// cycle 0 is the start of statistics collection (the warmup
    /// boundary when `warmup_ops > 0`, otherwise the start of the run).
    /// Zero for model-produced records.
    pub commit_cycle: u64,
    /// For branch intervals: dispatch-to-execute resolution time of the
    /// mispredicted branch. Zero for other kinds.
    pub resolution: u64,
    /// For branch intervals: the frontend refill `c_fe` (the machine's
    /// frontend depth). Zero for other kinds.
    pub refill: u32,
    /// For branch intervals: instructions in the window (the branch
    /// included) when the branch dispatched — the window-occupancy
    /// input to the paper's contributor (ii). Zero for other kinds.
    pub occupancy: u32,
    /// Contributor: the resolution floor (dispatch-to-issue plus the
    /// branch's own execute latency). Model-filled; zero from the sims.
    pub base: u64,
    /// Contributor: dependence-chain (inherent ILP) share.
    /// Model-filled; zero from the sims.
    pub ilp: u64,
    /// Contributor: functional-unit-latency share. Model-filled; zero
    /// from the sims.
    pub fu_latency: u64,
    /// Contributor: short D-cache-miss share. Model-filled; zero from
    /// the sims.
    pub short_dmiss: u64,
    /// Window/bandwidth state carried over from before the interval
    /// (may be negative when prior stalls left the window emptier than
    /// the isolated schedule assumes). Model-filled; zero from the sims.
    pub carryover: i64,
}

impl IntervalRecord {
    /// Instructions in the interval (terminating instruction included).
    pub fn len(&self) -> u64 {
        self.pos - self.start + 1
    }

    /// `true` when the interval holds a single instruction.
    pub fn is_empty(&self) -> bool {
        false // an interval always contains its terminating instruction
    }

    /// The full misprediction penalty under the paper's definition:
    /// `resolution + refill`. Meaningful for branch intervals.
    pub fn penalty(&self) -> u64 {
        self.resolution + u64::from(self.refill)
    }

    /// The sum of the four in-interval contributor terms — equal to the
    /// knock-out model's *local* resolution (the interval scheduled in
    /// isolation). The observed `resolution` differs from this by
    /// exactly `carryover`.
    pub fn local_resolution(&self) -> u64 {
        self.base + self.ilp + self.fu_latency + self.short_dmiss
    }
}

/// A sink for per-interval records.
///
/// Both sim engines and the model-side emitter push records through
/// this trait, so a custom sink (streaming aggregation, a ring buffer,
/// a test probe) can replace the default `Vec` without touching the
/// producers.
pub trait CycleAccounting {
    /// Accepts one finished interval.
    fn record(&mut self, record: &IntervalRecord);
}

impl CycleAccounting for Vec<IntervalRecord> {
    fn record(&mut self, record: &IntervalRecord) {
        self.push(*record);
    }
}

/// A pending interval-terminating event, noted when observed and
/// resolved into a record when its instruction commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Note {
    idx: u64,
    kind: IntervalEventKind,
    resolution: u64,
    refill: u32,
    occupancy: u32,
}

/// Shared interval bookkeeping for the two sim engines.
///
/// Each engine calls the accountant at the same four points where it
/// already records events for result equivalence:
///
/// * [`on_event`](Self::on_event) when an I-cache or long D-cache miss
///   event is pushed (fetch/issue stages);
/// * [`on_mispredict`](Self::on_mispredict) when a mispredicted
///   branch's `MispredictRecord` is pushed (issue stage);
/// * [`on_commit`](Self::on_commit) once per committed instruction;
/// * [`reset`](Self::reset) at the warmup boundary.
///
/// Because both engines are bit-identical in the streams they feed in
/// (that is the PR 3 equivalence contract), the records coming out are
/// bit-identical too — the accountant adds no engine-specific state.
///
/// ### Divergence from `segment()` on coincident events
///
/// [`segment`](crate::intervals::segment) collapses coincident events
/// keeping the *first* kind. The accountant instead lets a mispredict
/// override a coincident cache-miss note, so the number of
/// branch-kind records always equals the number of `MispredictRecord`s
/// — the invariant the BMP502 lint checks. (Coincidence is rare: it
/// requires an I-cache miss and a misprediction on the same dynamic
/// instruction.)
///
/// ### Warmup
///
/// [`reset`](Self::reset) drops all pending notes, mirroring the
/// engines clearing their event logs. A branch fetched before the
/// boundary but issued after it re-enters via
/// [`on_mispredict`](Self::on_mispredict), which creates the note if
/// none exists — keeping record counts consistent with the
/// post-warmup `mispredicts` log.
#[derive(Debug, Clone, Default)]
pub struct IntervalAccountant {
    start: u64,
    notes: Vec<Note>,
}

impl IntervalAccountant {
    /// A fresh accountant with the next interval starting at index 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes a cache-miss event at dynamic index `idx`. First kind wins
    /// on coincidence (matching `segment()`).
    pub fn on_event(&mut self, idx: u64, kind: IntervalEventKind) {
        if idx < self.start {
            return; // stale event for an already-closed interval
        }
        if !self.notes.iter().any(|n| n.idx == idx) {
            self.notes.push(Note {
                idx,
                kind,
                resolution: 0,
                refill: 0,
                occupancy: 0,
            });
        }
    }

    /// Notes a mispredicted branch at dynamic index `idx`, with its
    /// observed resolution time, the machine's frontend refill, and the
    /// window occupancy at dispatch. Overrides a coincident cache-miss
    /// note and creates one if none exists.
    pub fn on_mispredict(&mut self, idx: u64, resolution: u64, refill: u32, occupancy: u32) {
        if idx < self.start {
            return;
        }
        let note = Note {
            idx,
            kind: IntervalEventKind::BranchMispredict,
            resolution,
            refill,
            occupancy,
        };
        match self.notes.iter_mut().find(|n| n.idx == idx) {
            Some(slot) => *slot = note,
            None => self.notes.push(note),
        }
    }

    /// Called once per committed instruction with its dynamic index and
    /// the commit cycle rebased to the statistics epoch. Emits a record
    /// into `sink` when the instruction carries a noted event.
    pub fn on_commit(&mut self, idx: u64, commit_cycle: u64, sink: &mut impl CycleAccounting) {
        let Some(at) = self.notes.iter().position(|n| n.idx == idx) else {
            return;
        };
        let note = self.notes.swap_remove(at);
        sink.record(&IntervalRecord {
            kind: note.kind,
            start: self.start,
            pos: idx,
            commit_cycle,
            resolution: note.resolution,
            refill: note.refill,
            occupancy: note.occupancy,
            base: 0,
            ilp: 0,
            fu_latency: 0,
            short_dmiss: 0,
            carryover: 0,
        });
        self.start = idx + 1;
    }

    /// Statistics reset at the warmup boundary: pending notes are
    /// dropped (the engines drop their event logs too) and the next
    /// interval starts at `committed`, the index of the next
    /// instruction to commit.
    pub fn reset(&mut self, committed: u64) {
        self.notes.clear();
        self.start = committed;
    }
}

/// Converts a finished penalty analysis into interval records with the
/// five contributor terms filled in — the model-side producer for the
/// metrics schema (`bmp-bench` aggregates these into the `model`
/// section of each workload's metrics; see `docs/OBSERVABILITY.md`).
///
/// Non-branch intervals carry only their kind and extent. The trailing
/// partial interval (no terminating event) is skipped, matching both
/// the histogram and the simulator-side records.
pub fn records_from_analysis(analysis: &PenaltyAnalysis) -> Vec<IntervalRecord> {
    let mut records = Vec::with_capacity(analysis.intervals.len());
    let mut breakdowns = analysis.breakdowns.iter().peekable();
    for iv in &analysis.intervals {
        let Some(kind) = iv.kind else { continue };
        let mut record = IntervalRecord {
            kind,
            start: iv.start as u64,
            pos: iv.end as u64,
            commit_cycle: 0,
            resolution: 0,
            refill: 0,
            occupancy: 0,
            base: 0,
            ilp: 0,
            fu_latency: 0,
            short_dmiss: 0,
            carryover: 0,
        };
        if kind == IntervalEventKind::BranchMispredict {
            // Breakdowns are in trace order, one per mispredicted
            // branch; the terminating instruction of a branch interval
            // is that branch.
            if let Some(b) = breakdowns.peek() {
                if b.branch_idx == iv.end {
                    let b = breakdowns.next().expect("peeked");
                    record.resolution = b.resolution;
                    record.refill = b.frontend;
                    record.base = b.base;
                    record.ilp = b.ilp;
                    record.fu_latency = b.fu_latency;
                    record.short_dmiss = b.short_dmiss;
                    record.carryover = b.carryover;
                }
            }
        }
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_all(acct: &mut IntervalAccountant, upto: u64, out: &mut Vec<IntervalRecord>) {
        for idx in 0..upto {
            acct.on_commit(idx, idx, out);
        }
    }

    #[test]
    fn intervals_are_contiguous_and_inclusive() {
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.on_event(9, IntervalEventKind::ICacheMiss);
        acct.on_mispredict(29, 12, 5, 40);
        commit_all(&mut acct, 40, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].start, out[0].pos), (0, 9));
        assert_eq!(out[0].kind, IntervalEventKind::ICacheMiss);
        assert_eq!((out[1].start, out[1].pos), (10, 29));
        assert_eq!(out[1].len(), 20);
        assert_eq!(out[1].penalty(), 17);
        assert_eq!(out[1].occupancy, 40);
        // Instructions 30..39 form the trailing partial interval: no record.
    }

    #[test]
    fn mispredict_overrides_coincident_cache_miss() {
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.on_event(5, IntervalEventKind::ICacheMiss);
        acct.on_mispredict(5, 7, 5, 3);
        commit_all(&mut acct, 6, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, IntervalEventKind::BranchMispredict);
        assert_eq!(out[0].resolution, 7);
    }

    #[test]
    fn first_cache_kind_wins_on_coincidence() {
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.on_event(5, IntervalEventKind::ICacheMiss);
        acct.on_event(5, IntervalEventKind::LongDCacheMiss);
        commit_all(&mut acct, 6, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, IntervalEventKind::ICacheMiss);
    }

    #[test]
    fn out_of_order_events_resolve_by_commit_order() {
        // OoO issue pushes a dlong event for idx 20 before idx 10's
        // event arrives; commits are in order, so records are too.
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.on_event(20, IntervalEventKind::LongDCacheMiss);
        acct.on_event(10, IntervalEventKind::ICacheMiss);
        commit_all(&mut acct, 21, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].start, out[0].pos), (0, 10));
        assert_eq!((out[1].start, out[1].pos), (11, 20));
    }

    #[test]
    fn reset_drops_notes_and_rebases_start() {
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.on_event(100, IntervalEventKind::ICacheMiss);
        acct.reset(50);
        // The pre-reset note is gone; a post-reset mispredict re-enters.
        acct.on_mispredict(60, 9, 5, 8);
        for idx in 50..70 {
            acct.on_commit(idx, idx - 50, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].start, out[0].pos), (50, 60));
        assert_eq!(out[0].commit_cycle, 10);
    }

    #[test]
    fn stale_events_below_start_are_ignored() {
        let mut acct = IntervalAccountant::new();
        let mut out = Vec::new();
        acct.reset(10);
        acct.on_event(5, IntervalEventKind::ICacheMiss);
        acct.on_mispredict(7, 1, 5, 1);
        commit_all(&mut acct, 20, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn model_records_fill_contributors() {
        use bmp_uarch::presets;
        use bmp_workloads::spec;

        let trace = spec::by_name("gzip").unwrap().generate(20_000, 1);
        let cfg = presets::baseline_4wide();
        let analysis = crate::penalty::PenaltyModel::new(cfg).analyze(&trace);
        let records = records_from_analysis(&analysis);
        let n_branch = records
            .iter()
            .filter(|r| r.kind == IntervalEventKind::BranchMispredict)
            .count();
        assert_eq!(
            n_branch,
            analysis.breakdowns.len(),
            "every breakdown must surface as a branch record"
        );
        let n_terminated = analysis
            .intervals
            .iter()
            .filter(|i| i.kind.is_some())
            .count();
        assert_eq!(records.len(), n_terminated);
        for r in &records {
            if r.kind == IntervalEventKind::BranchMispredict {
                assert_eq!(
                    r.local_resolution(),
                    r.base + r.ilp + r.fu_latency + r.short_dmiss
                );
                assert_eq!(
                    r.resolution as i64,
                    r.local_resolution() as i64 + r.carryover,
                    "carryover closes the local/observed gap at branch {}",
                    r.pos
                );
                assert_eq!(r.refill, analysis.frontend_depth);
            } else {
                assert_eq!(r.resolution, 0);
            }
        }
        // Contiguity: each interval starts right after the previous one.
        for pair in records.windows(2) {
            assert_eq!(pair[1].start, pair[0].pos + 1);
        }
    }
}
