//! Model-vs-measurement validation (experiment E-F10).
//!
//! The analytical model and the cycle-level simulator both produce a
//! resolution time per mispredicted branch, keyed by the branch's dynamic
//! index. This module inner-joins the two sets and reports error metrics.

use serde::{Deserialize, Serialize};

use crate::penalty::PenaltyAnalysis;

/// One (model, measured) resolution pair for a branch both sides saw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionPair {
    /// Dynamic index of the branch.
    pub branch_idx: usize,
    /// The model's resolution.
    pub model: f64,
    /// The simulator's resolution.
    pub measured: f64,
}

/// Aggregate validation metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All matched pairs, in branch order.
    pub pairs: Vec<ResolutionPair>,
    /// Branches only the model flagged.
    pub model_only: usize,
    /// Branches only the measurement flagged.
    pub measured_only: usize,
}

impl ValidationReport {
    /// Joins a model analysis with measured `(branch_idx, resolution)`
    /// records (e.g. from `bmp-sim`'s `MispredictRecord`s).
    ///
    /// The merge-join needs both inputs sorted by branch index, which
    /// both in-tree producers guarantee (`bmp-analyze` checks it as lint
    /// `BMP104`). Unsorted or duplicated measured records trip a debug
    /// assertion; in release builds they are detected and the join runs
    /// on a sorted, deduplicated copy instead of silently miscounting.
    pub fn from_pairs(analysis: &PenaltyAnalysis, measured: &[(usize, u64)]) -> Self {
        let sorted = measured.windows(2).all(|w| w[0].0 < w[1].0);
        debug_assert!(
            sorted,
            "measured records must be strictly sorted by branch index \
             (lint BMP104); sorting a copy as fallback"
        );
        if !sorted {
            let mut owned = measured.to_vec();
            owned.sort_by_key(|&(idx, _)| idx);
            owned.dedup_by_key(|&mut (idx, _)| idx);
            return Self::from_pairs(analysis, &owned);
        }

        let mut pairs = Vec::new();
        let mut model_only = 0;
        let mut measured_only = 0;
        let mut mi = 0usize;
        for b in &analysis.breakdowns {
            while mi < measured.len() && measured[mi].0 < b.branch_idx {
                measured_only += 1;
                mi += 1;
            }
            if mi < measured.len() && measured[mi].0 == b.branch_idx {
                pairs.push(ResolutionPair {
                    branch_idx: b.branch_idx,
                    model: b.resolution as f64,
                    measured: measured[mi].1 as f64,
                });
                mi += 1;
            } else {
                model_only += 1;
            }
        }
        measured_only += measured.len() - mi;
        Self {
            pairs,
            model_only,
            measured_only,
        }
    }

    /// Mean of the model resolutions, or `None` with no pairs.
    pub fn model_mean(&self) -> Option<f64> {
        mean(self.pairs.iter().map(|p| p.model))
    }

    /// Mean of the measured resolutions, or `None` with no pairs.
    pub fn measured_mean(&self) -> Option<f64> {
        mean(self.pairs.iter().map(|p| p.measured))
    }

    /// Mean absolute error over the pairs, or `None` with no pairs.
    pub fn mean_absolute_error(&self) -> Option<f64> {
        mean(self.pairs.iter().map(|p| (p.model - p.measured).abs()))
    }

    /// Signed bias (model − measured), or `None` with no pairs.
    pub fn bias(&self) -> Option<f64> {
        mean(self.pairs.iter().map(|p| p.model - p.measured))
    }

    /// Relative error of the *aggregate* means (the figure the paper-style
    /// validation reports), or `None` with no pairs or a zero measured
    /// mean.
    pub fn aggregate_relative_error(&self) -> Option<f64> {
        let m = self.model_mean()?;
        let s = self.measured_mean()?;
        if s == 0.0 {
            None
        } else {
            Some((m - s).abs() / s)
        }
    }

    /// Pearson correlation between model and measured resolutions, or
    /// `None` with fewer than 2 pairs or zero variance.
    pub fn correlation(&self) -> Option<f64> {
        if self.pairs.len() < 2 {
            return None;
        }
        let mx = self.model_mean()?;
        let my = self.measured_mean()?;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for p in &self.pairs {
            let dx = p.model - mx;
            let dy = p.measured - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            return None;
        }
        Some(sxy / (sxx * syy).sqrt())
    }

    /// Fraction of mispredictions both sides agree on, relative to the
    /// union.
    pub fn event_agreement(&self) -> f64 {
        let union = self.pairs.len() + self.model_only + self.measured_only;
        if union == 0 {
            1.0
        } else {
            self.pairs.len() as f64 / union as f64
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut n = 0u64;
    let mut s = 0.0;
    for v in values {
        n += 1;
        s += v;
    }
    if n == 0 {
        None
    } else {
        Some(s / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::penalty::{PenaltyAnalysis, PenaltyBreakdown};

    fn analysis_with(resolutions: &[(usize, u64)]) -> PenaltyAnalysis {
        PenaltyAnalysis {
            intervals: vec![],
            breakdowns: resolutions
                .iter()
                .map(|&(idx, r)| PenaltyBreakdown {
                    branch_idx: idx,
                    interval_start: 0,
                    interval_len: 1,
                    resolution: r,
                    local_resolution: r,
                    frontend: 5,
                    base: 1,
                    ilp: r.saturating_sub(1),
                    fu_latency: 0,
                    short_dmiss: 0,
                    carryover: 0,
                })
                .collect(),
            frontend_depth: 5,
            instructions: 1000,
        }
    }

    #[test]
    fn perfect_match() {
        let a = analysis_with(&[(10, 8), (20, 12)]);
        let r = ValidationReport::from_pairs(&a, &[(10, 8), (20, 12)]);
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.mean_absolute_error(), Some(0.0));
        assert_eq!(r.bias(), Some(0.0));
        assert_eq!(r.event_agreement(), 1.0);
        assert_eq!(r.aggregate_relative_error(), Some(0.0));
    }

    #[test]
    fn disjoint_sets() {
        let a = analysis_with(&[(10, 8)]);
        let r = ValidationReport::from_pairs(&a, &[(11, 9)]);
        assert!(r.pairs.is_empty());
        assert_eq!(r.model_only, 1);
        assert_eq!(r.measured_only, 1);
        assert_eq!(r.event_agreement(), 0.0);
        assert!(r.mean_absolute_error().is_none());
    }

    #[test]
    fn partial_overlap_and_bias() {
        let a = analysis_with(&[(5, 10), (10, 10), (15, 10)]);
        let r = ValidationReport::from_pairs(&a, &[(5, 12), (15, 6), (30, 4)]);
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.model_only, 1);
        assert_eq!(r.measured_only, 1);
        // model 10,10 vs measured 12,6: bias = (−2 + 4)/2 = 1.
        assert_eq!(r.bias(), Some(1.0));
        assert_eq!(r.mean_absolute_error(), Some(3.0));
    }

    #[test]
    fn correlation_detects_tracking() {
        let a = analysis_with(&[(1, 2), (2, 4), (3, 8), (4, 16)]);
        let tracking = ValidationReport::from_pairs(&a, &[(1, 3), (2, 5), (3, 9), (4, 17)]);
        assert!(tracking.correlation().unwrap() > 0.99);
        let anti = ValidationReport::from_pairs(&a, &[(1, 17), (2, 9), (3, 5), (4, 3)]);
        assert!(anti.correlation().unwrap() < -0.8);
    }

    #[test]
    fn correlation_none_for_constant_series() {
        let a = analysis_with(&[(1, 5), (2, 5)]);
        let r = ValidationReport::from_pairs(&a, &[(1, 3), (2, 9)]);
        assert!(r.correlation().is_none());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "BMP104")]
    fn unsorted_measured_records_trip_the_debug_assertion() {
        let a = analysis_with(&[(10, 8)]);
        let _ = ValidationReport::from_pairs(&a, &[(20, 9), (10, 8)]);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn unsorted_measured_records_are_sorted_in_release() {
        let a = analysis_with(&[(10, 8), (20, 12)]);
        // Unsorted with a duplicate; the release fallback sorts and
        // dedups, so the join still matches both branches.
        let r = ValidationReport::from_pairs(&a, &[(20, 12), (10, 8), (10, 8)]);
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.event_agreement(), 1.0);
    }

    #[test]
    fn relative_error() {
        let a = analysis_with(&[(1, 11)]);
        let r = ValidationReport::from_pairs(&a, &[(1, 10)]);
        assert!((r.aggregate_relative_error().unwrap() - 0.1).abs() < 1e-12);
    }
}
