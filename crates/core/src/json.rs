//! Minimal JSON reading and writing shared by the workspace's
//! hand-rolled emitters.
//!
//! The workspace deliberately carries no JSON dependency: every emitter
//! (`results/bench_timings.json`, the run journal, the metrics files)
//! hand-formats its output, and the readers use the small
//! recursive-descent parser in this module. The parser grew out of the
//! run-journal reader (see [`crate::journal`]) and now also serves the
//! observability layer's `results/metrics/*.json` files (see
//! [`crate::metrics`] and `docs/OBSERVABILITY.md`), which is why it
//! understands floats, negative integers, booleans and `null` — shapes
//! the journal itself never emits.
//!
//! Strict about structure (trailing garbage, unknown escapes and
//! mismatched delimiters are errors), tolerant of whitespace. Numbers
//! are kept in three distinct variants so 64-bit content fingerprints
//! and counters survive without an `f64` round-trip: an unsigned
//! integer literal parses as [`Value::UInt`], a negative integer as
//! [`Value::Int`], and anything with a fraction or exponent as
//! [`Value::Float`].

use std::fmt;

/// Why a document could not be parsed (or a field could not be read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The underlying message, without the "invalid JSON" prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Objects preserve field order (they are association lists, not maps):
/// every writer in this workspace emits deterministic field order, and
/// keeping it makes `parse(to_json(x)) == x` round-trip tests exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `{ ... }` — fields in document order.
    Object(Vec<(String, Value)>),
    /// `[ ... ]`.
    Array(Vec<Value>),
    /// `"..."`.
    String(String),
    /// A non-negative integer literal (no sign, fraction or exponent).
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A literal with a fraction or exponent part.
    Float(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The object fields, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&Vec<(String, Value)>, JsonError> {
        match self {
            Value::Object(fields) => Ok(fields),
            _ => Err(JsonError::new(format!("{what} is not a JSON object"))),
        }
    }

    /// The array items, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&Vec<Value>, JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(JsonError::new(format!("{what} is not an array"))),
        }
    }

    /// The string contents, or an error naming `what`.
    pub fn as_string(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(JsonError::new(format!("{what} is not a string"))),
        }
    }

    /// The value as a `u64`. Only an unsigned integer literal qualifies —
    /// floats are rejected so counter fields cannot silently truncate.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Value::UInt(n) => Ok(*n),
            _ => Err(JsonError::new(format!("{what} is not an unsigned integer"))),
        }
    }

    /// The value as an `i64` (either integer variant, range permitting).
    pub fn as_i64(&self, what: &str) -> Result<i64, JsonError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| JsonError::new(format!("{what} is out of i64 range")))
            }
            _ => Err(JsonError::new(format!("{what} is not an integer"))),
        }
    }

    /// The value as an `f64`. Integer literals qualify too: a writer
    /// formatting `2.0` may legitimately emit `2`.
    pub fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(JsonError::new(format!("{what} is not a number"))),
        }
    }
}

/// Field access on an object's association list by key.
pub trait ObjectExt {
    /// The field's value, if present.
    fn get(&self, key: &str) -> Option<&Value>;

    /// A required unsigned-integer field.
    fn get_u64(&self, key: &str) -> Result<u64, JsonError>;

    /// A required integer field (either sign).
    fn get_i64(&self, key: &str) -> Result<i64, JsonError>;

    /// A required numeric field, widened to `f64`.
    fn get_f64(&self, key: &str) -> Result<f64, JsonError>;

    /// A required string field.
    fn get_string(&self, key: &str) -> Result<&str, JsonError>;

    /// A required array field.
    fn get_array(&self, key: &str) -> Result<&Vec<Value>, JsonError>;

    /// A required object field.
    fn get_object(&self, key: &str) -> Result<&Vec<(String, Value)>, JsonError>;
}

fn missing(key: &str) -> JsonError {
    JsonError::new(format!("missing field {key:?}"))
}

impl ObjectExt for Vec<(String, Value)> {
    fn get(&self, key: &str) -> Option<&Value> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_u64(key)
    }

    fn get_i64(&self, key: &str) -> Result<i64, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_i64(key)
    }

    fn get_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_f64(key)
    }

    fn get_string(&self, key: &str) -> Result<&str, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_string(key)
    }

    fn get_array(&self, key: &str) -> Result<&Vec<Value>, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_array(key)
    }

    fn get_object(&self, key: &str) -> Result<&Vec<(String, Value)>, JsonError> {
        self.get(key).ok_or_else(|| missing(key))?.as_object(key)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    Parser::new(text).parse_document()
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` as a JSON number that reads back as a float:
/// Rust's shortest round-trip formatting, with `.0` appended to whole
/// numbers so `2.0` serializes as `2.0` rather than the integer `2`.
/// Deterministic — same value, same bytes. Non-finite values (which no
/// accounting identity can legitimately produce) serialize as `0.0`
/// rather than emitting invalid JSON.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_owned();
    }
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, JsonError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing garbage at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    /// Consumes the keyword `word` (whose first byte is already peeked).
    fn expect_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "unrecognized keyword at byte {} (expected {word:?})",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'0'..=b'9' | b'-' => self.parse_number(),
            b't' => self.expect_keyword("true", Value::Bool(true)),
            b'f' => self.expect_keyword("false", Value::Bool(false)),
            b'n' => self.expect_keyword("null", Value::Null),
            other => Err(JsonError::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}', found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']', found {:?} at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| JsonError::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // The workspace's writers never emit surrogate
                            // pairs (only control characters go through \u).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                b => {
                    // Reassemble multi-byte UTF-8 sequences: the input
                    // came from a &str, so continuation bytes are valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| JsonError::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.bytes.get(self.pos) == Some(&b'-');
        if negative {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.bytes.get(p.pos).is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(JsonError::new(format!("malformed number at byte {start}")));
        }
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            fractional = true;
            self.pos += 1;
            if !digits(self) {
                return Err(JsonError::new("digits required after decimal point"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(JsonError::new("digits required in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        if fractional {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| JsonError::new(format!("bad float: {text}")))
        } else if negative {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| JsonError::new(format!("number out of range: {text}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| JsonError::new(format!("number out of range: {text}")))
        }
    }
}

/// Byte length of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_value_zoo() {
        let v = parse(
            r#"{ "a": 1, "b": -2, "c": 2.5, "d": [true, false, null],
                 "e": "x\ny", "f": { "g": 1e3 } }"#,
        )
        .unwrap();
        let obj = v.as_object("root").unwrap();
        assert_eq!(obj.get_u64("a").unwrap(), 1);
        assert_eq!(obj.get_i64("b").unwrap(), -2);
        assert!((obj.get_f64("c").unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(
            obj.get_array("d").unwrap(),
            &vec![Value::Bool(true), Value::Bool(false), Value::Null]
        );
        assert_eq!(obj.get_string("e").unwrap(), "x\ny");
        assert!((obj.get_object("f").unwrap().get_f64("g").unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integers_do_not_collapse_into_floats() {
        // The reason for three number variants: this survives exactly.
        let v = parse("18446744073709551614").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX - 1));
        assert!(v.as_f64("v").is_ok(), "widening is allowed on request");
        // But a float never narrows silently into a counter.
        assert!(parse("2.5").unwrap().as_u64("v").is_err());
    }

    #[test]
    fn numeric_widening_accepts_integer_literals() {
        assert_eq!(parse("7").unwrap().as_f64("v").unwrap(), 7.0);
        assert_eq!(parse("-7").unwrap().as_f64("v").unwrap(), -7.0);
        assert_eq!(parse("7").unwrap().as_i64("v").unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "nul",
            "1.2.3",
            "-",
            "1e",
            "1.",
            "{\"a\": 1} extra",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn float_formatting_round_trips_and_is_canonical() {
        for v in [0.0, 2.0, -2.0, 2.5, 1.0 / 3.0, 1e-9, 123456789.125] {
            let s = fmt_f64(v);
            let back = parse(&s).unwrap().as_f64("v").unwrap();
            assert_eq!(back, v, "{s} must round-trip");
            assert!(s.contains(['.', 'e', 'E']), "{s} must read back as a float");
        }
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcødé";
        let s = escape_string(nasty);
        assert_eq!(parse(&s).unwrap().as_string("s").unwrap(), nasty);
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let obj = v.as_object("root").unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
    }
}
