//! The interval-model CPI stack.
//!
//! Interval analysis predicts total execution time as ideal time plus a
//! penalty per miss event:
//!
//! * **base** — `N / D` cycles for `N` instructions at dispatch width `D`;
//! * **branch** — per misprediction, `resolution + c_fe` from the
//!   [`penalty`](crate::penalty) model;
//! * **icache** — per I-cache miss, the fetch-delivery delay of the level
//!   that served it;
//! * **long D-miss** — per *isolated* long data miss, the memory latency;
//!   long misses within one window-span of instructions of each other
//!   overlap (memory-level parallelism) and are charged once.
//!
//! The stack is a first-order model: it deliberately ignores second-order
//! interactions (penalty overlap across event kinds), which is exactly the
//! approximation the paper's framework makes.

use bmp_trace::Trace;
use bmp_uarch::MachineConfig;
use serde::{Deserialize, Serialize};

use crate::functional::FunctionalOutcome;
use crate::intervals::IntervalEventKind;
use crate::penalty::PenaltyModel;

/// Predicted cycle counts per component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Instructions the stack covers.
    pub instructions: u64,
    /// Ideal dispatch-bound cycles (`N / D`).
    pub base_cycles: f64,
    /// Branch misprediction cycles (resolution + refill, summed).
    pub branch_cycles: f64,
    /// I-cache miss cycles.
    pub icache_cycles: f64,
    /// Long D-cache miss cycles after the MLP overlap rule.
    pub long_dmiss_cycles: f64,
}

impl CpiStack {
    /// Total predicted cycles.
    pub fn total_cycles(&self) -> f64 {
        self.base_cycles + self.branch_cycles + self.icache_cycles + self.long_dmiss_cycles
    }

    /// Predicted cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_cycles() / self.instructions as f64
        }
    }

    /// The component CPIs `(base, branch, icache, long_dmiss)`.
    pub fn components(&self) -> (f64, f64, f64, f64) {
        if self.instructions == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = self.instructions as f64;
        (
            self.base_cycles / n,
            self.branch_cycles / n,
            self.icache_cycles / n,
            self.long_dmiss_cycles / n,
        )
    }
}

/// Builds the CPI stack for a trace on a machine.
///
/// Runs the functional pass and the penalty model internally; use
/// [`predict_with`] to reuse existing results.
///
/// # Examples
///
/// ```
/// use bmp_core::cpi;
/// use bmp_uarch::presets;
/// use bmp_workloads::spec;
///
/// let trace = spec::by_name("gzip").unwrap().generate(20_000, 1);
/// let stack = cpi::predict(&trace, &presets::baseline_4wide());
/// assert!(stack.cpi() >= 0.25); // cannot beat the 4-wide ideal
/// ```
pub fn predict(trace: &Trace, cfg: &MachineConfig) -> CpiStack {
    let outcome = FunctionalOutcome::compute(trace, cfg);
    predict_with(trace, cfg, &outcome)
}

/// Builds the CPI stack from an existing functional pass.
pub fn predict_with(trace: &Trace, cfg: &MachineConfig, outcome: &FunctionalOutcome) -> CpiStack {
    let analysis = PenaltyModel::new(cfg.clone()).analyze_with(trace, outcome);
    // First-order stack: the *local* resolution per misprediction, so
    // overlap with other events (already counted in their own
    // components) is not double-charged.
    let branch_cycles: f64 = analysis
        .breakdowns
        .iter()
        .map(|b| (b.local_resolution + u64::from(b.frontend)) as f64)
        .sum();

    let short_ifetch = f64::from(cfg.caches.short_dmiss_latency());
    let long_ifetch = f64::from(cfg.caches.short_dmiss_latency() + cfg.caches.mem_latency());
    let mut icache_cycles = 0.0;
    let mut long_positions = Vec::new();
    for e in &outcome.events {
        match e.kind {
            IntervalEventKind::ICacheMiss => icache_cycles += short_ifetch,
            IntervalEventKind::ICacheLongMiss => icache_cycles += long_ifetch,
            IntervalEventKind::LongDCacheMiss => long_positions.push(e.pos),
            IntervalEventKind::BranchMispredict => {}
        }
    }

    // MLP rule: a long miss within one window-span of the previous
    // *charged* long miss overlaps with it and is free — unless its
    // address depends on that miss (a pointer chase), in which case the
    // two serialize and both are charged. Dependence is detected by a
    // bounded walk up the register-dependence DAG.
    let window = cfg.window_size as usize;
    let mem = f64::from(cfg.caches.mem_latency());
    let mut long_dmiss_cycles = 0.0;
    let mut last_charged: Option<usize> = None;
    let mut last_long: Option<usize> = None;
    for &pos in &long_positions {
        let in_window = last_charged.is_some_and(|lc| pos - lc < window);
        let chased = last_long.is_some_and(|prev| depends_on(trace, pos, prev, 3));
        if !in_window {
            long_dmiss_cycles += mem;
            last_charged = Some(pos);
        } else if chased {
            // A chased miss serializes behind its producer, but its wait
            // overlaps the window refill the producer already paid for.
            long_dmiss_cycles += (mem - window as f64 / f64::from(cfg.dispatch_width)).max(0.0);
            last_charged = Some(pos);
        }
        last_long = Some(pos);
    }

    CpiStack {
        instructions: trace.len() as u64,
        base_cycles: trace.len() as f64 / f64::from(cfg.dispatch_width),
        branch_cycles,
        icache_cycles,
        long_dmiss_cycles,
    }
}

/// Predicts total execution cycles via the whole-trace schedule
/// ("interval simulation") rather than the additive stack — slower than
/// [`predict`] but capturing event overlap, so it tracks the cycle-level
/// simulator more closely.
///
/// # Examples
///
/// ```
/// use bmp_core::cpi;
/// use bmp_uarch::presets;
/// use bmp_workloads::spec;
///
/// let trace = spec::by_name("gzip").unwrap().generate(10_000, 1);
/// let cfg = presets::baseline_4wide();
/// let cycles = cpi::predict_cycles_scheduled(&trace, &cfg);
/// assert!(cycles as usize >= trace.len() / 4);
/// ```
pub fn predict_cycles_scheduled(trace: &Trace, cfg: &MachineConfig) -> u64 {
    let outcome = FunctionalOutcome::compute(trace, cfg);
    let events = crate::penalty::frontend_events_of(cfg, &outcome);
    let schedule = crate::drain::schedule_trace(
        trace.ops(),
        crate::drain::MachineModel::from(cfg),
        &cfg.latencies,
        |i| outcome.load_latency[i],
        &events,
        false,
    );
    schedule.total_cycles()
}

/// Returns `true` when `consumer`'s value transitively depends on
/// `producer` within `max_hops` dependence edges — the bounded DAG walk
/// behind the chase-serialization rule. A small hop bound targets
/// *address* dependences (pointer chases) rather than arbitrary value
/// flow.
fn depends_on(trace: &Trace, consumer: usize, producer: usize, max_hops: u32) -> bool {
    if consumer <= producer {
        return false;
    }
    let mut stack = vec![(consumer, 0u32)];
    while let Some((node, hops)) = stack.pop() {
        if hops >= max_hops {
            continue;
        }
        let Some(op) = trace.get(node) else { continue };
        for d in op.src_distances() {
            let d = d as usize;
            if d > node {
                continue;
            }
            let src = node - d;
            if src == producer {
                return true;
            }
            if src > producer {
                stack.push((src, hops + 1));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::{presets, PredictorConfig};
    use bmp_workloads::{micro, spec};

    #[test]
    fn ideal_code_is_base_only() {
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::Perfect)
            .build()
            .unwrap();
        let trace = micro::chain_kernel(20_000, 16, 63, bmp_uarch::OpClass::IntAlu);
        let stack = predict(&trace, &cfg);
        assert_eq!(stack.branch_cycles, 0.0);
        assert_eq!(stack.long_dmiss_cycles, 0.0);
        // Cold I-misses only.
        assert!(stack.icache_cycles < 2000.0);
        assert!((stack.base_cycles - 5000.0).abs() < 1e-9);
        assert!(stack.cpi() < 0.4);
    }

    #[test]
    fn branch_component_tracks_mispredictions() {
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let trace = micro::branch_resolution_kernel(20_000, 8, 1.0, 3);
        let stack = predict(&trace, &cfg);
        // ~2200 mispredictions at >= 6 cycles each.
        assert!(
            stack.branch_cycles > 10_000.0,
            "branch cycles {}",
            stack.branch_cycles
        );
        let (_, branch_cpi, _, _) = stack.components();
        assert!(branch_cpi > 0.5);
    }

    #[test]
    fn mlp_rule_charges_isolated_misses_only() {
        // Dense long misses (every 16 ops, window 64): mostly overlapped.
        let cfg = presets::baseline_4wide();
        let dense = micro::memory_kernel(20_000, 64 * 1024 * 1024, 2, false, 7);
        let stack_dense = predict(&dense, &cfg);
        let outcome = FunctionalOutcome::compute(&dense, &cfg);
        let n_long = outcome
            .events
            .iter()
            .filter(|e| e.kind == IntervalEventKind::LongDCacheMiss)
            .count() as f64;
        let charged = stack_dense.long_dmiss_cycles / 200.0;
        assert!(
            charged < n_long * 0.2,
            "dense misses should mostly overlap: charged {charged} of {n_long}"
        );
    }

    #[test]
    fn serialized_chases_are_charged() {
        // Pointer chase: every long miss depends on the previous one; the
        // MLP rule's window test still sees them within a window span,
        // but chases with sparse loads (every 32 ops, window 64) show the
        // distinction between dense-independent and far-apart misses.
        let cfg = presets::baseline_4wide();
        let sparse = micro::memory_kernel(20_000, 64 * 1024 * 1024, 80, false, 7);
        let stack = predict(&sparse, &cfg);
        let outcome = FunctionalOutcome::compute(&sparse, &cfg);
        let n_long = outcome
            .events
            .iter()
            .filter(|e| e.kind == IntervalEventKind::LongDCacheMiss)
            .count() as f64;
        let charged = stack.long_dmiss_cycles / 200.0;
        assert!(
            charged > n_long * 0.8,
            "sparse misses are isolated: charged {charged} of {n_long}"
        );
    }

    /// Chased (dependent) long misses serialize: the stack charges them
    /// even inside the window span.
    #[test]
    fn chased_misses_are_charged() {
        let cfg = presets::baseline_4wide();
        // Dense chased misses: every load depends on the previous one.
        let chased = micro::memory_kernel(20_000, 64 * 1024 * 1024, 4, true, 7);
        let independent = micro::memory_kernel(20_000, 64 * 1024 * 1024, 4, false, 7);
        let s_chase = predict(&chased, &cfg);
        let s_indep = predict(&independent, &cfg);
        assert!(
            s_chase.long_dmiss_cycles > s_indep.long_dmiss_cycles * 2.0,
            "chased misses must be charged serially: {} vs {}",
            s_chase.long_dmiss_cycles,
            s_indep.long_dmiss_cycles
        );
    }

    #[test]
    fn depends_on_walks_the_dag() {
        use bmp_trace::MicroOp;
        use bmp_uarch::OpClass;
        let ops = vec![
            MicroOp::load(0, 0x100, [None, None]),             // 0
            MicroOp::alu(4, OpClass::IntAlu, [Some(1), None]), // 1 <- 0
            MicroOp::alu(8, OpClass::IntAlu, [Some(1), None]), // 2 <- 1
            MicroOp::load(12, 0x200, [Some(1), None]),         // 3 <- 2
            MicroOp::load(16, 0x300, [None, None]),            // 4 independent
        ];
        let t = Trace::from_ops_unchecked(ops);
        assert!(depends_on(&t, 3, 0, 8), "3 -> 2 -> 1 -> 0");
        assert!(!depends_on(&t, 4, 0, 8), "4 is independent");
        assert!(!depends_on(&t, 3, 0, 2), "hop bound respected");
        assert!(!depends_on(&t, 0, 3, 8), "direction matters");
    }

    #[test]
    fn components_sum_to_total() {
        let trace = spec::by_name("gcc").unwrap().generate(20_000, 3);
        let stack = predict(&trace, &presets::baseline_4wide());
        let (b, br, ic, dm) = stack.components();
        assert!(((b + br + ic + dm) - stack.cpi()).abs() < 1e-9);
        assert!(stack.cpi() > 0.25);
    }

    #[test]
    fn empty_trace() {
        let stack = predict(&Trace::new(), &presets::baseline_4wide());
        assert_eq!(stack.cpi(), 0.0);
        assert_eq!(stack.components(), (0.0, 0.0, 0.0, 0.0));
    }
}
