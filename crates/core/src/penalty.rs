//! The branch misprediction penalty model and its five-contributor
//! decomposition — the paper's core contribution.
//!
//! For each mispredicted branch, the model schedules the inter-miss
//! interval ending at that branch under the window model
//! ([`drain`](crate::drain)) and reads off the *branch resolution time*.
//! The full penalty is
//!
//! ```text
//! penalty = resolution + frontend refill (c_fe)
//! ```
//!
//! The resolution is then decomposed by *knock-out re-scheduling*: the
//! same interval is re-scheduled with one mechanism neutralized at a
//! time, and the differences attribute the resolution to the paper's
//! contributors:
//!
//! | term | knock-out | contributor |
//! |---|---|---|
//! | `short_dmiss` | loads forced to L1-hit latency | (v) short D-cache misses |
//! | `fu_latency` | all latencies forced to 1 | (iv) functional-unit latencies |
//! | `ilp` | dependences ignored | (iii) inherent program ILP |
//! | `base` | — | dispatch-to-issue plus the branch's execution (the resolution floor) |
//!
//! Latency shrinking moves every *completion* earlier in a data-flow
//! schedule; because the resolution is a difference (`done − enter`) and
//! the window cap moves `enter` too, the knocked-out resolutions are
//! additionally cascaded through a running floor, so every term is
//! non-negative and they sum exactly to the *local* resolution (the
//! interval scheduled in isolation, window empty at its start). The branch's *effective* resolution comes from the
//! whole-trace schedule ([`drain::schedule_trace`](crate::drain)), which
//! additionally sees issue-bandwidth contention, ROB fill from long
//! misses, and the window state carried over from before the interval;
//! the difference is reported as [`PenaltyBreakdown::carryover`].
//!
//! Contributor (ii) — instructions since the last miss event — manifests
//! twice: as the ramp-up inside the local schedule, and as the
//! *dependence of the resolution on interval length* exposed by
//! [`PenaltyAnalysis::resolution_by_interval_length`] (experiment E-F3).

use bmp_trace::Trace;
use bmp_uarch::{LatencyTable, MachineConfig};
use serde::{Deserialize, Serialize};

use crate::drain::{schedule_interval, schedule_trace, FrontendEvent, MachineModel, WindowParams};
use crate::functional::FunctionalOutcome;
use crate::intervals::{segment, Interval, IntervalEventKind, LENGTH_BUCKETS};

/// Translates the functional pass's miss events into the frontend events
/// of the whole-trace schedule (long D-misses act through load latencies
/// and the ROB cap, not through the frontend).
pub(crate) fn frontend_events_of(
    cfg: &MachineConfig,
    outcome: &FunctionalOutcome,
) -> Vec<FrontendEvent> {
    outcome
        .events
        .iter()
        .filter_map(|e| match e.kind {
            IntervalEventKind::BranchMispredict => Some(FrontendEvent::Mispredict { pos: e.pos }),
            IntervalEventKind::ICacheMiss => Some(FrontendEvent::FetchStall {
                pos: e.pos,
                extra: cfg.caches.short_dmiss_latency(),
            }),
            IntervalEventKind::ICacheLongMiss => Some(FrontendEvent::FetchStall {
                pos: e.pos,
                extra: cfg.caches.short_dmiss_latency() + cfg.caches.mem_latency(),
            }),
            IntervalEventKind::LongDCacheMiss => None,
        })
        .collect()
}

/// Per-misprediction penalty decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PenaltyBreakdown {
    /// Dynamic index of the mispredicted branch.
    pub branch_idx: usize,
    /// First instruction of the branch's interval.
    pub interval_start: usize,
    /// Instructions since the last miss event, the branch included —
    /// the x-axis of contributor (ii).
    pub interval_len: usize,
    /// Modeled branch resolution time, from the whole-trace schedule.
    pub resolution: u64,
    /// Resolution of the interval scheduled in isolation (window empty at
    /// interval start); the knock-out terms below sum to exactly this.
    pub local_resolution: u64,
    /// Contributor (i): the frontend refill, `c_fe`.
    pub frontend: u32,
    /// The resolution floor: dispatch-to-issue plus the branch's own
    /// execution.
    pub base: u64,
    /// Contributor (iii): dependence-chain (inherent ILP) share.
    pub ilp: u64,
    /// Contributor (iv): functional-unit-latency share.
    pub fu_latency: u64,
    /// Contributor (v): short D-cache-miss share.
    pub short_dmiss: u64,
    /// Window/bandwidth state carried over from before the interval
    /// (`resolution − local_resolution`; part of contributor (ii)). Can
    /// be slightly negative when cross-interval overlap *helps* the
    /// branch.
    pub carryover: i64,
}

impl PenaltyBreakdown {
    /// The full penalty: resolution plus frontend refill.
    pub fn penalty(&self) -> u64 {
        self.resolution + u64::from(self.frontend)
    }
}

/// The result of analyzing one trace: intervals, per-misprediction
/// breakdowns and aggregate views.
#[derive(Debug, Clone)]
pub struct PenaltyAnalysis {
    /// Every inter-miss interval of the trace.
    pub intervals: Vec<Interval>,
    /// One breakdown per mispredicted branch, in trace order.
    pub breakdowns: Vec<PenaltyBreakdown>,
    /// The frontend depth of the analyzed machine.
    pub frontend_depth: u32,
    /// Total instructions analyzed.
    pub instructions: usize,
}

impl PenaltyAnalysis {
    /// Mean resolution time, or `None` without mispredictions.
    pub fn mean_resolution(&self) -> Option<f64> {
        if self.breakdowns.is_empty() {
            return None;
        }
        let s: u64 = self.breakdowns.iter().map(|b| b.resolution).sum();
        Some(s as f64 / self.breakdowns.len() as f64)
    }

    /// Mean full penalty, or `None` without mispredictions.
    pub fn mean_penalty(&self) -> Option<f64> {
        self.mean_resolution()
            .map(|r| r + f64::from(self.frontend_depth))
    }

    /// Mean contributor shares `(base, ilp, fu_latency, short_dmiss)`,
    /// or `None` without mispredictions.
    pub fn mean_contributions(&self) -> Option<(f64, f64, f64, f64)> {
        if self.breakdowns.is_empty() {
            return None;
        }
        let n = self.breakdowns.len() as f64;
        let sum =
            |f: fn(&PenaltyBreakdown) -> u64| self.breakdowns.iter().map(f).sum::<u64>() as f64 / n;
        Some((
            sum(|b| b.base),
            sum(|b| b.ilp),
            sum(|b| b.fu_latency),
            sum(|b| b.short_dmiss),
        ))
    }

    fn bucketize<F>(&self, mut value: F) -> Vec<(usize, f64, u64)>
    where
        F: FnMut(&PenaltyBreakdown) -> u64,
    {
        let mut sums = vec![0u64; LENGTH_BUCKETS.len() + 1];
        let mut counts = vec![0u64; LENGTH_BUCKETS.len() + 1];
        for b in &self.breakdowns {
            let bucket = LENGTH_BUCKETS
                .iter()
                .position(|&bound| b.interval_len < bound)
                .map(|p| p.saturating_sub(1))
                .unwrap_or(LENGTH_BUCKETS.len());
            sums[bucket] += value(b);
            counts[bucket] += 1;
        }
        (0..sums.len())
            .filter(|&i| counts[i] > 0)
            .map(|i| {
                let lo = if i < LENGTH_BUCKETS.len() {
                    LENGTH_BUCKETS[i]
                } else {
                    *LENGTH_BUCKETS.last().expect("non-empty")
                };
                (lo, sums[i] as f64 / counts[i] as f64, counts[i])
            })
            .collect()
    }

    /// Mean *effective* resolution (whole-trace schedule) bucketed by
    /// interval length. Returns
    /// `(bucket lower bound, mean resolution, count)` per non-empty
    /// bucket, in increasing length order.
    ///
    /// Note the effective resolution of very short intervals can be
    /// *inflated* by the shadow of the preceding miss event (a pending
    /// long D-miss blocking the ROB); use
    /// [`local_resolution_by_interval_length`] for the paper's pure
    /// window-ramp-up mechanism.
    ///
    /// [`local_resolution_by_interval_length`]:
    /// PenaltyAnalysis::local_resolution_by_interval_length
    pub fn resolution_by_interval_length(&self) -> Vec<(usize, f64, u64)> {
        self.bucketize(|b| b.resolution)
    }

    /// Mean *local* resolution (interval scheduled in isolation, window
    /// empty at its start) bucketed by interval length — the
    /// contributor-(ii) ramp-up characterization of experiment E-F3:
    /// short intervals dispatch the branch into an emptier window and
    /// resolve it faster; long intervals saturate near the window drain
    /// bound.
    pub fn local_resolution_by_interval_length(&self) -> Vec<(usize, f64, u64)> {
        self.bucketize(|b| b.local_resolution)
    }

    /// Mean effective resolution grouped by the *kind of the preceding
    /// miss event* — the quantified shadow effect: a misprediction right
    /// after a long D-miss resolves in that miss's shadow, while one
    /// after another misprediction meets a freshly drained window.
    ///
    /// Returns `(preceding kind, mean resolution, count)` rows; `None`
    /// for mispredictions whose interval starts the trace.
    pub fn resolution_by_previous_event(&self) -> Vec<(Option<IntervalEventKind>, f64, u64)> {
        use std::collections::HashMap;
        // Map interval start -> kind of the event that ended the
        // previous interval.
        let mut prev_kind: HashMap<usize, Option<IntervalEventKind>> = HashMap::new();
        let mut last: Option<IntervalEventKind> = None;
        for iv in &self.intervals {
            prev_kind.insert(iv.start, last);
            last = iv.kind;
        }
        let mut acc: HashMap<Option<IntervalEventKind>, (u64, u64)> = HashMap::new();
        for b in &self.breakdowns {
            let k = prev_kind.get(&b.interval_start).copied().flatten();
            let e = acc.entry(k).or_default();
            e.0 += b.resolution;
            e.1 += 1;
        }
        let mut rows: Vec<_> = acc
            .into_iter()
            .map(|(k, (sum, n))| (k, sum as f64 / n as f64, n))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows
    }

    /// Histogram of effective resolutions over the given bucket
    /// boundaries: returns one count per bucket `[bounds[i],
    /// bounds[i+1])` plus a final overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or unsorted.
    pub fn resolution_histogram(&self, bounds: &[u64]) -> Vec<u64> {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let mut counts = vec![0u64; bounds.len() + 1];
        for b in &self.breakdowns {
            let bucket = bounds
                .iter()
                .position(|&bound| b.resolution < bound)
                .unwrap_or(bounds.len());
            counts[bucket] += 1;
        }
        counts
    }

    /// The `q`-quantile (0..=1) of the effective resolutions, or `None`
    /// without mispredictions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn resolution_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.breakdowns.is_empty() {
            return None;
        }
        let mut rs: Vec<u64> = self.breakdowns.iter().map(|b| b.resolution).collect();
        rs.sort_unstable();
        let idx = ((rs.len() - 1) as f64 * q).round() as usize;
        Some(rs[idx])
    }

    /// Number of mispredictions per kilo-instruction.
    pub fn mispredict_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.breakdowns.len() as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// The analytical penalty model for one machine configuration.
///
/// # Examples
///
/// ```
/// use bmp_core::PenaltyModel;
/// use bmp_uarch::presets;
/// use bmp_workloads::micro;
///
/// // Random branches at the end of 8-op chains, always-not-taken
/// // predictor: every taken branch mispredicts.
/// let cfg = presets::baseline_4wide()
///     .to_builder()
///     .predictor(bmp_uarch::PredictorConfig::AlwaysNotTaken)
///     .build()?;
/// let trace = micro::branch_resolution_kernel(10_000, 8, 1.0, 7);
/// let analysis = PenaltyModel::new(cfg).analyze(&trace);
/// assert!(!analysis.breakdowns.is_empty());
/// # Ok::<(), bmp_uarch::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PenaltyModel {
    cfg: MachineConfig,
}

impl PenaltyModel {
    /// Creates the model for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("machine configuration must be valid");
        Self { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Runs the functional pass and analyzes every misprediction.
    pub fn analyze(&self, trace: &Trace) -> PenaltyAnalysis {
        let outcome = FunctionalOutcome::compute(trace, &self.cfg);
        self.analyze_with(trace, &outcome)
    }

    /// Analyzes a trace given an existing functional pass (lets callers
    /// reuse one pass across several analyses).
    pub fn analyze_with(&self, trace: &Trace, outcome: &FunctionalOutcome) -> PenaltyAnalysis {
        let intervals = segment(trace.len(), &outcome.events);
        let params = WindowParams::from(&self.cfg);
        let model = MachineModel::from(&self.cfg);
        let l1_hit = self.cfg.caches.l1d().hit_latency();
        let unit = LatencyTable::unit();

        // Whole-trace schedule: effective resolutions with cross-interval
        // state (window carryover, issue bandwidth, ROB fill).
        let frontend_events = frontend_events_of(&self.cfg, outcome);
        let global = schedule_trace(
            trace.ops(),
            model,
            &self.cfg.latencies,
            |i| outcome.load_latency[i],
            &frontend_events,
            false,
        );

        let mut breakdowns = Vec::new();
        for iv in &intervals {
            if iv.kind != Some(IntervalEventKind::BranchMispredict) {
                continue;
            }
            let ops = &trace.ops()[iv.start..=iv.end];
            let branch_off = ops.len() - 1;
            let real_load = |i: usize| outcome.load_latency[iv.start + i];

            let r_local = schedule_interval(ops, params, &self.cfg.latencies, real_load, false)
                .resolution(branch_off);
            let r_l1 = schedule_interval(ops, params, &self.cfg.latencies, |_| Some(l1_hit), false)
                .resolution(branch_off);
            let r_unit =
                schedule_interval(ops, params, &unit, |_| Some(1), false).resolution(branch_off);
            let r_base =
                schedule_interval(ops, params, &unit, |_| Some(1), true).resolution(branch_off);

            // Knock-outs shrink every *completion* monotonically, but the
            // resolution is a difference (done − enter) and the window
            // cap moves `enter` too, so in rare anomalies a knocked-out
            // resolution can exceed the fuller one. Cascade through a
            // running floor so the terms stay non-negative and sum
            // exactly to the local resolution.
            let r_l1 = r_l1.min(r_local);
            let r_unit = r_unit.min(r_l1);
            let r_base = r_base.min(r_unit);
            let resolution = global.resolution(iv.end);
            let b = PenaltyBreakdown {
                branch_idx: iv.end,
                interval_start: iv.start,
                interval_len: iv.len(),
                resolution,
                local_resolution: r_local,
                frontend: self.cfg.frontend_depth,
                base: r_base,
                ilp: r_unit - r_base,
                fu_latency: r_l1 - r_unit,
                short_dmiss: r_local - r_l1,
                carryover: resolution as i64 - r_local as i64,
            };
            // Conservation identities, mirrored by lint BMP202 and the
            // static-bounds checks (`crate::identities`).
            debug_assert!(
                crate::identities::breakdown_consistent(&b),
                "knock-out terms must sum to the local resolution and \
                 carryover must reconcile it with the effective resolution \
                 (BMP202): {b:?}"
            );
            breakdowns.push(b);
        }

        PenaltyAnalysis {
            intervals,
            breakdowns,
            frontend_depth: self.cfg.frontend_depth,
            instructions: trace.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::{presets, PredictorConfig};
    use bmp_workloads::{micro, spec};

    fn wrong_predictor() -> MachineConfig {
        presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap()
    }

    #[test]
    fn decomposition_sums_to_resolution() {
        let trace = spec::by_name("twolf").unwrap().generate(30_000, 5);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        assert!(!analysis.breakdowns.is_empty());
        for b in &analysis.breakdowns {
            assert_eq!(
                b.base + b.ilp + b.fu_latency + b.short_dmiss,
                b.local_resolution,
                "waterfall must be exact for branch {}",
                b.branch_idx
            );
            assert_eq!(
                b.local_resolution as i64 + b.carryover,
                b.resolution as i64,
                "carryover must reconcile local and global for branch {}",
                b.branch_idx
            );
            assert_eq!(b.penalty(), b.resolution + 5);
        }
    }

    #[test]
    fn chain_length_drives_ilp_share() {
        // always-taken branches + not-taken predictor: every branch
        // mispredicts; the chain ahead of it is pure contributor (iii).
        let model = PenaltyModel::new(wrong_predictor());
        let short = model.analyze(&micro::branch_resolution_kernel(20_000, 2, 1.0, 3));
        let long = model.analyze(&micro::branch_resolution_kernel(20_000, 16, 1.0, 3));
        let (_, ilp_s, _, _) = short.mean_contributions().unwrap();
        let (_, ilp_l, _, _) = long.mean_contributions().unwrap();
        assert!(
            ilp_l > ilp_s + 5.0,
            "16-op chains must dwarf 2-op chains: {ilp_l} vs {ilp_s}"
        );
    }

    #[test]
    fn resolution_grows_with_interval_length() {
        // Low-ILP code with rare mispredictions at varying interval
        // lengths: the bucketed curve must be non-decreasing (within
        // noise) and saturate near W/ILP-ish values.
        let mut profile = spec::by_name("twolf").unwrap();
        profile.deps.mean_distance = 2.0; // serial enough to bind
        let trace = profile.generate(60_000, 9);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        // Only well-populated buckets; the tail is statistically thin.
        let curve: Vec<_> = analysis
            .local_resolution_by_interval_length()
            .into_iter()
            .filter(|&(_, _, n)| n >= 100)
            .collect();
        assert!(curve.len() >= 3, "need several buckets, got {curve:?}");
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(
            last > first,
            "local resolution must grow with interval length: {curve:?}"
        );
        // And the growth is monotone across the populated range.
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 * 0.7,
                "ramp-up should be (near-)monotone: {curve:?}"
            );
        }
    }

    #[test]
    fn short_dmiss_share_reacts_to_working_set() {
        // Loads feeding chains: with a working set that fits L1 the (v)
        // share is ~0; blowing past L1 (but within L2) raises it.
        let model = PenaltyModel::new(wrong_predictor());
        let mut profile = spec::by_name("gzip").unwrap();
        profile.branches.easy_frac = 0.0;
        profile.branches.pattern_frac = 0.0;
        profile.memory.hot_bytes = 8 * 1024; // fits 32K L1
        profile.memory.hot_frac = 1.0;
        profile.memory.warm_frac = 0.0;
        let fits = model.analyze(&profile.generate(30_000, 4));
        profile.memory.hot_bytes = 128 * 1024; // L1-busting, L2-resident
        let spills = model.analyze(&profile.generate(30_000, 4));
        let (_, _, _, v_fits) = fits.mean_contributions().unwrap();
        let (_, _, _, v_spills) = spills.mean_contributions().unwrap();
        assert!(
            v_spills > v_fits + 0.3,
            "short-miss share must grow when L1 is blown: {v_spills} vs {v_fits}"
        );
    }

    #[test]
    fn fu_latency_share_reacts_to_latency_scaling() {
        let trace = micro::latency_kernel(20_000, bmp_uarch::OpClass::IntMul);
        // Interleave mispredictions by running a branchy trace instead:
        // use the resolution kernel but with multiply-latency ALUs via
        // scaled latencies.
        let branchy = micro::branch_resolution_kernel(20_000, 8, 1.0, 3);
        let base = PenaltyModel::new(wrong_predictor()).analyze(&branchy);
        let scaled_cfg = wrong_predictor()
            .to_builder()
            .latencies(bmp_uarch::LatencyTable::default().scaled(3.0))
            .build()
            .unwrap();
        let scaled = PenaltyModel::new(scaled_cfg).analyze(&branchy);
        let (_, _, lat_b, _) = base.mean_contributions().unwrap();
        let (_, _, lat_s, _) = scaled.mean_contributions().unwrap();
        assert!(
            lat_s > lat_b + 5.0,
            "3x latencies must inflate contributor (iv): {lat_s} vs {lat_b}"
        );
        let _ = trace;
    }

    #[test]
    fn penalty_exceeds_frontend_depth_on_real_profiles() {
        // The paper's headline: penalty > c_fe.
        for name in ["gcc", "twolf", "parser"] {
            let trace = spec::by_name(name).unwrap().generate(40_000, 2);
            let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
            let p = analysis.mean_penalty().expect("profiles mispredict");
            assert!(
                p > 5.0 + 1.0,
                "{name}: mean penalty {p} should exceed the 5-cycle frontend"
            );
        }
    }

    #[test]
    fn empty_trace_analysis() {
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&Trace::new());
        assert!(analysis.breakdowns.is_empty());
        assert!(analysis.mean_penalty().is_none());
        assert!(analysis.mean_contributions().is_none());
        assert_eq!(analysis.mispredict_mpki(), 0.0);
        assert!(analysis.resolution_by_interval_length().is_empty());
    }

    /// The shadow effect: mispredictions following a long D-miss resolve
    /// slower than those following another misprediction.
    #[test]
    fn shadow_of_long_misses_is_visible() {
        let mut profile = spec::by_name("mcf").unwrap();
        profile.memory.hot_frac = 0.6; // plenty of long misses
        let trace = profile.generate(60_000, 3);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        let rows = analysis.resolution_by_previous_event();
        let mean_of = |k: Option<IntervalEventKind>| {
            rows.iter()
                .find(|(rk, _, _)| *rk == k)
                .map(|(_, m, n)| (*m, *n))
        };
        let after_dmiss = mean_of(Some(IntervalEventKind::LongDCacheMiss));
        let after_bmiss = mean_of(Some(IntervalEventKind::BranchMispredict));
        if let (Some((d, dn)), Some((b, bn))) = (after_dmiss, after_bmiss) {
            if dn >= 30 && bn >= 30 {
                assert!(
                    d > b,
                    "post-long-miss resolutions ({d}) must exceed post-bmiss ({b})"
                );
            }
        }
    }

    #[test]
    fn histogram_and_quantiles() {
        let trace = spec::by_name("twolf").unwrap().generate(30_000, 5);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        let bounds = [2u64, 5, 10, 20, 50, 100];
        let hist = analysis.resolution_histogram(&bounds);
        assert_eq!(hist.len(), bounds.len() + 1);
        let total: u64 = hist.iter().sum();
        assert_eq!(total as usize, analysis.breakdowns.len());
        let p50 = analysis.resolution_quantile(0.5).unwrap();
        let p99 = analysis.resolution_quantile(0.99).unwrap();
        assert!(p99 >= p50);
        assert!(analysis.resolution_quantile(0.0).unwrap() <= p50);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&Trace::new());
        let _ = analysis.resolution_histogram(&[5, 3]);
    }

    #[test]
    fn mpki_is_counted() {
        let trace = micro::branch_resolution_kernel(10_000, 9, 1.0, 3);
        let analysis = PenaltyModel::new(wrong_predictor()).analyze(&trace);
        // One misprediction per 10 ops = 100 MPKI.
        let mpki = analysis.mispredict_mpki();
        assert!((90.0..=110.0).contains(&mpki), "mpki {mpki}");
    }
}
