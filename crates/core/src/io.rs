//! Crash-safe file IO shared by every writer in the workspace.
//!
//! The single primitive is [`write_atomic`]: same-directory temp file,
//! fsync, atomic rename. It started life in the bench crate (PR 4) and
//! moved here so the persistent artifact store ([`crate::store`]), the
//! run journal and the experiment harness all share one write
//! discipline; `bmp_bench::write_atomic` re-exports it unchanged.

use std::io::Write as _;
use std::path::Path;

/// Writes `bytes` to `path` crash-safely: the data goes to a temporary
/// file in the same directory, is fsynced, and is atomically renamed
/// over `path`. A crash (or an injected fault) at any point leaves
/// either the old complete file or the new complete file — never a torn
/// one.
///
/// # Errors
///
/// Returns the underlying I/O error from any step; the temporary file is
/// cleaned up on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic needs a file path"))?;
    // Same-directory temp name, unique per process so concurrent writers
    // of *different* files never collide.
    let tmp = path.with_file_name(format!(
        ".{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Flush file contents to stable storage before the rename makes
        // them visible under the real name.
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Best-effort directory fsync so the rename itself is durable; not
    // all platforms/filesystems allow opening a directory for sync.
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_and_leaves_no_temp_droppings() {
        let tmp = std::env::temp_dir().join("bmp_core_atomic_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let path = tmp.join("out.bin");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        let leftovers: Vec<_> = std::fs::read_dir(&tmp)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(leftovers.is_empty(), "no temp files survive a write");
    }

    #[test]
    fn failure_keeps_the_old_file() {
        let tmp = std::env::temp_dir().join("bmp_core_atomic_fail_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let path = tmp.join("out.bin");
        write_atomic(&path, b"precious").unwrap();
        // Renaming over a path whose parent component is a *file* must
        // fail without touching the original.
        let bad = tmp.join("out.bin").join("nested.bin");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn bare_filename_in_cwd_shape_is_rejected_or_ok() {
        // A path with no file name is an error, not a panic.
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
