//! The model's accounting identities as checkable predicates.
//!
//! The penalty decomposition is held together by a handful of exact
//! integer identities (the knock-out waterfall, the carryover
//! reconciliation, the refill law). They are enforced in three places —
//! `debug_assert!`s inside [`penalty`](crate::penalty), the BMP202 model
//! lint, and the BMP6xx static-bounds lints — and this module is the
//! single definition all three share, so the checks can never drift
//! apart.
//!
//! Every predicate returns `true` when the identity holds. They operate
//! on plain integers (or the [`PenaltyBreakdown`]/[`ModelMetrics`]
//! aggregates), so they apply equally to a single misprediction, to
//! per-workload totals from `results/metrics/*.json`, and to values
//! recomputed statically.
//!
//! # Examples
//!
//! ```
//! use bmp_core::identities;
//!
//! // penalty = resolution + frontend refill, per misprediction...
//! assert!(identities::penalty_identity(12, 5, 17));
//! // ...and refill = intervals × depth, in aggregate.
//! assert!(identities::refill_identity(3, 5, 15));
//! ```

use crate::metrics::ModelMetrics;
use crate::penalty::PenaltyBreakdown;

/// Identity 1 — the knock-out waterfall is exact:
/// `base + ilp + fu_latency + short_dmiss == local_resolution`.
///
/// Guaranteed by the running-floor cascade in
/// [`PenaltyModel::analyze_with`](crate::PenaltyModel::analyze_with);
/// holds for any sum of breakdowns too, by linearity.
pub fn knockout_sums_to_local(
    base: u64,
    ilp: u64,
    fu_latency: u64,
    short_dmiss: u64,
    local_resolution: u64,
) -> bool {
    base + ilp + fu_latency + short_dmiss == local_resolution
}

/// Identity 2 — carryover reconciles the local and effective views:
/// `local_resolution + carryover == resolution` (signed; the carryover
/// may be negative when cross-interval overlap helps the branch).
pub fn carryover_reconciles(local_resolution: u64, carryover: i64, resolution: u64) -> bool {
    local_resolution as i64 + carryover == resolution as i64
}

/// Identity 3 — the refill law: every misprediction pays exactly the
/// frontend depth in refill, so `refill == intervals × depth`.
pub fn refill_identity(intervals: u64, frontend_depth: u32, refill: u64) -> bool {
    intervals * u64::from(frontend_depth) == refill
}

/// Identity 4 — the paper's penalty definition:
/// `penalty == resolution + frontend depth`.
pub fn penalty_identity(resolution: u64, frontend_depth: u32, penalty: u64) -> bool {
    resolution + u64::from(frontend_depth) == penalty
}

/// Checks identities 1 and 2 on one per-misprediction breakdown.
pub fn breakdown_consistent(b: &PenaltyBreakdown) -> bool {
    knockout_sums_to_local(
        b.base,
        b.ilp,
        b.fu_latency,
        b.short_dmiss,
        b.local_resolution,
    ) && carryover_reconciles(b.local_resolution, b.carryover, b.resolution)
}

/// Checks every identity that [`ModelMetrics`] must satisfy given the
/// machine's frontend depth, returning a human-readable message per
/// violated identity (empty means consistent).
///
/// All `ModelMetrics` fields are exact integer totals, so the checks are
/// exact equalities — no tolerance is involved.
pub fn model_metrics_violations(m: &ModelMetrics, frontend_depth: u32) -> Vec<String> {
    let mut v = Vec::new();
    if !knockout_sums_to_local(
        m.base,
        m.ilp,
        m.fu_latency,
        m.short_dmiss,
        m.local_resolution,
    ) {
        v.push(format!(
            "knock-out terms {} + {} + {} + {} = {} != local resolution {}",
            m.base,
            m.ilp,
            m.fu_latency,
            m.short_dmiss,
            m.base + m.ilp + m.fu_latency + m.short_dmiss,
            m.local_resolution
        ));
    }
    if !carryover_reconciles(m.local_resolution, m.carryover, m.resolution) {
        v.push(format!(
            "local resolution {} + carryover {} != effective resolution {}",
            m.local_resolution, m.carryover, m.resolution
        ));
    }
    if !refill_identity(m.intervals, frontend_depth, m.refill) {
        v.push(format!(
            "refill {} != intervals {} x frontend depth {frontend_depth}",
            m.refill, m.intervals
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ModelMetrics;
    use crate::PenaltyModel;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    #[test]
    fn predicates_accept_and_reject() {
        assert!(knockout_sums_to_local(2, 3, 4, 5, 14));
        assert!(!knockout_sums_to_local(2, 3, 4, 5, 13));
        assert!(carryover_reconciles(10, -3, 7));
        assert!(carryover_reconciles(10, 3, 13));
        assert!(!carryover_reconciles(10, 3, 12));
        assert!(refill_identity(4, 5, 20));
        assert!(!refill_identity(4, 5, 21));
        assert!(penalty_identity(12, 5, 17));
        assert!(!penalty_identity(12, 5, 16));
    }

    #[test]
    fn real_analysis_satisfies_identities() {
        let trace = spec::by_name("twolf").unwrap().generate(20_000, 7);
        let cfg = presets::baseline_4wide();
        let analysis = PenaltyModel::new(cfg).analyze(&trace);
        assert!(!analysis.breakdowns.is_empty());
        for b in &analysis.breakdowns {
            assert!(breakdown_consistent(b), "breakdown {}", b.branch_idx);
        }
    }

    #[test]
    fn model_metrics_violations_reported() {
        let mut m = ModelMetrics {
            intervals: 2,
            resolution: 20,
            local_resolution: 18,
            base: 4,
            ilp: 6,
            fu_latency: 5,
            short_dmiss: 3,
            carryover: 2,
            refill: 10,
            cpi_stack: crate::cpi::CpiStack {
                instructions: 0,
                base_cycles: 0.0,
                branch_cycles: 0.0,
                icache_cycles: 0.0,
                long_dmiss_cycles: 0.0,
            },
        };
        assert!(model_metrics_violations(&m, 5).is_empty());
        m.refill = 11;
        m.carryover = 3;
        m.base = 5;
        let v = model_metrics_violations(&m, 5);
        assert_eq!(v.len(), 3);
    }
}
