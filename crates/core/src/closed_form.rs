//! The closed-form penalty estimate: interval analysis from *aggregate
//! statistics only*.
//!
//! The per-interval models in [`drain`](crate::drain) schedule actual
//! instructions. The paper's framework also supports a coarser estimate
//! that needs only two program characterizations:
//!
//! * the window-ILP curve `I_W(k)` (average IPC achievable from a window
//!   of `k` instructions — [`bmp_trace::dag::ilp_curve`]), and
//! * the distribution of interval lengths.
//!
//! For an interval of length `L` before a mispredicted branch, the window
//! backlog when the branch dispatches is approximated by the fixed point
//! of
//!
//! ```text
//! n = clamp( L · (1 − I_W(n) / D), 1, min(L, W) )
//! ```
//!
//! (instructions entered minus instructions the machine could complete at
//! the program's ILP, capped by the window), and the branch's resolution
//! is the drain of that backlog, `n / I_W(n)`. The estimate costs O(1)
//! per misprediction once the two characterizations exist — three orders
//! of magnitude cheaper than even the trace-scheduling model — and
//! experiment E-X3 quantifies what that buys and costs in accuracy.

use bmp_trace::{dag, Trace};
use bmp_uarch::MachineConfig;

use crate::functional::FunctionalOutcome;
use crate::intervals::{segment, IntervalEventKind};

/// The interpolated window-ILP characterization `I_W(k)`.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpCurve {
    /// Sample points `(k, I_W(k))`, sorted by `k`.
    points: Vec<(usize, f64)>,
}

impl IlpCurve {
    /// Characterizes `trace` at window sizes that are powers of two up to
    /// `max_k`, with execution latencies from `cfg` (loads costed at the
    /// L1 hit latency).
    ///
    /// # Panics
    ///
    /// Panics if `max_k` is zero.
    pub fn characterize(trace: &Trace, cfg: &MachineConfig, max_k: usize) -> Self {
        let l1 = u64::from(cfg.caches.l1d().hit_latency());
        Self::characterize_latencies(trace, cfg, max_k, |_| l1)
    }

    /// Characterizes `trace` with per-load latencies from a functional
    /// cache pass, capped at the short-miss latency (long misses are
    /// interval-terminating events, not steady-state latency). This is
    /// the curve the closed-form estimate should use: cache-stretched
    /// chains lower the *effective* ILP that forms the window backlog.
    pub fn characterize_with(
        trace: &Trace,
        cfg: &MachineConfig,
        outcome: &crate::functional::FunctionalOutcome,
        max_k: usize,
    ) -> Self {
        let cap = cfg.caches.short_dmiss_latency();
        Self::characterize_latencies(trace, cfg, max_k, |i| {
            u64::from(outcome.load_latency[i].unwrap_or(cap).min(cap))
        })
    }

    fn characterize_latencies<F>(
        trace: &Trace,
        cfg: &MachineConfig,
        max_k: usize,
        mut load_lat: F,
    ) -> Self
    where
        F: FnMut(usize) -> u64,
    {
        assert!(max_k > 0, "max_k must be at least 1");
        let ks: Vec<usize> =
            std::iter::successors(Some(1usize), |&k| (k < max_k).then_some((k * 2).min(max_k)))
                .collect();
        let points = dag::ilp_curve(trace.ops(), &ks, |i, op| {
            if op.class() == bmp_uarch::OpClass::Load {
                load_lat(i)
            } else {
                u64::from(cfg.latencies.latency(op.class()))
            }
        });
        Self { points }
    }

    /// Builds a curve from explicit points (must be sorted by `k`).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or unsorted.
    pub fn from_points(points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "points must be strictly sorted by k"
        );
        Self { points }
    }

    /// Interpolated `I_W(k)` (linear between samples, clamped at the
    /// ends). Always at least a small positive rate.
    pub fn at(&self, k: usize) -> f64 {
        let eps = 1e-6;
        if self.points.is_empty() {
            return eps;
        }
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if k <= first.0 {
            return first.1.max(eps);
        }
        if k >= last.0 {
            return last.1.max(eps);
        }
        for w in self.points.windows(2) {
            let (k0, i0) = w[0];
            let (k1, i1) = w[1];
            if k <= k1 {
                let t = (k - k0) as f64 / (k1 - k0) as f64;
                return (i0 + t * (i1 - i0)).max(eps);
            }
        }
        last.1.max(eps)
    }
}

/// The closed-form resolution estimate for one interval of length `L`.
///
/// See the module docs for the fixed-point backlog model.
pub fn resolution_estimate(
    interval_len: usize,
    dispatch_width: u32,
    window_size: u32,
    curve: &IlpCurve,
) -> f64 {
    let d = f64::from(dispatch_width.max(1));
    let cap = (window_size as usize).min(interval_len.max(1));
    // Fixed-point iteration on the backlog.
    let mut n = cap as f64;
    for _ in 0..32 {
        let ilp = curve.at(n.round().max(1.0) as usize);
        let fill = interval_len as f64 * (1.0 - (ilp / d).min(1.0));
        let next = fill.clamp(1.0, cap as f64);
        if (next - n).abs() < 0.25 {
            n = next;
            break;
        }
        n = next;
    }
    let ilp = curve.at(n.round().max(1.0) as usize);
    (n / ilp).max(1.0)
}

/// Aggregate closed-form estimate for a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedFormEstimate {
    /// Number of mispredictions found by the functional pass.
    pub mispredictions: usize,
    /// Estimated mean resolution time.
    pub mean_resolution: f64,
    /// Estimated mean penalty (resolution + frontend refill).
    pub mean_penalty: f64,
}

/// Runs the closed-form model on a trace: functional pass for the event
/// stream, `I_W(k)` characterization, then the O(1)-per-event estimate.
pub fn estimate(trace: &Trace, cfg: &MachineConfig) -> ClosedFormEstimate {
    let outcome = FunctionalOutcome::compute(trace, cfg);
    estimate_with(trace, cfg, &outcome)
}

/// Closed-form estimate reusing an existing functional pass.
pub fn estimate_with(
    trace: &Trace,
    cfg: &MachineConfig,
    outcome: &FunctionalOutcome,
) -> ClosedFormEstimate {
    let curve = IlpCurve::characterize_with(trace, cfg, outcome, cfg.window_size as usize);
    let intervals = segment(trace.len(), &outcome.events);
    let mut n = 0usize;
    let mut sum = 0.0;
    for iv in &intervals {
        if iv.kind != Some(IntervalEventKind::BranchMispredict) {
            continue;
        }
        n += 1;
        sum += resolution_estimate(iv.len(), cfg.dispatch_width, cfg.window_size, &curve);
    }
    let mean_resolution = if n == 0 { 0.0 } else { sum / n as f64 };
    ClosedFormEstimate {
        mispredictions: n,
        mean_resolution,
        mean_penalty: mean_resolution + f64::from(cfg.frontend_depth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::{presets, PredictorConfig};
    use bmp_workloads::{micro, spec};

    fn flat_curve(ilp: f64) -> IlpCurve {
        IlpCurve::from_points(vec![(1, ilp), (64, ilp)])
    }

    #[test]
    fn curve_interpolates_and_clamps() {
        let c = IlpCurve::from_points(vec![(1, 1.0), (16, 2.5), (64, 4.0)]);
        assert!((c.at(1) - 1.0).abs() < 1e-9);
        assert!((c.at(64) - 4.0).abs() < 1e-9);
        assert!((c.at(128) - 4.0).abs() < 1e-9, "clamped above");
        let mid = c.at(8);
        assert!(mid > 1.0 && mid < 2.5, "interpolated: {mid}");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn curve_rejects_unsorted_points() {
        let _ = IlpCurve::from_points(vec![(8, 1.0), (2, 2.0)]);
    }

    #[test]
    fn high_ilp_means_tiny_resolution() {
        // ILP above dispatch width: no backlog forms.
        let r = resolution_estimate(1000, 4, 64, &flat_curve(8.0));
        assert!(r <= 2.0, "no backlog at high ILP, got {r}");
    }

    #[test]
    fn serial_code_saturates_at_window_drain() {
        // ILP 1 against width 4: long intervals fill the window; drain
        // is ~W/I = 64 cycles.
        let r = resolution_estimate(10_000, 4, 64, &flat_curve(1.0));
        assert!(
            (50.0..=70.0).contains(&r),
            "saturated drain should be near W, got {r}"
        );
    }

    #[test]
    fn resolution_grows_with_interval_length() {
        let curve = flat_curve(2.0);
        let mut last = 0.0;
        for len in [2usize, 8, 32, 128, 512] {
            let r = resolution_estimate(len, 4, 64, &curve);
            assert!(r >= last, "must be monotone in L: {r} after {last}");
            last = r;
        }
    }

    #[test]
    fn characterized_curve_is_monotone_in_k() {
        let trace = spec::by_name("gcc").unwrap().generate(20_000, 3);
        let cfg = presets::baseline_4wide();
        let curve = IlpCurve::characterize(&trace, &cfg, 64);
        let a = curve.at(2);
        let b = curve.at(64);
        assert!(b >= a, "bigger windows expose more ILP: {a} vs {b}");
    }

    #[test]
    fn estimate_lands_in_the_simulators_ballpark() {
        // The closed form is coarse; demand order-of-magnitude agreement
        // on a controlled kernel where the answer is known.
        let cfg = presets::baseline_4wide()
            .to_builder()
            .predictor(PredictorConfig::AlwaysNotTaken)
            .build()
            .unwrap();
        let trace = micro::branch_resolution_kernel(20_000, 8, 1.0, 3);
        let est = estimate(&trace, &cfg);
        assert!(est.mispredictions > 1000);
        assert!(
            (2.0..=40.0).contains(&est.mean_resolution),
            "estimate {} should be near the ~8-cycle truth",
            est.mean_resolution
        );
        assert!(est.mean_penalty > est.mean_resolution);
    }

    #[test]
    fn empty_trace_estimate() {
        let est = estimate(&Trace::new(), &presets::baseline_4wide());
        assert_eq!(est.mispredictions, 0);
        assert_eq!(est.mean_resolution, 0.0);
    }
}
