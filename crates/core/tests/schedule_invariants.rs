//! Property tests on the whole-trace schedule: the structural invariants
//! every valid schedule must satisfy, checked on random workloads and
//! machine shapes.

use bmp_core::drain::{schedule_trace, FrontendEvent, MachineModel};
use bmp_core::{FunctionalOutcome, PenaltyModel};
use bmp_uarch::MachineConfigBuilder;
use bmp_workloads::WorkloadProfile;
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = bmp_uarch::MachineConfig> {
    (
        prop::sample::select(vec![2u32, 4, 8]),
        prop::sample::select(vec![2u32, 5, 12]),
        prop::sample::select(vec![16u32, 64, 128]),
    )
        .prop_map(|(width, depth, window)| {
            MachineConfigBuilder::new()
                .width(width)
                .frontend_depth(depth)
                .window_size(window)
                .rob_size(window * 2)
                .build()
                .expect("valid machine")
        })
}

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (2.0f64..8.0, 4.0f64..12.0, 0.2f64..0.9).prop_map(|(dep, block, easy)| {
        let mut p = WorkloadProfile::default();
        p.deps.mean_distance = dep;
        p.branches.avg_block_size = block;
        p.branches.easy_frac = easy;
        p.branches.pattern_frac = (1.0 - easy) * 0.3;
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Schedule sanity on arbitrary workloads and machines: entry is
    /// non-decreasing (program order enters in order), issue never
    /// precedes entry, completion strictly follows issue, and per-cycle
    /// issue never exceeds the issue width.
    #[test]
    fn schedule_invariants_hold(
        cfg in arb_machine(),
        profile in arb_profile(),
        seed in 0u64..50,
    ) {
        let trace = profile.generate(2_000, seed);
        let outcome = FunctionalOutcome::compute(&trace, &cfg);
        let events: Vec<FrontendEvent> = outcome
            .events
            .iter()
            .filter_map(|e| match e.kind {
                bmp_core::IntervalEventKind::BranchMispredict => {
                    Some(FrontendEvent::Mispredict { pos: e.pos })
                }
                _ => None,
            })
            .collect();
        let s = schedule_trace(
            trace.ops(),
            MachineModel::from(&cfg),
            &cfg.latencies,
            |i| outcome.load_latency[i],
            &events,
            false,
        );
        let mut per_cycle = std::collections::HashMap::new();
        for i in 0..trace.len() {
            prop_assert!(s.issue[i] >= s.enter[i], "op {i} issued before entering");
            prop_assert!(s.done[i] > s.issue[i], "op {i} completed instantly");
            if i > 0 {
                prop_assert!(
                    s.enter[i] >= s.enter[i - 1],
                    "entry must follow program order"
                );
            }
            *per_cycle.entry(s.issue[i]).or_insert(0u32) += 1;
        }
        for (&cycle, &n) in &per_cycle {
            prop_assert!(
                n <= cfg.issue_width,
                "cycle {cycle} issued {n} ops on a {}-wide machine",
                cfg.issue_width
            );
        }
    }

    /// Latency monotonicity: doubling every latency can only delay
    /// completions.
    #[test]
    fn slower_latencies_never_speed_up(
        profile in arb_profile(),
        seed in 0u64..50,
    ) {
        let cfg = MachineConfigBuilder::new().build().expect("baseline");
        let trace = profile.generate(1_000, seed);
        let outcome = FunctionalOutcome::compute(&trace, &cfg);
        let model = MachineModel::from(&cfg);
        let fast = schedule_trace(
            trace.ops(), model, &cfg.latencies, |i| outcome.load_latency[i], &[], false,
        );
        let slow_lat = cfg.latencies.scaled(2.0);
        let slow = schedule_trace(
            trace.ops(), model, &slow_lat, |i| outcome.load_latency[i], &[], false,
        );
        prop_assert!(slow.total_cycles() >= fast.total_cycles());
    }

    /// The penalty model is deterministic and its aggregates are finite.
    #[test]
    fn analysis_is_deterministic_and_finite(
        cfg in arb_machine(),
        profile in arb_profile(),
        seed in 0u64..50,
    ) {
        let trace = profile.generate(1_500, seed);
        let model = PenaltyModel::new(cfg);
        let a = model.analyze(&trace);
        let b = model.analyze(&trace);
        prop_assert_eq!(&a.breakdowns, &b.breakdowns);
        if let Some(p) = a.mean_penalty() {
            prop_assert!(p.is_finite() && p >= 1.0);
        }
    }

    /// Mispredict barriers enforce their defining constraint: the op
    /// after a mispredicted branch enters no earlier than the branch's
    /// completion plus the frontend refill, and ops fetched before the
    /// first misprediction are untouched.
    ///
    /// (Note: *per-op* monotonicity versus a barrier-free schedule is NOT
    /// an invariant — delaying older ops shifts issue-slot occupancy and
    /// can legally pull a younger op earlier, the classic scheduling
    /// anomaly.)
    #[test]
    fn barriers_enforce_refill(
        profile in arb_profile(),
        seed in 0u64..50,
    ) {
        let cfg = MachineConfigBuilder::new().build().expect("baseline");
        let trace = profile.generate(1_000, seed);
        let outcome = FunctionalOutcome::compute(&trace, &cfg);
        let model = MachineModel::from(&cfg);
        let mispredicts = outcome.mispredict_positions();
        let events: Vec<FrontendEvent> = mispredicts
            .iter()
            .map(|&pos| FrontendEvent::Mispredict { pos })
            .collect();
        let without = schedule_trace(
            trace.ops(), model, &cfg.latencies, |i| outcome.load_latency[i], &[], false,
        );
        let with = schedule_trace(
            trace.ops(), model, &cfg.latencies, |i| outcome.load_latency[i], &events, false,
        );
        let fe = u64::from(cfg.frontend_depth);
        for &pos in &mispredicts {
            if pos + 1 < trace.len() {
                prop_assert!(
                    with.enter[pos + 1] >= with.done[pos] + fe,
                    "op {} entered before the refill of the mispredict at {pos}",
                    pos + 1
                );
            }
        }
        // Prefix before the first mispredict is untouched.
        if let Some(&first) = mispredicts.first() {
            for i in 0..=first {
                prop_assert_eq!(with.enter[i], without.enter[i]);
                prop_assert_eq!(with.done[i], without.done[i]);
            }
        }
        // Aggregate sanity: barriers cannot make the whole run faster.
        prop_assert!(with.total_cycles() >= without.total_cycles());
    }
}
