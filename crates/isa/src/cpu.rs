//! The RV32IM functional executor.
//!
//! A sequential, syscall-free interpreter: fetch a word from
//! [`Memory`], decode it, apply the architectural semantics, repeat.
//! There is no privilege, no CSRs, no traps — an instruction outside
//! the supported subset is a hard [`ExecError`], because the only
//! programs this executor runs are the crate's own assembled kernels
//! and any decode failure is a bug, not a workload property.
//!
//! Halting uses a sentinel return address: the harness seeds `ra` with
//! [`HALT_ADDR`] before entry, the kernel finishes with `ret`, and the
//! run loop stops when the next fetch would land on the sentinel. This
//! keeps the ISA free of an artificial "halt" instruction and makes the
//! final trace op an ordinary `Return` branch.

use crate::decode::{decode, Inst, Op};
use crate::mem::Memory;

/// Sentinel "caller" address; fetching from it terminates execution.
/// Kernels must never place code or data on its page.
pub const HALT_ADDR: u32 = 0xdead_0000;

/// Execution fault. The executor is total over the assembled kernel
/// suite, so observing one of these means the program or loader is
/// corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The fetched word at `pc` is not a supported RV32IM instruction.
    IllegalInstruction {
        /// Faulting program counter.
        pc: u32,
        /// The unrecognised instruction word.
        word: u32,
    },
    /// The program counter lost 4-byte alignment (a `jalr` to an odd
    /// target, modulo the spec's bit-0 clearing, or a corrupt jump).
    MisalignedPc {
        /// The misaligned program counter.
        pc: u32,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            ExecError::MisalignedPc { pc } => write!(f, "misaligned pc {pc:#010x}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The observable effects of executing one instruction — everything
/// the trace recorder needs, without re-deriving semantics.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// Program counter of the executed instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Architectural next program counter.
    pub next_pc: u32,
    /// For conditional branches, whether the branch was taken.
    pub taken: bool,
    /// For loads and stores, the effective byte address.
    pub mem_addr: Option<u32>,
}

/// Architectural state: 32 integer registers, a program counter, and
/// sparse memory.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// The integer register file (`x0` is kept at zero by the write
    /// path).
    pub regs: [u32; 32],
    /// The program counter.
    pub pc: u32,
    /// Memory, holding both code and data.
    pub mem: Memory,
}

impl Cpu {
    /// A CPU with zeroed registers, `pc` at `entry`, and `ra` seeded
    /// with [`HALT_ADDR`] so a top-level `ret` terminates the run.
    pub fn new(entry: u32, mem: Memory) -> Self {
        let mut regs = [0u32; 32];
        regs[1] = HALT_ADDR;
        Self {
            regs,
            pc: entry,
            mem,
        }
    }

    #[inline]
    fn read(&self, r: u32) -> u32 {
        self.regs[r as usize]
    }

    #[inline]
    fn write(&mut self, r: u32, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Returns `true` once the next fetch would hit [`HALT_ADDR`].
    pub fn halted(&self) -> bool {
        self.pc == HALT_ADDR
    }

    /// Executes one instruction and reports its effects.
    ///
    /// # Errors
    ///
    /// [`ExecError::IllegalInstruction`] on an undecodable fetch,
    /// [`ExecError::MisalignedPc`] if `pc` is not 4-aligned.
    pub fn step(&mut self) -> Result<Step, ExecError> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Err(ExecError::MisalignedPc { pc });
        }
        let word = self.mem.load_u32(pc);
        let inst = decode(word).ok_or(ExecError::IllegalInstruction { pc, word })?;

        let a = self.read(inst.rs1);
        let b = self.read(inst.rs2);
        let imm = inst.imm;
        let mut next_pc = pc.wrapping_add(4);
        let mut taken = false;
        let mut mem_addr = None;

        use Op::*;
        match inst.op {
            Lui => self.write(inst.rd, imm as u32),
            Auipc => self.write(inst.rd, pc.wrapping_add(imm as u32)),
            Jal => {
                self.write(inst.rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u32);
                taken = true;
            }
            Jalr => {
                let target = a.wrapping_add(imm as u32) & !1;
                self.write(inst.rd, pc.wrapping_add(4));
                next_pc = target;
                taken = true;
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i32) < (b as i32),
                    Bge => (a as i32) >= (b as i32),
                    Bltu => a < b,
                    _ => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Lb | Lh | Lw | Lbu | Lhu => {
                let addr = a.wrapping_add(imm as u32);
                mem_addr = Some(addr);
                let v = match inst.op {
                    Lb => self.mem.load_u8(addr) as i8 as i32 as u32,
                    Lbu => self.mem.load_u8(addr) as u32,
                    Lh => self.mem.load_u16(addr) as i16 as i32 as u32,
                    Lhu => self.mem.load_u16(addr) as u32,
                    _ => self.mem.load_u32(addr),
                };
                self.write(inst.rd, v);
            }
            Sb | Sh | Sw => {
                let addr = a.wrapping_add(imm as u32);
                mem_addr = Some(addr);
                match inst.op {
                    Sb => self.mem.store_u8(addr, b as u8),
                    Sh => self.mem.store_u16(addr, b as u16),
                    _ => self.mem.store_u32(addr, b),
                }
            }
            Addi => self.write(inst.rd, a.wrapping_add(imm as u32)),
            Slti => self.write(inst.rd, ((a as i32) < imm) as u32),
            Sltiu => self.write(inst.rd, (a < imm as u32) as u32),
            Xori => self.write(inst.rd, a ^ imm as u32),
            Ori => self.write(inst.rd, a | imm as u32),
            Andi => self.write(inst.rd, a & imm as u32),
            Slli => self.write(inst.rd, a << (imm as u32 & 0x1f)),
            Srli => self.write(inst.rd, a >> (imm as u32 & 0x1f)),
            Srai => self.write(inst.rd, ((a as i32) >> (imm as u32 & 0x1f)) as u32),
            Add => self.write(inst.rd, a.wrapping_add(b)),
            Sub => self.write(inst.rd, a.wrapping_sub(b)),
            Sll => self.write(inst.rd, a << (b & 0x1f)),
            Slt => self.write(inst.rd, ((a as i32) < (b as i32)) as u32),
            Sltu => self.write(inst.rd, (a < b) as u32),
            Xor => self.write(inst.rd, a ^ b),
            Srl => self.write(inst.rd, a >> (b & 0x1f)),
            Sra => self.write(inst.rd, ((a as i32) >> (b & 0x1f)) as u32),
            Or => self.write(inst.rd, a | b),
            And => self.write(inst.rd, a & b),
            Mul => self.write(inst.rd, a.wrapping_mul(b)),
            Mulh => self.write(
                inst.rd,
                ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
            ),
            Mulhsu => self.write(
                inst.rd,
                ((a as i32 as i64).wrapping_mul(b as i64) >> 32) as u32,
            ),
            Mulhu => self.write(inst.rd, ((a as u64 * b as u64) >> 32) as u32),
            // RISC-V division never traps: x/0 = -1 (all ones), x%0 = x,
            // and INT_MIN / -1 wraps to INT_MIN with remainder 0.
            Div => {
                let v = if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                };
                self.write(inst.rd, v);
            }
            Divu => self.write(inst.rd, a.checked_div(b).unwrap_or(u32::MAX)),
            Rem => {
                let v = if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                };
                self.write(inst.rd, v);
            }
            Remu => self.write(inst.rd, if b == 0 { a } else { a % b }),
        }

        self.pc = next_pc;
        Ok(Step {
            pc,
            inst,
            next_pc,
            taken,
            mem_addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg, Asm};

    fn run_words(words: &[u32], steps: usize) -> Cpu {
        let mut mem = Memory::new();
        mem.write_words(0x1000, words);
        let mut cpu = Cpu::new(0x1000, mem);
        for _ in 0..steps {
            if cpu.halted() {
                break;
            }
            cpu.step().expect("kernel step");
        }
        cpu
    }

    #[test]
    fn halts_via_seeded_return_address() {
        let mut a = Asm::new(0x1000);
        a.addi(reg::A0, reg::ZERO, 7);
        a.ret();
        let cpu = run_words(&a.finish(), 10);
        assert!(cpu.halted());
        assert_eq!(cpu.regs[reg::A0 as usize], 7);
    }

    #[test]
    fn x0_stays_zero() {
        let mut a = Asm::new(0x1000);
        a.addi(reg::ZERO, reg::ZERO, 123);
        a.ret();
        let cpu = run_words(&a.finish(), 10);
        assert_eq!(cpu.regs[0], 0);
    }

    #[test]
    fn division_edge_cases_match_spec() {
        let mut a = Asm::new(0x1000);
        a.li(reg::T0, 7);
        a.li(reg::T1, 0);
        a.div(reg::A0, reg::T0, reg::T1); // 7 / 0 = -1
        a.rem(reg::A1, reg::T0, reg::T1); // 7 % 0 = 7
        a.li(reg::T2, i32::MIN);
        a.li(reg::T3, -1);
        a.div(reg::A2, reg::T2, reg::T3); // overflow -> INT_MIN
        a.rem(reg::A3, reg::T2, reg::T3); // overflow -> 0
        a.ret();
        let cpu = run_words(&a.finish(), 32);
        assert!(cpu.halted());
        assert_eq!(cpu.regs[reg::A0 as usize], u32::MAX);
        assert_eq!(cpu.regs[reg::A1 as usize], 7);
        assert_eq!(cpu.regs[reg::A2 as usize], i32::MIN as u32);
        assert_eq!(cpu.regs[reg::A3 as usize], 0);
    }

    #[test]
    fn illegal_instruction_faults() {
        let cpu_err = {
            let mut mem = Memory::new();
            mem.write_words(0x1000, &[0xffff_ffff]);
            Cpu::new(0x1000, mem).step()
        };
        assert!(matches!(
            cpu_err,
            Err(ExecError::IllegalInstruction { pc: 0x1000, .. })
        ));
    }

    #[test]
    fn error_display_formats() {
        let e = ExecError::IllegalInstruction { pc: 0x10, word: 0 };
        assert!(e.to_string().contains("0x00000010"));
        let m = ExecError::MisalignedPc { pc: 0x11 };
        assert!(m.to_string().contains("misaligned"));
    }
}
