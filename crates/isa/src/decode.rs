//! RV32IM instruction decoder.
//!
//! Decodes a 32-bit instruction word into a flat [`Inst`] record: an
//! operation tag plus the three register fields and the sign-extended
//! immediate. A flat record (rather than one enum variant per format)
//! keeps the executor's dispatch a single `match` on [`Op`] and makes
//! the per-op source-register query ([`Inst::src_regs`]) and
//! op-class mapping ([`Inst::op_class`]) table-like and auditable.

use bmp_uarch::OpClass;

/// The decoded operation. Covers exactly the RV32IM subset the
/// assembler ([`crate::asm`]) can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the RISC-V mnemonics
pub enum Op {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// A decoded instruction: operation plus raw register/immediate fields.
///
/// Fields that a given operation does not use are present but
/// meaningless (e.g. `rs2` of an I-type op); [`Inst::src_regs`] is the
/// authoritative statement of which registers an operation reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register field.
    pub rd: u32,
    /// First source register field.
    pub rs1: u32,
    /// Second source register field (shift amount for `slli`/`srli`/`srai`).
    pub rs2: u32,
    /// Sign-extended immediate (U-type immediates are pre-shifted into
    /// bits 31:12).
    pub imm: i32,
}

impl Inst {
    /// The architectural registers this instruction *reads*, in
    /// `(rs1, rs2)` order; `None` for slots the operation does not use.
    ///
    /// This is the source of truth for producer-distance tracking in
    /// [`crate::emit`]: a register the hardware would not read must not
    /// induce a dependence edge in the emitted trace.
    pub fn src_regs(&self) -> [Option<u32>; 2] {
        use Op::*;
        match self.op {
            // No register sources.
            Lui | Auipc | Jal => [None, None],
            // rs1 only: immediates, loads, jalr, shifts-by-immediate.
            Jalr | Lb | Lh | Lw | Lbu | Lhu | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli
            | Srli | Srai => [Some(self.rs1), None],
            // rs1 + rs2: register-register ALU, branches, stores
            // (base + data).
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Sb | Sh | Sw | Add | Sub | Sll | Slt | Sltu
            | Xor | Srl | Sra | Or | And | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem
            | Remu => [Some(self.rs1), Some(self.rs2)],
        }
    }

    /// The register this instruction *writes*, or `None` (stores,
    /// branches, and any op with `rd = x0`).
    pub fn dst_reg(&self) -> Option<u32> {
        use Op::*;
        match self.op {
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Sb | Sh | Sw => None,
            _ if self.rd == 0 => None,
            _ => Some(self.rd),
        }
    }

    /// Maps the operation onto the simulator's functional-unit class.
    ///
    /// RV32IM has no floating-point, so the `Fp*` classes never occur in
    /// executed traces; multiplies and divides exercise the long-latency
    /// integer units.
    pub fn op_class(&self) -> OpClass {
        use Op::*;
        match self.op {
            Mul | Mulh | Mulhsu | Mulhu => OpClass::IntMul,
            Div | Divu | Rem | Remu => OpClass::IntDiv,
            Lb | Lh | Lw | Lbu | Lhu => OpClass::Load,
            Sb | Sh | Sw => OpClass::Store,
            Jal | Jalr | Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::Branch,
            _ => OpClass::IntAlu,
        }
    }

    /// Returns `true` for any control-transfer operation.
    pub fn is_control(&self) -> bool {
        matches!(self.op_class(), OpClass::Branch)
    }
}

/// I-type immediate: bits 31:20, sign-extended.
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// S-type immediate: bits 31:25 ++ 11:7, sign-extended.
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | ((w >> 7) & 0x1f) as i32
}

/// B-type immediate: the scrambled 13-bit branch offset, sign-extended.
fn imm_b(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3f) << 5)
        | (((w >> 8) & 0xf) << 1);
    ((imm as i32) << 19) >> 19
}

/// J-type immediate: the scrambled 21-bit jump offset, sign-extended.
fn imm_j(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 20)
        | (((w >> 12) & 0xff) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3ff) << 1);
    ((imm as i32) << 11) >> 11
}

/// Decodes one instruction word; `None` if it is not in the supported
/// RV32IM subset.
pub fn decode(word: u32) -> Option<Inst> {
    let opcode = word & 0x7f;
    let rd = (word >> 7) & 0x1f;
    let funct3 = (word >> 12) & 0x7;
    let rs1 = (word >> 15) & 0x1f;
    let rs2 = (word >> 20) & 0x1f;
    let funct7 = word >> 25;

    let mk = |op: Op, imm: i32| Inst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    };

    Some(match opcode {
        0x37 => mk(Op::Lui, (word & 0xffff_f000) as i32),
        0x17 => mk(Op::Auipc, (word & 0xffff_f000) as i32),
        0x6f => mk(Op::Jal, imm_j(word)),
        0x67 if funct3 == 0 => mk(Op::Jalr, imm_i(word)),
        0x63 => {
            let op = match funct3 {
                0x0 => Op::Beq,
                0x1 => Op::Bne,
                0x4 => Op::Blt,
                0x5 => Op::Bge,
                0x6 => Op::Bltu,
                0x7 => Op::Bgeu,
                _ => return None,
            };
            mk(op, imm_b(word))
        }
        0x03 => {
            let op = match funct3 {
                0x0 => Op::Lb,
                0x1 => Op::Lh,
                0x2 => Op::Lw,
                0x4 => Op::Lbu,
                0x5 => Op::Lhu,
                _ => return None,
            };
            mk(op, imm_i(word))
        }
        0x23 => {
            let op = match funct3 {
                0x0 => Op::Sb,
                0x1 => Op::Sh,
                0x2 => Op::Sw,
                _ => return None,
            };
            mk(op, imm_s(word))
        }
        0x13 => match funct3 {
            0x0 => mk(Op::Addi, imm_i(word)),
            0x2 => mk(Op::Slti, imm_i(word)),
            0x3 => mk(Op::Sltiu, imm_i(word)),
            0x4 => mk(Op::Xori, imm_i(word)),
            0x6 => mk(Op::Ori, imm_i(word)),
            0x7 => mk(Op::Andi, imm_i(word)),
            0x1 if funct7 == 0x00 => mk(Op::Slli, rs2 as i32),
            0x5 if funct7 == 0x00 => mk(Op::Srli, rs2 as i32),
            0x5 if funct7 == 0x20 => mk(Op::Srai, rs2 as i32),
            _ => return None,
        },
        0x33 => {
            let op = match (funct7, funct3) {
                (0x00, 0x0) => Op::Add,
                (0x20, 0x0) => Op::Sub,
                (0x00, 0x1) => Op::Sll,
                (0x00, 0x2) => Op::Slt,
                (0x00, 0x3) => Op::Sltu,
                (0x00, 0x4) => Op::Xor,
                (0x00, 0x5) => Op::Srl,
                (0x20, 0x5) => Op::Sra,
                (0x00, 0x6) => Op::Or,
                (0x00, 0x7) => Op::And,
                (0x01, 0x0) => Op::Mul,
                (0x01, 0x1) => Op::Mulh,
                (0x01, 0x2) => Op::Mulhsu,
                (0x01, 0x3) => Op::Mulhu,
                (0x01, 0x4) => Op::Div,
                (0x01, 0x5) => Op::Divu,
                (0x01, 0x6) => Op::Rem,
                (0x01, 0x7) => Op::Remu,
                _ => return None,
            };
            mk(op, 0)
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn roundtrip_through_assembler() {
        let mut a = Asm::new(0);
        a.add(3, 1, 2);
        a.sub(4, 3, 1);
        a.mul(5, 3, 4);
        a.div(6, 5, 3);
        a.addi(7, 6, -12);
        a.slli(8, 7, 3);
        a.srai(9, 8, 2);
        a.lw(10, 16, 2);
        a.sb(10, -4, 2);
        a.lui(11, 0xabcde);
        a.auipc(12, 1);
        a.jalr(1, 0, 5);
        for (word, (op, imm)) in a.finish().into_iter().zip([
            (Op::Add, 0),
            (Op::Sub, 0),
            (Op::Mul, 0),
            (Op::Div, 0),
            (Op::Addi, -12),
            (Op::Slli, 3),
            (Op::Srai, 2),
            (Op::Lw, 16),
            (Op::Sb, -4),
            (Op::Lui, 0xabcd_e000_u32 as i32),
            (Op::Auipc, 0x1000),
            (Op::Jalr, 0),
        ]) {
            let inst = decode(word).expect("assembled word must decode");
            assert_eq!(inst.op, op, "word {word:#010x}");
            assert_eq!(inst.imm, imm, "word {word:#010x}");
        }
    }

    #[test]
    fn branch_and_jump_offsets_sign_extend() {
        let mut a = Asm::new(0x1000);
        a.label("top");
        a.addi(5, 5, 1);
        a.bne(5, 6, "top"); // offset -4
        a.j("top"); // offset -8
        let w = a.finish();
        assert_eq!(decode(w[1]).unwrap().imm, -4);
        assert_eq!(decode(w[2]).unwrap().imm, -8);
    }

    #[test]
    fn unsupported_words_decode_to_none() {
        assert!(decode(0).is_none()); // all-zero is reserved
        assert!(decode(0x0000_0073).is_none()); // ecall: deliberately outside the subset
        assert!(decode(0xffff_ffff).is_none());
    }

    #[test]
    fn src_and_dst_registers_follow_format() {
        let mut a = Asm::new(0);
        a.add(3, 1, 2);
        a.lw(4, 0, 3);
        a.sw(4, 0, 3);
        a.beq(4, 3, "end");
        a.jal(1, "end");
        a.label("end");
        a.lui(5, 1);
        let w = a.finish();
        let d = |i: usize| decode(w[i]).unwrap();
        assert_eq!(d(0).src_regs(), [Some(1), Some(2)]);
        assert_eq!(d(0).dst_reg(), Some(3));
        assert_eq!(d(1).src_regs(), [Some(3), None]);
        assert_eq!(d(2).src_regs(), [Some(3), Some(4)]);
        assert_eq!(d(2).dst_reg(), None);
        assert_eq!(d(3).src_regs(), [Some(4), Some(3)]);
        assert_eq!(d(3).dst_reg(), None);
        assert_eq!(d(4).src_regs(), [None, None]);
        assert_eq!(d(4).dst_reg(), Some(1));
        assert_eq!(d(5).src_regs(), [None, None]);
    }

    #[test]
    fn op_class_mapping() {
        use bmp_uarch::OpClass;
        let mut a = Asm::new(0);
        a.add(1, 2, 3);
        a.mul(1, 2, 3);
        a.rem(1, 2, 3);
        a.lw(1, 0, 2);
        a.sw(1, 0, 2);
        a.beq(1, 2, "e");
        a.label("e");
        a.ret();
        let w = a.finish();
        let classes: Vec<_> = w
            .iter()
            .map(|&word| decode(word).unwrap().op_class())
            .collect();
        assert_eq!(
            classes,
            vec![
                OpClass::IntAlu,
                OpClass::IntMul,
                OpClass::IntDiv,
                OpClass::Load,
                OpClass::Store,
                OpClass::Branch,
                OpClass::Branch,
            ]
        );
    }
}
