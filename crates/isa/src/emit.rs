//! Executed-instruction → trace-op conversion.
//!
//! The recorder turns each [`Step`] reported by the executor into a
//! [`MicroOp`] in the repo's trace format, tracking register producers
//! to recover the *dependence distances* the format encodes. The
//! contract matches the synthetic workloads exactly:
//!
//! - distances are register (true) dependences only — memory-carried
//!   dependences are not edges, just real addresses the cache models
//!   see;
//! - `x0` never produces or consumes a dependence;
//! - a branch's architected `target` is always its *taken* target,
//!   with the outcome carried separately, which is what the direction
//!   predictors and the BMP105 control-flow-continuity lint expect.

use bmp_trace::{BranchKind, MicroOp, Trace, TraceBuilder};

use crate::cpu::Step;
use crate::decode::Op;

/// RISC-V link registers: `ra` (x1) and the alternate `t0` (x5). A
/// jump writing one of these is a call by the spec's return-address
/// stack hinting convention; a `jalr` reading one (and not re-linking)
/// is a return.
fn is_link(r: u32) -> bool {
    r == 1 || r == 5
}

/// Accumulates executed instructions into a [`Trace`], recovering
/// producer distances from the architectural register file's write
/// history.
#[derive(Debug)]
pub struct TraceRecorder {
    builder: TraceBuilder,
    /// Trace index of the most recent writer of each register.
    last_write: [Option<usize>; 32],
}

impl TraceRecorder {
    /// An empty recorder, pre-sized for `capacity` ops.
    pub fn new(capacity: usize) -> Self {
        Self {
            builder: TraceBuilder::with_capacity(capacity),
            last_write: [None; 32],
        }
    }

    /// Number of ops recorded so far.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.builder.is_empty()
    }

    /// Converts one executed instruction and appends it to the trace.
    pub fn record(&mut self, step: &Step) {
        let index = self.builder.len();
        let inst = &step.inst;
        let pc = step.pc as u64;

        // Producer distances from the register write history. `x0` is
        // hard-wired and registers never written yet have no producer.
        let mut srcs = [None, None];
        for (slot, reg) in inst.src_regs().into_iter().enumerate() {
            if let Some(r) = reg {
                if r != 0 {
                    if let Some(writer) = self.last_write[r as usize] {
                        srcs[slot] = Some((index - writer) as u32);
                    }
                }
            }
        }

        let op = match inst.op_class() {
            c if c.is_branch() => {
                let (kind, taken, target) = match inst.op {
                    Op::Jal => {
                        let kind = if is_link(inst.rd) {
                            BranchKind::Call
                        } else {
                            BranchKind::Jump
                        };
                        (kind, true, step.next_pc as u64)
                    }
                    Op::Jalr => {
                        let kind = if is_link(inst.rd) {
                            BranchKind::Call
                        } else if is_link(inst.rs1) {
                            BranchKind::Return
                        } else {
                            BranchKind::IndirectJump
                        };
                        (kind, true, step.next_pc as u64)
                    }
                    // Conditional: the architected target is the taken
                    // target even when the branch falls through.
                    _ => {
                        let taken_target = step.pc.wrapping_add(inst.imm as u32) as u64;
                        (BranchKind::Conditional, step.taken, taken_target)
                    }
                };
                MicroOp::branch(pc, kind, taken, target, srcs)
            }
            bmp_uarch::OpClass::Load => {
                let addr = step.mem_addr.expect("load step carries an address") as u64;
                MicroOp::load(pc, addr, srcs)
            }
            bmp_uarch::OpClass::Store => {
                let addr = step.mem_addr.expect("store step carries an address") as u64;
                MicroOp::store(pc, addr, srcs)
            }
            class => MicroOp::alu(pc, class, srcs),
        };

        self.builder
            .push(op)
            .expect("recorded distances stay within the trace");

        if let Some(rd) = inst.dst_reg() {
            self.last_write[rd as usize] = Some(index);
        }
    }

    /// Finishes and returns the trace.
    pub fn finish(self) -> Trace {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg, Asm};
    use crate::cpu::Cpu;
    use crate::mem::Memory;

    fn trace_of(words: &[u32], max_ops: usize) -> Trace {
        let mut mem = Memory::new();
        mem.write_words(0x1000, words);
        let mut cpu = Cpu::new(0x1000, mem);
        let mut rec = TraceRecorder::new(max_ops);
        while !cpu.halted() && rec.len() < max_ops {
            let step = cpu.step().expect("step");
            rec.record(&step);
        }
        rec.finish()
    }

    #[test]
    fn distances_follow_register_writes() {
        let mut a = Asm::new(0x1000);
        a.addi(reg::T0, reg::ZERO, 5); // 0: writes t0
        a.addi(reg::T1, reg::ZERO, 6); // 1: writes t1
        a.add(reg::T2, reg::T0, reg::T1); // 2: reads t0 (d=2), t1 (d=1)
        a.add(reg::T2, reg::T2, reg::T0); // 3: reads t2 (d=1), t0 (d=3)
        a.ret(); // 4: reads ra (never written) -> no dep
        let t = trace_of(&a.finish(), 16);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(0).unwrap().srcs(), [None, None]);
        assert_eq!(t.get(2).unwrap().srcs(), [Some(2), Some(1)]);
        assert_eq!(t.get(3).unwrap().srcs(), [Some(1), Some(3)]);
        assert_eq!(t.get(4).unwrap().srcs(), [None, None]);
    }

    #[test]
    fn conditional_target_is_taken_target_even_on_fallthrough() {
        let mut a = Asm::new(0x1000);
        a.addi(reg::T0, reg::ZERO, 1);
        a.beq(reg::T0, reg::ZERO, "skip"); // not taken
        a.addi(reg::T1, reg::ZERO, 2);
        a.label("skip");
        a.ret();
        let t = trace_of(&a.finish(), 16);
        let br = t.get(1).unwrap().branch_info().unwrap();
        assert!(!br.taken);
        assert_eq!(br.target, 0x100c); // the label, not the fallthrough
        assert_eq!(t.get(1).unwrap().next_pc(), 0x1008);
    }

    #[test]
    fn control_flow_is_continuous() {
        let mut a = Asm::new(0x1000);
        a.addi(reg::T0, reg::ZERO, 3);
        a.label("loop");
        a.addi(reg::T0, reg::T0, -1);
        a.bne(reg::T0, reg::ZERO, "loop");
        a.ret();
        let t = trace_of(&a.finish(), 64);
        for i in 0..t.len() - 1 {
            assert_eq!(
                t.get(i).unwrap().next_pc(),
                t.get(i + 1).unwrap().pc(),
                "discontinuity after op {i}"
            );
        }
    }

    #[test]
    fn final_op_is_return_to_halt() {
        let mut a = Asm::new(0x1000);
        a.ret();
        let t = trace_of(&a.finish(), 4);
        let last = t.get(t.len() - 1).unwrap().branch_info().unwrap();
        assert_eq!(last.kind, BranchKind::Return);
        assert_eq!(last.target, crate::cpu::HALT_ADDR as u64);
    }

    #[test]
    fn loads_and_stores_carry_real_addresses() {
        let mut a = Asm::new(0x1000);
        a.li(reg::T0, 0x5000_0000_u32 as i32);
        a.li(reg::T1, 42);
        a.sw(reg::T1, 8, reg::T0);
        a.lw(reg::T2, 8, reg::T0);
        a.ret();
        let t = trace_of(&a.finish(), 16);
        let addrs: Vec<_> = t.iter().filter_map(|op| op.mem_addr()).collect();
        assert_eq!(addrs, vec![0x5000_0008, 0x5000_0008]);
    }
}
