//! Execution-driven workload frontend: an RV32IM functional executor
//! and a branch-heavy kernel suite that emit the repo's trace format.
//!
//! Every other workload in the repo is *statistical* — synthesized
//! from measured distributions. This crate is the out-of-distribution
//! counterpart: real programs, actually executed, whose branch
//! outcomes, producer distances, and memory addresses come from
//! architectural state rather than samplers. Because the output is an
//! ordinary [`bmp_trace::Trace`], every downstream consumer — both
//! simulation engines, the interval-analysis decomposition, the
//! static bounds of `bmp-verify`, the H2P classifier, and the
//! TAGE/ITTAGE predictors — runs unchanged on executed traces.
//!
//! The pipeline is: assemble ([`asm`]) → load → execute ([`cpu`],
//! [`mem`]) → record ([`emit`]). The kernel catalogue lives in
//! [`kernels`]; [`kernel_trace`] is the one-call entry point the
//! bench harness and the analyzers share, so a kernel cell's trace is
//! bit-identical wherever it is regenerated.
//!
//! See `docs/ISA.md` for the ISA subset, the sequential-consistency
//! contract, and measured executed-vs-synthetic deltas.
//!
//! # Examples
//!
//! ```
//! let trace = bmp_isa::kernel_trace("bsearch", 2_000, 42).unwrap();
//! assert_eq!(trace.len(), 2_000);
//! // Real control flow: each op's next PC is the next op's PC.
//! for w in trace.ops().windows(2) {
//!     assert_eq!(w[0].next_pc(), w[1].pc());
//! }
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod emit;
pub mod kernels;
pub mod mem;

pub use cpu::{Cpu, ExecError, Step, HALT_ADDR};
pub use decode::{decode, Inst, Op};
pub use emit::TraceRecorder;
pub use kernels::{build, Program, CODE_BASE, DATA_BASE, NAMES, SCRATCH_BASE};
pub use mem::Memory;

use bmp_trace::Trace;

/// Loads a program into a fresh machine and executes it, recording at
/// most `max_ops` instructions into a trace.
///
/// Execution stops at the op budget or when the program returns to the
/// [`HALT_ADDR`] sentinel, whichever comes first. The kernel suite
/// never halts (each kernel loops forever over its data), so kernel
/// traces always have exactly `max_ops` ops.
///
/// # Errors
///
/// Propagates [`ExecError`] from the executor; the shipped kernels
/// never fault, so an error indicates a corrupt program image.
pub fn execute(program: &Program, max_ops: usize) -> Result<Trace, ExecError> {
    let mut mem = Memory::new();
    mem.write_words(program.code_base, &program.code);
    for (base, bytes) in &program.data {
        mem.write_bytes(*base, bytes);
    }
    let mut cpu = Cpu::new(program.entry, mem);
    let mut rec = TraceRecorder::new(max_ops);
    while !cpu.halted() && rec.len() < max_ops {
        let step = cpu.step()?;
        rec.record(&step);
    }
    Ok(rec.finish())
}

/// Builds, executes, and records the named kernel: the shared entry
/// point for the bench harness and the analyzers.
///
/// Returns `None` for a name outside [`kernels::NAMES`]. The result is
/// fully determined by `(name, max_ops, seed)`; callers relying on
/// cache-key equality (the bench `Memo` layer, `bmp-verify`'s static
/// pass) depend on that.
pub fn kernel_trace(name: &str, max_ops: usize, seed: u64) -> Option<Trace> {
    let program = kernels::build(name, max_ops, seed)?;
    Some(execute(&program, max_ops).expect("shipped kernels execute without faulting"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_traces_fill_the_budget_exactly() {
        for name in NAMES {
            let t = kernel_trace(name, 3_000, 42).expect("known kernel");
            assert_eq!(t.len(), 3_000, "{name}");
        }
    }

    #[test]
    fn kernel_traces_are_deterministic() {
        let a = kernel_trace("hash", 2_000, 7).unwrap();
        let b = kernel_trace("hash", 2_000, 7).unwrap();
        assert_eq!(a, b);
        let c = kernel_trace("hash", 2_000, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_kernel_is_none() {
        assert!(kernel_trace("gzip", 1_000, 1).is_none());
    }

    #[test]
    fn traces_mix_classes_and_carry_branch_outcomes() {
        use bmp_uarch::OpClass;
        for name in NAMES {
            let t = kernel_trace(name, 4_000, 1).unwrap();
            let stats = t.stats();
            let loads = t.iter().filter(|o| o.class() == OpClass::Load).count();
            let branches = t.iter().filter(|o| o.class() == OpClass::Branch).count();
            assert!(loads > 0, "{name} has no loads");
            assert!(branches > 0, "{name} has no branches");
            // Conditional branches must actually vary: an executed
            // kernel whose branches all go one way is a sizing bug.
            let taken = t
                .iter()
                .filter_map(|o| o.branch_info())
                .filter(|b| b.kind.is_conditional() && b.taken)
                .count();
            let cond = t
                .iter()
                .filter_map(|o| o.branch_info())
                .filter(|b| b.kind.is_conditional())
                .count();
            assert!(taken > 0 && taken < cond, "{name} branches are degenerate");
            assert_eq!(stats.total(), 4_000);
        }
    }
}
