//! The embedded RV32IM kernel suite.
//!
//! Five small programs chosen for data-dependent branch behaviour —
//! the structure statistical workload generators flatten out:
//!
//! | kernel    | shape                                   | hard branches |
//! |-----------|-----------------------------------------|---------------|
//! | `isort`   | insertion sort of random words          | inner-loop compare/shift exit |
//! | `hash`    | FNV-1a + open-addressing insertion      | probe-hit vs collision |
//! | `parse`   | ASCII decimal scanning with separators  | digit/separator classification |
//! | `rle`     | run-length encoding of a skewed buffer  | run-continuation |
//! | `bsearch` | repeated binary search over sorted data | compare direction per level |
//!
//! Each kernel is assembled from the [`crate::asm`] builder, with its
//! input data generated host-side from the deterministic vendored RNG
//! and sized from the requested op budget so that a single pass
//! slightly overshoots the budget. The body sits inside an infinite
//! outer loop (the last instruction jumps back to the entry), so the
//! executor always truncates at exactly the budget and the emitted
//! trace keeps control-flow continuity — there is no halt inside a
//! kernel, only re-execution over the (possibly mutated) data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::asm::{reg, Asm};

/// Base address where kernel code is loaded.
pub const CODE_BASE: u32 = 0x0010_0000;
/// Base address of each kernel's primary input data.
pub const DATA_BASE: u32 = 0x5000_0000;
/// Base address for kernel outputs and scratch tables.
pub const SCRATCH_BASE: u32 = 0x6000_0000;

/// Kernel names in canonical order. Disjoint from the statistical
/// profile names in `bmp-workloads`, so a cell label is unambiguous
/// about its workload source.
pub const NAMES: [&str; 5] = ["isort", "hash", "parse", "rle", "bsearch"];

/// A loadable program: assembled code plus generated data segments.
#[derive(Debug, Clone)]
pub struct Program {
    /// Kernel name (one of [`NAMES`]).
    pub name: &'static str,
    /// Load address of `code`.
    pub code_base: u32,
    /// Assembled instruction words.
    pub code: Vec<u32>,
    /// Entry point (always `code_base` for this suite).
    pub entry: u32,
    /// Data segments as `(base address, bytes)` pairs.
    pub data: Vec<(u32, Vec<u8>)>,
}

fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Deterministic per-kernel RNG: the kernel name perturbs the seed so
/// sibling kernels at the same `(ops, seed)` see different data.
fn kernel_rng(name: &str, seed: u64) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(seed ^ h)
}

/// Integer square root (floor).
fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// Builds the named kernel sized for roughly `target_ops` executed
/// instructions per pass; `None` for an unknown name.
pub fn build(name: &str, target_ops: usize, seed: u64) -> Option<Program> {
    let ops = target_ops.max(256) as u64;
    match name {
        "isort" => Some(isort(ops, seed)),
        "hash" => Some(hash(ops, seed)),
        "parse" => Some(parse(ops, seed)),
        "rle" => Some(rle(ops, seed)),
        "bsearch" => Some(bsearch(ops, seed)),
        _ => None,
    }
}

/// Insertion sort: one pass over `n` random words costs ~`2n^2` ops,
/// almost all of them in the data-dependent shift loop.
fn isort(ops: u64, seed: u64) -> Program {
    let mut rng = kernel_rng("isort", seed);
    // 2n^2 ≈ 1.3 * ops  =>  n = sqrt(0.65 * ops).
    let n = isqrt(ops * 13 / 20).clamp(16, 65_536) as u32;
    let data: Vec<u32> = (0..n).map(|_| rng.gen::<u32>()).collect();

    use reg::*;
    let mut a = Asm::new(CODE_BASE);
    a.label("restart");
    a.li(A0, DATA_BASE as i32);
    a.li(A1, n as i32);
    a.li(T0, 1); // i = 1
    a.label("outer");
    a.bge(T0, A1, "wrap");
    a.slli(T1, T0, 2);
    a.add(T1, T1, A0);
    a.lw(T2, 0, T1); // key = a[i]
    a.mv(T3, T0); // j = i
    a.label("inner");
    a.beq(T3, ZERO, "place");
    a.slli(T4, T3, 2);
    a.add(T4, T4, A0);
    a.lw(T5, -4, T4); // a[j-1]
    a.bgeu(T2, T5, "place"); // key >= a[j-1]: stop shifting
    a.sw(T5, 0, T4); // a[j] = a[j-1]
    a.addi(T3, T3, -1);
    a.j("inner");
    a.label("place");
    a.slli(T4, T3, 2);
    a.add(T4, T4, A0);
    a.sw(T2, 0, T4); // a[j] = key
    a.addi(T0, T0, 1);
    a.j("outer");
    a.label("wrap");
    a.j("restart");

    Program {
        name: "isort",
        code_base: CODE_BASE,
        code: a.finish(),
        entry: CODE_BASE,
        data: vec![(DATA_BASE, words_to_bytes(&data))],
    }
}

/// FNV-1a hashing of random keys into an open-addressing table at
/// half load factor: probe length varies per key, and the hit/empty/
/// collision three-way split is data-dependent.
fn hash(ops: u64, seed: u64) -> Program {
    let mut rng = kernel_rng("hash", seed);
    // ~42 ops per key (4-byte FNV loop + probes); overshoot by 1.3x.
    let m = (ops * 13 / (10 * 42)).clamp(16, 1 << 20) as u32;
    // Nonzero keys: zero is the table's empty-slot sentinel.
    let keys: Vec<u32> = (0..m).map(|_| rng.gen::<u32>() | 1).collect();
    let tsize = (2 * m).next_power_of_two();
    let mask = tsize - 1;

    use reg::*;
    let mut a = Asm::new(CODE_BASE);
    a.label("restart");
    a.li(S0, DATA_BASE as i32); // key cursor
    a.li(S1, m as i32); // keys remaining
    a.li(S2, SCRATCH_BASE as i32); // table
    a.li(S3, mask as i32);
    a.li(T6, 0x0100_0193); // FNV prime, hoisted
    a.label("keys");
    a.beq(S1, ZERO, "wrap");
    a.lw(A0, 0, S0); // key
    a.li(T0, 0x811c_9dc5_u32 as i32); // FNV offset basis
    a.li(T1, 4); // byte counter
    a.mv(T2, A0);
    a.label("fnv");
    a.andi(T3, T2, 0xff);
    a.xor(T0, T0, T3);
    a.mul(T0, T0, T6);
    a.srli(T2, T2, 8);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "fnv");
    a.and(T0, T0, S3); // slot = h & mask
    a.label("probe");
    a.slli(T3, T0, 2);
    a.add(T3, T3, S2);
    a.lw(T4, 0, T3);
    a.beq(T4, ZERO, "insert"); // empty slot
    a.beq(T4, A0, "next"); // already present
    a.addi(T0, T0, 1); // linear probe
    a.and(T0, T0, S3);
    a.j("probe");
    a.label("insert");
    a.sw(A0, 0, T3);
    a.label("next");
    a.addi(S0, S0, 4);
    a.addi(S1, S1, -1);
    a.j("keys");
    a.label("wrap");
    a.j("restart");

    Program {
        name: "hash",
        code_base: CODE_BASE,
        code: a.finish(),
        entry: CODE_BASE,
        data: vec![(DATA_BASE, words_to_bytes(&keys))],
    }
}

/// ASCII decimal parsing: classify each character as digit or
/// separator, accumulate values, store the running sum. Number lengths
/// and separator choice are random, so the digit-loop trip count and
/// the classification branch are both hard to predict.
fn parse(ops: u64, seed: u64) -> Program {
    let mut rng = kernel_rng("parse", seed);
    // ~7.5 ops per character; overshoot by 1.3x.
    let target_chars = (ops * 13 / (10 * 6)).clamp(64, 1 << 22) as usize;
    let mut text = Vec::with_capacity(target_chars + 16);
    while text.len() < target_chars {
        let digits = rng.gen_range(1_u32..=8);
        text.push(b'1' + rng.gen_range(0_u32..9) as u8);
        for _ in 1..digits {
            text.push(b'0' + rng.gen_range(0_u32..10) as u8);
        }
        text.push(match rng.gen_range(0_u32..3) {
            0 => b' ',
            1 => b',',
            _ => b'\n',
        });
    }
    text.push(0); // terminator

    use reg::*;
    let mut a = Asm::new(CODE_BASE);
    a.label("restart");
    a.li(S0, DATA_BASE as i32); // cursor
    a.li(S1, 0); // sum
    a.label("top");
    a.lbu(T0, 0, S0);
    a.beq(T0, ZERO, "flush"); // end of buffer
    a.addi(T1, T0, -48); // c - '0'
    a.sltiu(T2, T1, 10); // digit?
    a.beq(T2, ZERO, "skip");
    a.li(T3, 0); // value
    a.li(T4, 10);
    a.label("num");
    a.mul(T3, T3, T4);
    a.add(T3, T3, T1);
    a.addi(S0, S0, 1);
    a.lbu(T0, 0, S0);
    a.addi(T1, T0, -48);
    a.sltiu(T2, T1, 10);
    a.bne(T2, ZERO, "num"); // next digit
    a.add(S1, S1, T3);
    a.j("top");
    a.label("skip");
    a.addi(S0, S0, 1);
    a.j("top");
    a.label("flush");
    a.li(T5, SCRATCH_BASE as i32);
    a.sw(S1, 0, T5);
    a.j("restart");

    Program {
        name: "parse",
        code_base: CODE_BASE,
        code: a.finish(),
        entry: CODE_BASE,
        data: vec![(DATA_BASE, text)],
    }
}

/// Run-length encoding of a buffer with geometric-ish run lengths over
/// a small alphabet: the run-continuation branch flips at
/// data-dependent positions.
fn rle(ops: u64, seed: u64) -> Program {
    let mut rng = kernel_rng("rle", seed);
    // ~7 ops per input byte; overshoot by 1.3x.
    let target_len = (ops * 13 / (10 * 6)).clamp(64, 1 << 22) as usize;
    let mut src = Vec::with_capacity(target_len + 48);
    let mut prev = u8::MAX;
    while src.len() < target_len {
        // Consecutive runs must differ, or they would merge.
        let sym = loop {
            let s = b'a' + rng.gen_range(0_u32..8) as u8;
            if s != prev {
                break s;
            }
        };
        prev = sym;
        let len = if rng.gen_bool(0.2) {
            rng.gen_range(4_u32..=40)
        } else {
            rng.gen_range(1_u32..=3)
        };
        src.extend(std::iter::repeat_n(sym, len as usize));
    }
    let src_end = DATA_BASE + src.len() as u32;

    use reg::*;
    let mut a = Asm::new(CODE_BASE);
    a.label("restart");
    a.li(S0, DATA_BASE as i32); // src cursor
    a.li(S1, src_end as i32); // src end
    a.li(S2, SCRATCH_BASE as i32); // dst cursor
    a.label("top");
    a.bgeu(S0, S1, "wrap");
    a.lbu(T0, 0, S0); // run symbol
    a.li(T1, 1); // run length
    a.label("run");
    a.add(T2, S0, T1);
    a.bgeu(T2, S1, "emit");
    a.lbu(T3, 0, T2);
    a.bne(T3, T0, "emit"); // run ends
    a.addi(T1, T1, 1);
    a.j("run");
    a.label("emit");
    a.sb(T0, 0, S2); // symbol
    a.sb(T1, 1, S2); // length (< 256 by construction)
    a.addi(S2, S2, 2);
    a.add(S0, S0, T1);
    a.j("top");
    a.label("wrap");
    a.j("restart");

    Program {
        name: "rle",
        code_base: CODE_BASE,
        code: a.finish(),
        entry: CODE_BASE,
        data: vec![(DATA_BASE, src)],
    }
}

/// Repeated binary search: every level of every probe is a three-way
/// compare whose direction depends on the key — the canonical
/// hard-to-predict branch pattern. Half the probe keys hit, half are
/// random (mostly missing).
fn bsearch(ops: u64, seed: u64) -> Program {
    let mut rng = kernel_rng("bsearch", seed);
    let n = (ops / 20).clamp(64, 8192) as u32;
    let mut arr: Vec<u32> = (0..n).map(|_| rng.gen::<u32>()).collect();
    arr.sort_unstable();
    let lg = 32 - n.leading_zeros() as u64; // ceil(log2) + 1 bound
    let per_probe = 10 * lg + 10;
    let m = (ops * 13 / (10 * per_probe)).clamp(8, 1 << 20) as u32;
    let probes: Vec<u32> = (0..m)
        .map(|_| {
            if rng.gen_bool(0.5) {
                arr[rng.gen_range(0_usize..arr.len())]
            } else {
                rng.gen::<u32>()
            }
        })
        .collect();
    let probes_base = DATA_BASE + 4 * n;

    use reg::*;
    let mut a = Asm::new(CODE_BASE);
    a.label("restart");
    a.li(S0, DATA_BASE as i32); // sorted array
    a.li(S1, n as i32);
    a.li(S2, probes_base as i32); // probe cursor
    a.li(S3, m as i32); // probes remaining
    a.li(A5, 0); // hit count
    a.label("ploop");
    a.beq(S3, ZERO, "flush");
    a.lw(A0, 0, S2); // key
    a.li(T0, 0); // lo
    a.mv(T1, S1); // hi = n
    a.label("bs");
    a.bgeu(T0, T1, "miss"); // lo >= hi: not found
    a.add(T2, T0, T1);
    a.srli(T2, T2, 1); // mid
    a.slli(T3, T2, 2);
    a.add(T3, T3, S0);
    a.lw(T4, 0, T3); // arr[mid]
    a.beq(T4, A0, "hit");
    a.bltu(T4, A0, "right");
    a.mv(T1, T2); // hi = mid
    a.j("bs");
    a.label("right");
    a.addi(T0, T2, 1); // lo = mid + 1
    a.j("bs");
    a.label("hit");
    a.addi(A5, A5, 1);
    a.label("miss");
    a.addi(S2, S2, 4);
    a.addi(S3, S3, -1);
    a.j("ploop");
    a.label("flush");
    a.li(T5, SCRATCH_BASE as i32);
    a.sw(A5, 0, T5);
    a.j("restart");

    let mut data = words_to_bytes(&arr);
    data.extend(words_to_bytes(&probes));
    Program {
        name: "bsearch",
        code_base: CODE_BASE,
        code: a.finish(),
        entry: CODE_BASE,
        data: vec![(DATA_BASE, data)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in NAMES {
            let p = build(name, 4_000, 7).expect("known kernel");
            assert_eq!(p.name, name);
            assert!(!p.code.is_empty());
            assert!(!p.data.is_empty());
            assert_eq!(p.entry, CODE_BASE);
        }
        assert!(build("nosuch", 4_000, 7).is_none());
    }

    #[test]
    fn data_is_seed_dependent_and_deterministic() {
        let a = build("isort", 4_000, 1).unwrap();
        let b = build("isort", 4_000, 1).unwrap();
        let c = build("isort", 4_000, 2).unwrap();
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn sibling_kernels_draw_different_data() {
        // Same (ops, seed) must not give two kernels identical bytes.
        let h = build("hash", 4_000, 5).unwrap();
        let s = build("isort", 4_000, 5).unwrap();
        assert_ne!(h.data[0].1, s.data[0].1);
    }

    #[test]
    fn bsearch_array_is_sorted() {
        let p = build("bsearch", 8_000, 3).unwrap();
        let bytes = &p.data[0].1;
        let n = bytes.len() / 4; // words in segment
        let words: Vec<u32> = (0..n)
            .map(|i| {
                u32::from_le_bytes([
                    bytes[4 * i],
                    bytes[4 * i + 1],
                    bytes[4 * i + 2],
                    bytes[4 * i + 3],
                ])
            })
            .collect();
        // The sorted array is the prefix; probes follow. Find the array
        // length from the sizing formula used by the kernel.
        let arr_n = (8_000_u64.max(256) / 20).clamp(64, 8192) as usize;
        assert!(words[..arr_n].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rle_runs_never_exceed_a_byte() {
        let p = build("rle", 100_000, 9).unwrap();
        let src = &p.data[0].1;
        let mut run = 1usize;
        let mut max_run = 1usize;
        for w in src.windows(2) {
            if w[0] == w[1] {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(
            max_run < 256,
            "run of {max_run} would overflow the count byte"
        );
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 1000, 999_999] {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }
}
