//! A small RV32IM assembler: instruction encoders plus a program
//! builder with labels and fixups.
//!
//! The kernel suite ([`crate::kernels`]) is written against this
//! builder rather than shipped as opaque machine-code blobs, so every
//! kernel is reviewable instruction by instruction and the encodings
//! are exercised against the decoder round-trip tests. The builder
//! deliberately supports only what the kernels need: the RV32I base
//! integer set, the M multiply/divide extension, labels with
//! forward references, and nothing else — no pseudo-instruction
//! expansion beyond the handful defined here, no relocation, no
//! sections.
//!
//! # Examples
//!
//! ```
//! use bmp_isa::asm::{Asm, reg};
//!
//! let mut a = Asm::new(0x1_0000);
//! a.addi(reg::A0, reg::ZERO, 3);
//! a.label("loop");
//! a.addi(reg::A0, reg::A0, -1);
//! a.bne(reg::A0, reg::ZERO, "loop");
//! a.ret();
//! let words = a.finish();
//! assert_eq!(words.len(), 4);
//! ```

use std::collections::HashMap;

/// Architectural register number (`x0` … `x31`).
pub type Reg = u32;

/// The RISC-V ABI register names the kernels use.
pub mod reg {
    use super::Reg;

    /// Hard-wired zero.
    pub const ZERO: Reg = 0;
    /// Return address (the executor seeds it with the halt address).
    pub const RA: Reg = 1;
    /// Stack pointer.
    pub const SP: Reg = 2;
    /// Argument/return registers.
    pub const A0: Reg = 10;
    /// Second argument register.
    pub const A1: Reg = 11;
    /// Third argument register.
    pub const A2: Reg = 12;
    /// Fourth argument register.
    pub const A3: Reg = 13;
    /// Fifth argument register.
    pub const A4: Reg = 14;
    /// Sixth argument register.
    pub const A5: Reg = 15;
    /// Temporaries.
    pub const T0: Reg = 5;
    /// Second temporary.
    pub const T1: Reg = 6;
    /// Third temporary.
    pub const T2: Reg = 7;
    /// Fourth temporary (x28).
    pub const T3: Reg = 28;
    /// Fifth temporary (x29).
    pub const T4: Reg = 29;
    /// Sixth temporary (x30).
    pub const T5: Reg = 30;
    /// Seventh temporary (x31).
    pub const T6: Reg = 31;
    /// Callee-saved registers.
    pub const S0: Reg = 8;
    /// Second callee-saved register.
    pub const S1: Reg = 9;
    /// Third callee-saved register (x18).
    pub const S2: Reg = 18;
    /// Fourth callee-saved register (x19).
    pub const S3: Reg = 19;
}

fn check_reg(r: Reg) {
    assert!(r < 32, "register x{r} out of range");
}

fn imm12(imm: i32) -> u32 {
    assert!(
        (-2048..2048).contains(&imm),
        "immediate {imm} exceeds 12 bits"
    );
    (imm as u32) & 0xfff
}

/// R-type: funct7 | rs2 | rs1 | funct3 | rd | opcode.
fn enc_r(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    check_reg(rd);
    check_reg(rs1);
    check_reg(rs2);
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

/// I-type: imm[11:0] | rs1 | funct3 | rd | opcode.
fn enc_i(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    check_reg(rd);
    check_reg(rs1);
    (imm12(imm) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

/// S-type: imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode.
fn enc_s(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    check_reg(rs1);
    check_reg(rs2);
    let imm = imm12(imm);
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1f) << 7) | opcode
}

/// B-type: the 13-bit branch offset scrambled across the word.
fn enc_b(offset: i32, rs2: Reg, rs1: Reg, funct3: u32) -> u32 {
    check_reg(rs1);
    check_reg(rs2);
    assert!(offset % 2 == 0, "branch offset {offset} must be even");
    assert!(
        (-4096..4096).contains(&offset),
        "branch offset {offset} exceeds 13 bits"
    );
    let imm = offset as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3f) << 25
        | rs2 << 20
        | rs1 << 15
        | funct3 << 12
        | ((imm >> 1) & 0xf) << 8
        | ((imm >> 11) & 1) << 7
        | 0x63
}

/// J-type: the 21-bit jump offset scrambled across the word.
fn enc_j(offset: i32, rd: Reg) -> u32 {
    check_reg(rd);
    assert!(offset % 2 == 0, "jump offset {offset} must be even");
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset),
        "jump offset {offset} exceeds 21 bits"
    );
    let imm = offset as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xff) << 12
        | rd << 7
        | 0x6f
}

/// U-type: imm[31:12] | rd | opcode.
fn enc_u(imm20: u32, rd: Reg, opcode: u32) -> u32 {
    check_reg(rd);
    assert!(
        imm20 < (1 << 20),
        "U-type immediate {imm20} exceeds 20 bits"
    );
    (imm20 << 12) | (rd << 7) | opcode
}

/// A pending label reference, patched at [`Asm::finish`].
#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// B-type conditional branch to the label.
    Branch,
    /// J-type jump to the label.
    Jal,
}

/// The program builder: emits instruction words at consecutive
/// addresses from a base, with named labels and forward references.
#[derive(Debug)]
pub struct Asm {
    base: u32,
    words: Vec<u32>,
    labels: HashMap<&'static str, u32>,
    fixups: Vec<(usize, &'static str, Fixup)>,
}

impl Asm {
    /// A builder placing its first instruction at `base` (4-aligned).
    pub fn new(base: u32) -> Self {
        assert!(
            base.is_multiple_of(4),
            "code base {base:#x} must be 4-aligned"
        );
        Self {
            base,
            words: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.words.len() as u32
    }

    /// Defines `name` at the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &'static str) {
        let addr = self.here();
        let prev = self.labels.insert(name, addr);
        assert!(prev.is_none(), "label {name:?} defined twice");
    }

    fn push(&mut self, word: u32) {
        self.words.push(word);
    }

    /// Resolves fixups and returns the finished instruction words.
    ///
    /// # Panics
    ///
    /// Panics on a reference to an undefined label.
    pub fn finish(mut self) -> Vec<u32> {
        for (idx, name, kind) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label {name:?}"));
            let pc = self.base + 4 * idx as u32;
            let offset = target.wrapping_sub(pc) as i32;
            let old = self.words[idx];
            self.words[idx] = match kind {
                // Re-encode keeping the register/funct fields of the
                // placeholder word.
                Fixup::Branch => {
                    let rs1 = (old >> 15) & 0x1f;
                    let rs2 = (old >> 20) & 0x1f;
                    let funct3 = (old >> 12) & 0x7;
                    enc_b(offset, rs2, rs1, funct3)
                }
                Fixup::Jal => {
                    let rd = (old >> 7) & 0x1f;
                    enc_j(offset, rd)
                }
            };
        }
        self.words
    }

    // ---- RV32I register-register ----

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x0, rd, 0x33));
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x20, rs2, rs1, 0x0, rd, 0x33));
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x1, rd, 0x33));
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x2, rd, 0x33));
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x3, rd, 0x33));
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x4, rd, 0x33));
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x5, rd, 0x33));
    }
    /// `sra rd, rs1, rs2`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x20, rs2, rs1, 0x5, rd, 0x33));
    }
    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x6, rd, 0x33));
    }
    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x00, rs2, rs1, 0x7, rd, 0x33));
    }

    // ---- M extension ----

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x0, rd, 0x33));
    }
    /// `mulh rd, rs1, rs2`
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x1, rd, 0x33));
    }
    /// `mulhsu rd, rs1, rs2`
    pub fn mulhsu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x2, rd, 0x33));
    }
    /// `mulhu rd, rs1, rs2`
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x3, rd, 0x33));
    }
    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x4, rd, 0x33));
    }
    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x5, rd, 0x33));
    }
    /// `rem rd, rs1, rs2`
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x6, rd, 0x33));
    }
    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(enc_r(0x01, rs2, rs1, 0x7, rd, 0x33));
    }

    // ---- RV32I register-immediate ----

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x0, rd, 0x13));
    }
    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x2, rd, 0x13));
    }
    /// `sltiu rd, rs1, imm`
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x3, rd, 0x13));
    }
    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x4, rd, 0x13));
    }
    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x6, rd, 0x13));
    }
    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(enc_i(imm, rs1, 0x7, rd, 0x13));
    }
    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount {shamt} out of range");
        self.push(enc_i(shamt as i32, rs1, 0x1, rd, 0x13));
    }
    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount {shamt} out of range");
        self.push(enc_i(shamt as i32, rs1, 0x5, rd, 0x13));
    }
    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount {shamt} out of range");
        self.push(enc_i((shamt | 0x400) as i32, rs1, 0x5, rd, 0x13));
    }

    // ---- loads/stores ----

    /// `lb rd, imm(rs1)`
    pub fn lb(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x0, rd, 0x03));
    }
    /// `lh rd, imm(rs1)`
    pub fn lh(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x1, rd, 0x03));
    }
    /// `lw rd, imm(rs1)`
    pub fn lw(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x2, rd, 0x03));
    }
    /// `lbu rd, imm(rs1)`
    pub fn lbu(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x4, rd, 0x03));
    }
    /// `lhu rd, imm(rs1)`
    pub fn lhu(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x5, rd, 0x03));
    }
    /// `sb rs2, imm(rs1)`
    pub fn sb(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.push(enc_s(imm, rs2, rs1, 0x0, 0x23));
    }
    /// `sh rs2, imm(rs1)`
    pub fn sh(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.push(enc_s(imm, rs2, rs1, 0x1, 0x23));
    }
    /// `sw rs2, imm(rs1)`
    pub fn sw(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.push(enc_s(imm, rs2, rs1, 0x2, 0x23));
    }

    // ---- control transfer ----

    fn branch_to(&mut self, rs1: Reg, rs2: Reg, funct3: u32, target: &'static str) {
        let idx = self.words.len();
        // Placeholder offset 0; the register/funct fields survive the
        // re-encode in `finish`.
        self.push(enc_b(0, rs2, rs1, funct3));
        self.fixups.push((idx, target, Fixup::Branch));
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x0, target);
    }
    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x1, target);
    }
    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x4, target);
    }
    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x5, target);
    }
    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x6, target);
    }
    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: &'static str) {
        self.branch_to(rs1, rs2, 0x7, target);
    }

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, target: &'static str) {
        let idx = self.words.len();
        self.push(enc_j(0, rd));
        self.fixups.push((idx, target, Fixup::Jal));
    }
    /// `j label` (pseudo: `jal x0, label`)
    pub fn j(&mut self, target: &'static str) {
        self.jal(reg::ZERO, target);
    }
    /// `jalr rd, imm(rs1)`
    pub fn jalr(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.push(enc_i(imm, rs1, 0x0, rd, 0x67));
    }
    /// `ret` (pseudo: `jalr x0, 0(ra)`)
    pub fn ret(&mut self) {
        self.jalr(reg::ZERO, 0, reg::RA);
    }

    // ---- upper immediates and pseudo-ops ----

    /// `lui rd, imm20`
    pub fn lui(&mut self, rd: Reg, imm20: u32) {
        self.push(enc_u(imm20, rd, 0x37));
    }
    /// `auipc rd, imm20`
    pub fn auipc(&mut self, rd: Reg, imm20: u32) {
        self.push(enc_u(imm20, rd, 0x17));
    }

    /// `li rd, value` (pseudo: `lui` + `addi` as needed; 1–2 words).
    pub fn li(&mut self, rd: Reg, value: i32) {
        let v = value as u32;
        let lo = (v & 0xfff) as i32;
        let lo = if lo >= 0x800 { lo - 0x1000 } else { lo };
        let hi = v.wrapping_sub(lo as u32) >> 12;
        if hi == 0 {
            self.addi(rd, reg::ZERO, lo);
        } else {
            self.lui(rd, hi & 0xfffff);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    /// `mv rd, rs` (pseudo: `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings() {
        // Cross-checked against the RISC-V spec examples:
        // add x3, x1, x2 = 0x002081b3; addi x1, x0, 5 = 0x00500093.
        let mut a = Asm::new(0);
        a.add(3, 1, 2);
        a.addi(1, 0, 5);
        a.lw(5, 8, 2);
        a.sw(5, 12, 2);
        let w = a.finish();
        assert_eq!(w[0], 0x002081b3);
        assert_eq!(w[1], 0x00500093);
        assert_eq!(w[2], 0x00812283);
        assert_eq!(w[3], 0x00512623);
    }

    #[test]
    fn branch_fixups_resolve_backward_and_forward() {
        let mut a = Asm::new(0x100);
        a.label("top");
        a.addi(5, 5, 1);
        a.beq(5, 6, "done"); // forward +8
        a.j("top"); // backward -8
        a.label("done");
        a.ret();
        let w = a.finish();
        // beq x5, x6, +8
        assert_eq!(w[1], enc_b(8, 6, 5, 0x0));
        // jal x0, -8
        assert_eq!(w[2], enc_j(-8, 0));
    }

    #[test]
    fn li_splits_large_constants() {
        let mut a = Asm::new(0);
        a.li(7, 0x12345);
        a.li(8, -1);
        a.li(9, 0x0010_0000);
        let w = a.finish();
        // 0x12345: lui 0x12 + addi 0x345.
        assert_eq!(w[0], enc_u(0x12, 7, 0x37));
        assert_eq!(w[1], enc_i(0x345, 7, 0x0, 7, 0x13));
        // -1 fits in 12 bits.
        assert_eq!(w[2], enc_i(-1, 0, 0x0, 8, 0x13));
        // 0x100000: pure lui.
        assert_eq!(w[3], enc_u(0x100, 9, 0x37));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        a.finish();
    }
}
