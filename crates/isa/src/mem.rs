//! Sparse byte-addressed memory.
//!
//! The executor's address space is a flat 32-bit space backed by
//! 4 KiB pages allocated on first touch, so kernels can place code and
//! data at widely separated bases (mirroring the synthetic workloads'
//! address-map convention) without the host paying for the gap. Reads
//! from never-written locations return zero — the same contract as
//! zero-initialised memory — which keeps kernel startup free of
//! clearing loops.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Sparse little-endian memory over the full 32-bit address space.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pages touched so far (writes only; reads of
    /// untouched pages do not allocate).
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte; untouched memory reads as zero.
    #[inline]
    pub fn load_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on first touch.
    #[inline]
    pub fn store_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian halfword (no alignment requirement).
    #[inline]
    pub fn load_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.load_u8(addr), self.load_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian halfword.
    #[inline]
    pub fn store_u16(&mut self, addr: u32, value: u16) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads a little-endian word (no alignment requirement).
    #[inline]
    pub fn load_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.load_u8(addr),
            self.load_u8(addr.wrapping_add(1)),
            self.load_u8(addr.wrapping_add(2)),
            self.load_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word.
    #[inline]
    pub fn store_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Copies `bytes` into memory starting at `base`.
    pub fn write_bytes(&mut self, base: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.store_u8(base.wrapping_add(i as u32), b);
        }
    }

    /// Writes a slice of words at consecutive word addresses from `base`.
    pub fn write_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store_u32(base.wrapping_add(4 * i as u32), w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.load_u8(0), 0);
        assert_eq!(m.load_u32(0xffff_fffc), 0);
        assert_eq!(m.pages_touched(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.store_u32(0x1000, 0xdead_beef);
        assert_eq!(m.load_u32(0x1000), 0xdead_beef);
        assert_eq!(m.load_u8(0x1000), 0xef);
        assert_eq!(m.load_u8(0x1003), 0xde);
        assert_eq!(m.load_u16(0x1002), 0xdead);
        m.store_u16(0x1000, 0x1234);
        assert_eq!(m.load_u32(0x1000), 0xdead_1234);
    }

    #[test]
    fn writes_spanning_page_boundary() {
        let mut m = Memory::new();
        m.store_u32(0x1ffe, 0x0102_0304);
        assert_eq!(m.load_u32(0x1ffe), 0x0102_0304);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn bulk_writers() {
        let mut m = Memory::new();
        m.write_words(0x100, &[1, 2, 3]);
        assert_eq!(m.load_u32(0x108), 3);
        m.write_bytes(0x200, b"hi");
        assert_eq!(m.load_u8(0x201), b'i');
    }
}
