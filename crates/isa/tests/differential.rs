//! Differential tests: the executor vs hand-computed architectural
//! state, one block per instruction class (ISSUE 10 satellite).
//!
//! Each test assembles a short program, runs it to the halt sentinel,
//! and compares the final register file against values computed by
//! hand (written as literals, not re-derived with Rust operators that
//! mirror the implementation — except where the RISC-V semantics *is*
//! the Rust wrapping semantics, which is then stated).

use bmp_isa::asm::{reg, Asm};
use bmp_isa::{Cpu, Memory};

/// Runs `words` from a fixed base until halt; asserts halt was reached.
fn run(words: &[u32]) -> Cpu {
    let mut mem = Memory::new();
    mem.write_words(0x0010_0000, words);
    let mut cpu = Cpu::new(0x0010_0000, mem);
    for _ in 0..100_000 {
        if cpu.halted() {
            return cpu;
        }
        cpu.step().expect("differential programs must not fault");
    }
    panic!("program did not halt");
}

fn x(cpu: &Cpu, r: u32) -> u32 {
    cpu.regs[r as usize]
}

#[test]
fn arithmetic_and_logic() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, 100);
    a.li(T1, -7);
    a.add(A0, T0, T1); // 100 + (-7) = 93
    a.sub(A1, T0, T1); // 100 - (-7) = 107
    a.xor(A2, T0, T1); // 0x64 ^ 0xfffffff9 = 0xffffff9d
    a.or(A3, T0, T1); // 0x64 | 0xfffffff9 = 0xfffffffd
    a.and(A4, T0, T1); // 0x64 & 0xfffffff9 = 0x60
    a.addi(A5, T0, 2047); // 100 + 2047 = 2147
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), 93);
    assert_eq!(x(&c, A1), 107);
    assert_eq!(x(&c, A2), 0xffff_ff9d);
    assert_eq!(x(&c, A3), 0xffff_fffd);
    assert_eq!(x(&c, A4), 0x60);
    assert_eq!(x(&c, A5), 2147);
}

#[test]
fn comparisons_and_shifts() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, -5);
    a.li(T1, 3);
    a.slt(A0, T0, T1); // -5 < 3 signed -> 1
    a.sltu(A1, T0, T1); // 0xfffffffb < 3 unsigned -> 0
    a.slti(A2, T0, -4); // -5 < -4 -> 1
    a.sltiu(A3, T1, 4); // 3 < 4 -> 1
    a.slli(A4, T1, 4); // 3 << 4 = 48
    a.srli(A5, T0, 28); // 0xfffffffb >> 28 = 0xf
    a.srai(T2, T0, 1); // -5 >> 1 arithmetic = -3 (0xfffffffd)
    a.sll(T3, T1, T1); // 3 << 3 = 24
    a.sra(T4, T0, T1); // -5 >> 3 arithmetic = -1
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), 1);
    assert_eq!(x(&c, A1), 0);
    assert_eq!(x(&c, A2), 1);
    assert_eq!(x(&c, A3), 1);
    assert_eq!(x(&c, A4), 48);
    assert_eq!(x(&c, A5), 0xf);
    assert_eq!(x(&c, T2), 0xffff_fffd);
    assert_eq!(x(&c, T3), 24);
    assert_eq!(x(&c, T4), 0xffff_ffff);
}

#[test]
fn multiply_family() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, -3);
    a.li(T1, 100_000);
    a.mul(A0, T0, T1); // low word of -300000
    a.mulh(A1, T0, T1); // high word of -300000 (sign-extended): -1
    a.mulhu(A2, T0, T1); // high word of 0xfffffffd * 100000 unsigned
    a.mulhsu(A3, T0, T1); // signed * unsigned high word: -1 (small product)
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), (-300_000_i32) as u32);
    assert_eq!(x(&c, A1), 0xffff_ffff);
    // 0xfffffffd * 100000 = 0x1869f_fffb_5ee0 -> high word 0x1869f.
    assert_eq!(x(&c, A2), 0x1_869f);
    assert_eq!(x(&c, A3), 0xffff_ffff);
}

#[test]
fn divide_family() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, -7);
    a.li(T1, 2);
    a.div(A0, T0, T1); // -7 / 2 = -3 (trunc toward zero)
    a.rem(A1, T0, T1); // -7 % 2 = -1
    a.divu(A2, T0, T1); // 0xfffffff9 / 2 = 0x7ffffffc
    a.remu(A3, T0, T1); // 0xfffffff9 % 2 = 1
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), (-3_i32) as u32);
    assert_eq!(x(&c, A1), (-1_i32) as u32);
    assert_eq!(x(&c, A2), 0x7fff_fffc);
    assert_eq!(x(&c, A3), 1);
}

#[test]
fn loads_and_stores_all_widths() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(S0, 0x5000_0000_u32 as i32);
    a.li(T0, 0x8182_8384_u32 as i32);
    a.sw(T0, 0, S0);
    a.lb(A0, 0, S0); // 0x84 sign-extended = 0xffffff84
    a.lbu(A1, 0, S0); // 0x84
    a.lh(A2, 0, S0); // 0x8384 sign-extended
    a.lhu(A3, 2, S0); // 0x8182
    a.lw(A4, 0, S0); // full word back
    a.sb(T0, 4, S0); // byte 0x84
    a.lbu(A5, 4, S0);
    a.sh(T0, 8, S0); // halfword 0x8384
    a.lhu(T1, 8, S0);
    a.lw(T2, 12, S0); // never written -> 0
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), 0xffff_ff84);
    assert_eq!(x(&c, A1), 0x84);
    assert_eq!(x(&c, A2), 0xffff_8384);
    assert_eq!(x(&c, A3), 0x8182);
    assert_eq!(x(&c, A4), 0x8182_8384);
    assert_eq!(x(&c, A5), 0x84);
    assert_eq!(x(&c, T1), 0x8384);
    assert_eq!(x(&c, T2), 0);
}

#[test]
fn upper_immediates() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.lui(A0, 0xabcde); // 0xabcde000
    a.auipc(A1, 1); // pc (0x100004) + 0x1000
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, A0), 0xabcd_e000);
    assert_eq!(x(&c, A1), 0x0010_1004);
}

#[test]
fn branches_all_conditions() {
    use reg::*;
    // Walk a chain of branches; every *taken* branch skips an
    // instruction that would set the corresponding poison bit.
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, -1);
    a.li(T1, 1);
    a.beq(T0, T0, "l1");
    a.li(S0, 1); // skipped
    a.label("l1");
    a.bne(T0, T1, "l2");
    a.li(S0, 2); // skipped
    a.label("l2");
    a.blt(T0, T1, "l3"); // -1 < 1 signed: taken
    a.li(S0, 3); // skipped
    a.label("l3");
    a.bge(T1, T0, "l4"); // 1 >= -1 signed: taken
    a.li(S0, 4); // skipped
    a.label("l4");
    a.bltu(T1, T0, "l5"); // 1 < 0xffffffff unsigned: taken
    a.li(S0, 5); // skipped
    a.label("l5");
    a.bgeu(T0, T1, "l6"); // 0xffffffff >= 1 unsigned: taken
    a.li(S0, 6); // skipped
    a.label("l6");
    // Inverted cases must fall through.
    a.beq(T0, T1, "bad");
    a.blt(T1, T0, "bad");
    a.bltu(T0, T1, "bad");
    a.li(S1, 42);
    a.ret();
    a.label("bad");
    a.li(S1, 99);
    a.ret();
    let c = run(&a.finish());
    assert_eq!(x(&c, reg::S0), 0, "a not-taken branch executed its shadow");
    assert_eq!(x(&c, reg::S1), 42);
}

#[test]
fn jumps_calls_and_returns() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.mv(S2, RA); // save the halt sentinel: jal clobbers ra
    a.jal(RA, "callee"); // call: ra = pc + 4
    a.mv(S1, A0); // runs after the callee returns
    a.mv(RA, S2);
    a.ret(); // halt
    a.label("callee");
    a.li(A0, 77);
    a.jalr(ZERO, 0, RA); // return to call site + 4
    let c = run(&a.finish());
    assert_eq!(x(&c, S1), 77);
}

#[test]
fn x0_writes_are_discarded_in_every_class() {
    use reg::*;
    let mut a = Asm::new(0x0010_0000);
    a.li(T0, 5);
    a.addi(ZERO, T0, 1);
    a.mul(ZERO, T0, T0);
    a.li(S0, 0x5000_0000_u32 as i32);
    a.lw(ZERO, 0, S0);
    a.lui(ZERO, 0xfffff);
    a.ret();
    let c = run(&a.finish());
    assert_eq!(c.regs[0], 0);
}
