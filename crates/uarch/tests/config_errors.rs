//! Every [`ConfigError`] variant, produced through the public
//! constructors that guard it, with its `Display` rendering asserted —
//! so an error-message regression (or a validation path silently
//! disappearing) fails here.

use bmp_uarch::{
    CacheGeometry, ConfigError, HierarchyConfig, MachineConfigBuilder, PredictorConfig,
};

/// Asserts `err` matches `pat` and that its message contains `needle`.
macro_rules! assert_error {
    ($result:expr, $pat:pat, $needle:expr) => {{
        let err = $result.expect_err("construction must be rejected");
        assert!(matches!(err, $pat), "unexpected variant: {err:?}");
        let msg = err.to_string();
        assert!(
            msg.contains($needle),
            "Display {msg:?} does not mention {:?}",
            $needle
        );
    }};
}

#[test]
fn zero_resource_from_builder() {
    assert_error!(
        MachineConfigBuilder::new().fetch_width(0).build(),
        ConfigError::ZeroResource(_),
        "must be at least 1"
    );
    assert_error!(
        MachineConfigBuilder::new().window_size(0).build(),
        ConfigError::ZeroResource(_),
        "must be at least 1"
    );
}

#[test]
fn zero_resource_from_cache_constructors() {
    assert_error!(
        CacheGeometry::new(32 * 1024, 64, 0, 2),
        ConfigError::ZeroResource("cache parameter"),
        "cache parameter"
    );
    let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).unwrap();
    assert_error!(
        HierarchyConfig::new(l1, l1, None, 0),
        ConfigError::ZeroResource("memory latency"),
        "memory latency"
    );
}

#[test]
fn not_power_of_two_from_builder_and_caches() {
    assert_error!(
        MachineConfigBuilder::new().btb_entries(1000).build(),
        ConfigError::NotPowerOfTwo(_, 1000),
        "power of two, got 1000"
    );
    assert_error!(
        CacheGeometry::new(3000, 64, 4, 2),
        ConfigError::NotPowerOfTwo("cache size", 3000),
        "cache size must be a power of two"
    );
}

#[test]
fn geometry_rejects_indivisible_ways() {
    // 8 KiB / 64 B lines = 128 lines; 3 ways does not divide them.
    assert_error!(
        CacheGeometry::new(8 * 1024, 64, 3, 2),
        ConfigError::Geometry {
            size_bytes: 8192,
            line_bytes: 64,
            ways: 3,
        },
        "invalid cache geometry"
    );
}

#[test]
fn latency_ordering_must_increase_outward() {
    let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).unwrap();
    let slow_l2 = CacheGeometry::new(256 * 1024, 64, 8, 2).unwrap();
    assert_error!(
        HierarchyConfig::new(l1, l1, Some(slow_l2), 200),
        ConfigError::LatencyOrdering,
        "strictly increase outward"
    );
    // No L2: memory must still be slower than L1.
    assert_error!(
        HierarchyConfig::new(l1, l1, None, 1),
        ConfigError::LatencyOrdering,
        "strictly increase outward"
    );
}

#[test]
fn history_length_from_builder() {
    // 16 history bits cannot index a 256-entry gshare table.
    assert_error!(
        MachineConfigBuilder::new()
            .predictor(PredictorConfig::GShare {
                entries: 256,
                history_bits: 16,
            })
            .build(),
        ConfigError::HistoryLength(16),
        "history length of 16 bits"
    );
    assert_error!(
        MachineConfigBuilder::new()
            .predictor(PredictorConfig::GShare {
                entries: 256,
                history_bits: 0,
            })
            .build(),
        ConfigError::HistoryLength(0),
        "history length of 0 bits"
    );
}

#[test]
fn window_exceeds_rob_from_builder() {
    assert_error!(
        MachineConfigBuilder::new()
            .window_size(256)
            .rob_size(128)
            .build(),
        ConfigError::WindowExceedsRob {
            window: 256,
            rob: 128,
        },
        "issue window (256) exceeds reorder buffer (128)"
    );
}

#[test]
fn width_too_large_from_builder() {
    assert_error!(
        MachineConfigBuilder::new().width(128).build(),
        ConfigError::WidthTooLarge(_, 128),
        "exceeds the supported maximum of 64"
    );
}
