//! Cache geometry and memory-hierarchy configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::prefetch_cfg::PrefetchConfig;

/// Replacement policy selector for a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementKind {
    /// Least-recently-used (the baseline policy).
    #[default]
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Pseudo-random replacement (deterministic xorshift inside the model).
    Random,
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplacementKind::Lru => "lru",
            ReplacementKind::Fifo => "fifo",
            ReplacementKind::Random => "random",
        };
        f.write_str(s)
    }
}

/// Geometry and timing of a single cache level.
///
/// # Examples
///
/// ```
/// use bmp_uarch::CacheGeometry;
///
/// let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).unwrap();
/// assert_eq!(l1.sets(), 128);
/// assert_eq!(l1.lines(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    ways: u32,
    hit_latency: u32,
    replacement: ReplacementKind,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// `size_bytes` is the total capacity, `line_bytes` the block size,
    /// `ways` the associativity, and `hit_latency` the access latency in
    /// cycles on a hit. Replacement defaults to LRU; see
    /// [`CacheGeometry::with_replacement`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is zero, if `size_bytes`
    /// or `line_bytes` is not a power of two, or if the geometry does not
    /// yield a whole power-of-two number of sets.
    pub fn new(
        size_bytes: u64,
        line_bytes: u32,
        ways: u32,
        hit_latency: u32,
    ) -> Result<Self, ConfigError> {
        if size_bytes == 0 || line_bytes == 0 || ways == 0 || hit_latency == 0 {
            return Err(ConfigError::ZeroResource("cache parameter"));
        }
        if !size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("cache size", size_bytes));
        }
        if !line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo(
                "cache line size",
                u64::from(line_bytes),
            ));
        }
        let lines = size_bytes / u64::from(line_bytes);
        if lines == 0 || !lines.is_multiple_of(u64::from(ways)) {
            return Err(ConfigError::Geometry {
                size_bytes,
                line_bytes,
                ways,
            });
        }
        let sets = lines / u64::from(ways);
        if !sets.is_power_of_two() {
            return Err(ConfigError::Geometry {
                size_bytes,
                line_bytes,
                ways,
            });
        }
        Ok(Self {
            size_bytes,
            line_bytes,
            ways,
            hit_latency,
            replacement: ReplacementKind::Lru,
        })
    }

    /// Returns a copy using the given replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (ways per set).
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Hit latency in cycles.
    #[inline]
    pub fn hit_latency(&self) -> u32 {
        self.hit_latency
    }

    /// Replacement policy.
    #[inline]
    pub fn replacement(&self) -> ReplacementKind {
        self.replacement
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes)
    }
}

/// Configuration of the full memory hierarchy: split L1 caches, an optional
/// unified L2, and the main-memory latency.
///
/// The hierarchy distinguishes *short* misses (L1 miss that hits in L2 —
/// contributor (v) in the paper) from *long* misses (L2 miss to memory,
/// which the interval model treats as a miss event of its own).
///
/// # Examples
///
/// ```
/// use bmp_uarch::HierarchyConfig;
///
/// let h = HierarchyConfig::default();
/// assert!(h.mem_latency() > h.l2().unwrap().hit_latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HierarchyConfig {
    l1i: CacheGeometry,
    l1d: CacheGeometry,
    l2: Option<CacheGeometry>,
    mem_latency: u32,
    prefetch: PrefetchConfig,
}

impl HierarchyConfig {
    /// Creates a hierarchy from explicit levels.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::LatencyOrdering`] if latencies are not
    /// strictly increasing outward (L1 < L2 < memory), or
    /// [`ConfigError::ZeroResource`] if `mem_latency` is zero.
    pub fn new(
        l1i: CacheGeometry,
        l1d: CacheGeometry,
        l2: Option<CacheGeometry>,
        mem_latency: u32,
    ) -> Result<Self, ConfigError> {
        if mem_latency == 0 {
            return Err(ConfigError::ZeroResource("memory latency"));
        }
        let min_l1 = l1i.hit_latency().min(l1d.hit_latency());
        if let Some(l2c) = l2 {
            if l2c.hit_latency() <= l1i.hit_latency().max(l1d.hit_latency()) {
                return Err(ConfigError::LatencyOrdering);
            }
            if mem_latency <= l2c.hit_latency() {
                return Err(ConfigError::LatencyOrdering);
            }
        } else if mem_latency <= min_l1 {
            return Err(ConfigError::LatencyOrdering);
        }
        Ok(Self {
            l1i,
            l1d,
            l2,
            mem_latency,
            prefetch: PrefetchConfig::off(),
        })
    }

    /// Returns a copy with the given prefetcher configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `prefetch` is invalid.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Result<Self, ConfigError> {
        prefetch.validate()?;
        self.prefetch = prefetch;
        Ok(self)
    }

    /// The prefetcher configuration.
    #[inline]
    pub fn prefetch(&self) -> PrefetchConfig {
        self.prefetch
    }

    /// L1 instruction-cache geometry.
    #[inline]
    pub fn l1i(&self) -> CacheGeometry {
        self.l1i
    }

    /// L1 data-cache geometry.
    #[inline]
    pub fn l1d(&self) -> CacheGeometry {
        self.l1d
    }

    /// Unified L2 geometry, if configured.
    #[inline]
    pub fn l2(&self) -> Option<CacheGeometry> {
        self.l2
    }

    /// Main-memory access latency in cycles.
    #[inline]
    pub fn mem_latency(&self) -> u32 {
        self.mem_latency
    }

    /// Latency of a *short* data miss: L1D miss that hits in the L2 (or in
    /// memory when no L2 is configured).
    pub fn short_dmiss_latency(&self) -> u32 {
        self.l2.map_or(self.mem_latency, |l2| l2.hit_latency())
    }

    /// Latency of a *long* data miss: all the way to memory.
    pub fn long_dmiss_latency(&self) -> u32 {
        self.mem_latency
    }
}

impl Default for HierarchyConfig {
    /// The baseline hierarchy: 32 KiB 4-way L1I and L1D with 64-byte lines
    /// and 2-cycle hits, a 1 MiB 8-way L2 with a 12-cycle hit latency, and
    /// a 200-cycle memory.
    fn default() -> Self {
        let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).expect("valid baseline L1");
        let l2 = CacheGeometry::new(1024 * 1024, 64, 8, 12).expect("valid baseline L2");
        Self::new(l1, l1, Some(l2), 200).expect("valid baseline hierarchy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basic() {
        let g = CacheGeometry::new(64 * 1024, 64, 8, 3).unwrap();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 1024);
        assert_eq!(g.ways(), 8);
    }

    #[test]
    fn geometry_rejects_non_power_of_two_size() {
        assert!(matches!(
            CacheGeometry::new(48 * 1024, 64, 4, 2),
            Err(ConfigError::NotPowerOfTwo("cache size", _))
        ));
    }

    #[test]
    fn geometry_rejects_non_power_of_two_line() {
        assert!(CacheGeometry::new(32 * 1024, 48, 4, 2).is_err());
    }

    #[test]
    fn geometry_rejects_zero() {
        assert!(CacheGeometry::new(0, 64, 4, 2).is_err());
        assert!(CacheGeometry::new(32 * 1024, 64, 0, 2).is_err());
        assert!(CacheGeometry::new(32 * 1024, 64, 4, 0).is_err());
    }

    #[test]
    fn geometry_rejects_non_power_of_two_sets() {
        // 32 KiB / 64 B = 512 lines; 3 ways does not divide evenly.
        assert!(CacheGeometry::new(32 * 1024, 64, 3, 2).is_err());
    }

    #[test]
    fn fully_associative_is_allowed() {
        let g = CacheGeometry::new(4096, 64, 64, 2).unwrap();
        assert_eq!(g.sets(), 1);
    }

    #[test]
    fn hierarchy_latency_ordering_enforced() {
        let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).unwrap();
        let slow_l2 = CacheGeometry::new(1024 * 1024, 64, 8, 2).unwrap();
        assert!(matches!(
            HierarchyConfig::new(l1, l1, Some(slow_l2), 200),
            Err(ConfigError::LatencyOrdering)
        ));
        let l2 = CacheGeometry::new(1024 * 1024, 64, 8, 12).unwrap();
        assert!(HierarchyConfig::new(l1, l1, Some(l2), 12).is_err());
        assert!(HierarchyConfig::new(l1, l1, Some(l2), 200).is_ok());
    }

    #[test]
    fn short_vs_long_miss_latency() {
        let h = HierarchyConfig::default();
        assert_eq!(h.short_dmiss_latency(), 12);
        assert_eq!(h.long_dmiss_latency(), 200);
        let l1 = CacheGeometry::new(32 * 1024, 64, 4, 2).unwrap();
        let no_l2 = HierarchyConfig::new(l1, l1, None, 100).unwrap();
        assert_eq!(no_l2.short_dmiss_latency(), 100);
    }

    #[test]
    fn replacement_default_and_override() {
        let g = CacheGeometry::new(1024, 64, 2, 1).unwrap();
        assert_eq!(g.replacement(), ReplacementKind::Lru);
        assert_eq!(
            g.with_replacement(ReplacementKind::Fifo).replacement(),
            ReplacementKind::Fifo
        );
    }
}
