//! Hardware-prefetcher configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Configuration of the (optional) hardware prefetchers.
///
/// Prefetching attacks contributor (v) of the misprediction penalty —
/// short D-cache misses that stretch the chains feeding a branch — and
/// the I-cache miss events; experiment E-X4 quantifies both.
///
/// # Examples
///
/// ```
/// use bmp_uarch::PrefetchConfig;
///
/// let p = PrefetchConfig::aggressive();
/// assert!(p.l1d_stride && p.l1i_next_line);
/// assert!(p.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Next-line instruction prefetch: an L1I miss also fills the
    /// following line.
    pub l1i_next_line: bool,
    /// PC-indexed stride prefetcher (reference prediction table) on the
    /// data side.
    pub l1d_stride: bool,
    /// Entries in the stride table (power of two).
    pub stride_table_entries: u32,
    /// Prefetch degree: lines fetched ahead once a stride is confident.
    pub degree: u32,
}

impl PrefetchConfig {
    /// Both prefetchers off (the baseline, matching the paper's era).
    pub fn off() -> Self {
        Self {
            l1i_next_line: false,
            l1d_stride: false,
            stride_table_entries: 64,
            degree: 2,
        }
    }

    /// Next-line I-prefetch plus a 64-entry, degree-2 stride prefetcher.
    pub fn aggressive() -> Self {
        Self {
            l1i_next_line: true,
            l1d_stride: true,
            stride_table_entries: 64,
            degree: 2,
        }
    }

    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the stride table is not a power of
    /// two or the degree is zero while the stride prefetcher is enabled.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.l1d_stride {
            if self.stride_table_entries == 0 {
                return Err(ConfigError::ZeroResource("stride table entries"));
            }
            if !self.stride_table_entries.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo(
                    "stride table entries",
                    u64::from(self.stride_table_entries),
                ));
            }
            if self.degree == 0 {
                return Err(ConfigError::ZeroResource("prefetch degree"));
            }
        }
        Ok(())
    }
}

impl Default for PrefetchConfig {
    /// Prefetching off.
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_valid() {
        assert!(PrefetchConfig::off().validate().is_ok());
        assert!(PrefetchConfig::aggressive().validate().is_ok());
        assert_eq!(PrefetchConfig::default(), PrefetchConfig::off());
    }

    #[test]
    fn rejects_bad_stride_table() {
        let mut p = PrefetchConfig::aggressive();
        p.stride_table_entries = 100;
        assert!(p.validate().is_err());
        p.stride_table_entries = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_zero_degree_when_enabled() {
        let mut p = PrefetchConfig::aggressive();
        p.degree = 0;
        assert!(p.validate().is_err());
        // Irrelevant when the stride prefetcher is off.
        let mut off = PrefetchConfig::off();
        off.degree = 0;
        assert!(off.validate().is_ok());
    }
}
