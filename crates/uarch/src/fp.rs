//! Content fingerprinting for configuration values.
//!
//! The experiment harness memoizes synthesized traces and simulation
//! results in a content-addressed cache; the keys are 64-bit FNV-1a
//! hashes of the *values* that determine the artifact (a workload
//! profile, a machine configuration, simulation options). Every
//! configuration type in this workspace derives `Debug` with full field
//! coverage, so hashing the `Debug` rendering is a stable, dependency-free
//! content address: two values fingerprint equal iff they render equal,
//! and any field change changes the key.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints any `Debug` value by hashing its rendering.
pub fn fingerprint_debug<T: std::fmt::Debug>(value: &T) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

/// Streaming FNV-1a [`std::hash::Hasher`].
///
/// The same function as [`fnv1a`], exposed through the standard hasher
/// interface so `HashMap`/`HashSet` can key on it. FNV is a fast,
/// deterministic, non-keyed hash — well suited to the small integer-keyed
/// maps in the workload generator, where SipHash's DoS resistance buys
/// nothing and its per-lookup cost shows up in profiles.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// `BuildHasher` producing [`FnvHasher`]s; plugs into `HashMap::with_hasher`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` keyed by the deterministic FNV-1a hasher.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` keyed by the deterministic FNV-1a hasher.
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_repeats() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"0"));
    }

    #[test]
    fn hasher_matches_free_function() {
        use std::hash::Hasher;
        let mut h = FnvHasher::default();
        h.write(b"abc");
        assert_eq!(h.finish(), fnv1a(b"abc"));
        let mut split = FnvHasher::default();
        split.write(b"ab");
        split.write(b"c");
        assert_eq!(split.finish(), fnv1a(b"abc"));
    }

    #[test]
    fn fnv_maps_work() {
        let mut m: FnvHashMap<u64, u32> = FnvHashMap::default();
        m.insert(7, 1);
        m.insert(9, 2);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FnvHashSet<usize> = FnvHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }

    #[test]
    fn debug_fingerprint_tracks_value() {
        assert_eq!(
            fingerprint_debug(&(1u32, "x")),
            fingerprint_debug(&(1u32, "x"))
        );
        assert_ne!(
            fingerprint_debug(&(1u32, "x")),
            fingerprint_debug(&(2u32, "x"))
        );
    }
}
