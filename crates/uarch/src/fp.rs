//! Content fingerprinting for configuration values.
//!
//! The experiment harness memoizes synthesized traces and simulation
//! results in a content-addressed cache; the keys are 64-bit FNV-1a
//! hashes of the *values* that determine the artifact (a workload
//! profile, a machine configuration, simulation options). Every
//! configuration type in this workspace derives `Debug` with full field
//! coverage, so hashing the `Debug` rendering is a stable, dependency-free
//! content address: two values fingerprint equal iff they render equal,
//! and any field change changes the key.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints any `Debug` value by hashing its rendering.
pub fn fingerprint_debug<T: std::fmt::Debug>(value: &T) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_repeats() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"0"));
    }

    #[test]
    fn debug_fingerprint_tracks_value() {
        assert_eq!(
            fingerprint_debug(&(1u32, "x")),
            fingerprint_debug(&(1u32, "x"))
        );
        assert_ne!(
            fingerprint_debug(&(1u32, "x")),
            fingerprint_debug(&(2u32, "x"))
        );
    }
}
