//! The top-level machine configuration and its builder.

use serde::{Deserialize, Serialize};

use crate::cache_cfg::HierarchyConfig;
use crate::error::ConfigError;
use crate::fu::{FuPool, LatencyTable};
use crate::predictor_cfg::{IndirectPredictorConfig, PredictorConfig};

/// Maximum supported pipeline width; keeps per-cycle scratch arrays small.
const MAX_WIDTH: u32 = 64;

/// Complete description of a superscalar out-of-order machine.
///
/// A `MachineConfig` fully determines both the cycle-level simulator in
/// `bmp-sim` and the analytical interval model in `bmp-core`, so the two can
/// be compared apples-to-apples (experiment E-F10).
///
/// Construct one with [`MachineConfigBuilder`] (or start from a preset in
/// [`presets`](crate::presets) and adjust via
/// [`MachineConfig::to_builder`]). Fields are public-read via accessors on
/// the struct itself: the struct is a validated value, so the fields are
/// exposed directly as `pub` but can only be produced through validation.
///
/// # Examples
///
/// ```
/// use bmp_uarch::{MachineConfig, MachineConfigBuilder};
///
/// let cfg = MachineConfigBuilder::new()
///     .dispatch_width(4)
///     .frontend_depth(5)
///     .window_size(64)
///     .rob_size(128)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.effective_fetch_width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (up to the first taken branch).
    pub fetch_width: u32,
    /// Instructions dispatched into the window per cycle. This is the `D`
    /// of the interval model: the steady-state throughput of a balanced
    /// design.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Frontend pipeline depth in cycles: the delay between fetching an
    /// instruction and its earliest dispatch — contributor (i), the refill
    /// component `c_fe` of the misprediction penalty.
    pub frontend_depth: u32,
    /// Issue-window (scheduler) capacity in instructions.
    pub window_size: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_size: u32,
    /// Functional-unit pool.
    pub fus: FuPool,
    /// Per-class execution latencies — contributor (iv).
    pub latencies: LatencyTable,
    /// Memory hierarchy configuration — contributors (v) and the long-miss
    /// events.
    pub caches: HierarchyConfig,
    /// Branch direction predictor.
    pub predictor: PredictorConfig,
    /// Indirect-branch target predictor.
    pub indirect_predictor: IndirectPredictorConfig,
    /// Branch target buffer entries (power of two).
    pub btb_entries: u32,
    /// Return-address-stack depth.
    pub ras_entries: u32,
}

impl MachineConfig {
    /// The fetch width actually achievable per cycle, which is bounded by
    /// the dispatch width in a balanced design.
    pub fn effective_fetch_width(&self) -> u32 {
        self.fetch_width.min(self.dispatch_width)
    }

    /// Returns a builder pre-populated with this configuration, for making
    /// derived variants (parameter sweeps).
    pub fn to_builder(&self) -> MachineConfigBuilder {
        MachineConfigBuilder { cfg: self.clone() }
    }

    /// A 64-bit content fingerprint of the full configuration, used as a
    /// cache key by the experiment harness (see [`crate::fp`]). Two
    /// configurations fingerprint equal iff every field is equal.
    pub fn fingerprint(&self) -> u64 {
        crate::fp::fingerprint_debug(self)
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for the individual conditions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("fetch width", self.fetch_width),
            ("dispatch width", self.dispatch_width),
            ("issue width", self.issue_width),
            ("commit width", self.commit_width),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroResource(name));
            }
            if v > MAX_WIDTH {
                return Err(ConfigError::WidthTooLarge(name, v));
            }
        }
        if self.frontend_depth == 0 {
            return Err(ConfigError::ZeroResource("frontend depth"));
        }
        if self.window_size == 0 {
            return Err(ConfigError::ZeroResource("window size"));
        }
        if self.rob_size == 0 {
            return Err(ConfigError::ZeroResource("rob size"));
        }
        if self.window_size > self.rob_size {
            return Err(ConfigError::WindowExceedsRob {
                window: self.window_size,
                rob: self.rob_size,
            });
        }
        if self.btb_entries == 0 {
            return Err(ConfigError::ZeroResource("btb entries"));
        }
        if !self.btb_entries.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo(
                "btb entries",
                u64::from(self.btb_entries),
            ));
        }
        if self.ras_entries == 0 {
            return Err(ConfigError::ZeroResource("ras entries"));
        }
        self.predictor.validate()?;
        self.indirect_predictor.validate()?;
        Ok(())
    }
}

impl std::fmt::Display for MachineConfig {
    /// One-line machine summary for logs and reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-wide ooo, {}-deep frontend, window {}/{} rob, {} predictor,              l1 {}K/{}K, l2 {}, mem {}c",
            self.dispatch_width,
            self.frontend_depth,
            self.window_size,
            self.rob_size,
            self.predictor,
            self.caches.l1i().size_bytes() / 1024,
            self.caches.l1d().size_bytes() / 1024,
            self.caches
                .l2()
                .map(|l2| format!("{}K", l2.size_bytes() / 1024))
                .unwrap_or_else(|| "none".to_owned()),
            self.caches.mem_latency(),
        )
    }
}

impl Default for MachineConfig {
    /// The baseline 4-wide machine; identical to
    /// [`presets::baseline_4wide`](crate::presets::baseline_4wide).
    fn default() -> Self {
        crate::presets::baseline_4wide()
    }
}

/// Builder for [`MachineConfig`].
///
/// Starts from the baseline 4-wide machine; every setter overrides one
/// field, and [`build`](MachineConfigBuilder::build) validates the result.
///
/// # Examples
///
/// ```
/// use bmp_uarch::MachineConfigBuilder;
///
/// let cfg = MachineConfigBuilder::new().frontend_depth(12).build()?;
/// assert_eq!(cfg.frontend_depth, 12);
/// # Ok::<(), bmp_uarch::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MachineConfigBuilder {
    /// Creates a builder seeded with the baseline 4-wide machine.
    pub fn new() -> Self {
        Self {
            cfg: crate::presets::baseline_4wide(),
        }
    }

    /// Sets the fetch width.
    pub fn fetch_width(&mut self, v: u32) -> &mut Self {
        self.cfg.fetch_width = v;
        self
    }

    /// Sets the dispatch width (the interval model's `D`).
    pub fn dispatch_width(&mut self, v: u32) -> &mut Self {
        self.cfg.dispatch_width = v;
        self
    }

    /// Sets the issue width.
    pub fn issue_width(&mut self, v: u32) -> &mut Self {
        self.cfg.issue_width = v;
        self
    }

    /// Sets the commit width.
    pub fn commit_width(&mut self, v: u32) -> &mut Self {
        self.cfg.commit_width = v;
        self
    }

    /// Sets all four widths at once (a "W-wide machine").
    pub fn width(&mut self, v: u32) -> &mut Self {
        self.cfg.fetch_width = v;
        self.cfg.dispatch_width = v;
        self.cfg.issue_width = v;
        self.cfg.commit_width = v;
        self
    }

    /// Sets the frontend pipeline depth (contributor i).
    pub fn frontend_depth(&mut self, v: u32) -> &mut Self {
        self.cfg.frontend_depth = v;
        self
    }

    /// Sets the issue-window size.
    pub fn window_size(&mut self, v: u32) -> &mut Self {
        self.cfg.window_size = v;
        self
    }

    /// Sets the reorder-buffer size.
    pub fn rob_size(&mut self, v: u32) -> &mut Self {
        self.cfg.rob_size = v;
        self
    }

    /// Sets the functional-unit pool.
    pub fn fus(&mut self, v: FuPool) -> &mut Self {
        self.cfg.fus = v;
        self
    }

    /// Sets the latency table (contributor iv).
    pub fn latencies(&mut self, v: LatencyTable) -> &mut Self {
        self.cfg.latencies = v;
        self
    }

    /// Sets the cache hierarchy (contributor v / long-miss events).
    pub fn caches(&mut self, v: HierarchyConfig) -> &mut Self {
        self.cfg.caches = v;
        self
    }

    /// Sets the branch predictor.
    pub fn predictor(&mut self, v: PredictorConfig) -> &mut Self {
        self.cfg.predictor = v;
        self
    }

    /// Sets the indirect-target predictor.
    pub fn indirect_predictor(&mut self, v: IndirectPredictorConfig) -> &mut Self {
        self.cfg.indirect_predictor = v;
        self
    }

    /// Sets the BTB size.
    pub fn btb_entries(&mut self, v: u32) -> &mut Self {
        self.cfg.btb_entries = v;
        self
    }

    /// Sets the return-address-stack depth.
    pub fn ras_entries(&mut self, v: u32) -> &mut Self {
        self.cfg.ras_entries = v;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; see
    /// [`MachineConfig::validate`].
    pub fn build(&self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert!(MachineConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_roundtrip() {
        let cfg = MachineConfigBuilder::new()
            .width(8)
            .frontend_depth(10)
            .window_size(128)
            .rob_size(256)
            .build()
            .unwrap();
        assert_eq!(cfg.fetch_width, 8);
        assert_eq!(cfg.dispatch_width, 8);
        assert_eq!(cfg.issue_width, 8);
        assert_eq!(cfg.commit_width, 8);
        assert_eq!(cfg.frontend_depth, 10);
    }

    #[test]
    fn rejects_window_larger_than_rob() {
        let err = MachineConfigBuilder::new()
            .window_size(256)
            .rob_size(128)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::WindowExceedsRob { .. }));
    }

    #[test]
    fn rejects_zero_widths() {
        assert!(MachineConfigBuilder::new().fetch_width(0).build().is_err());
        assert!(MachineConfigBuilder::new()
            .dispatch_width(0)
            .build()
            .is_err());
        assert!(MachineConfigBuilder::new().issue_width(0).build().is_err());
        assert!(MachineConfigBuilder::new().commit_width(0).build().is_err());
    }

    #[test]
    fn rejects_huge_width() {
        assert!(matches!(
            MachineConfigBuilder::new().fetch_width(65).build(),
            Err(ConfigError::WidthTooLarge("fetch width", 65))
        ));
    }

    #[test]
    fn rejects_zero_frontend_depth() {
        assert!(MachineConfigBuilder::new()
            .frontend_depth(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_btb() {
        assert!(MachineConfigBuilder::new().btb_entries(0).build().is_err());
        assert!(MachineConfigBuilder::new()
            .btb_entries(1000)
            .build()
            .is_err());
        assert!(MachineConfigBuilder::new()
            .btb_entries(1024)
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_invalid_predictor() {
        use crate::predictor_cfg::PredictorConfig;
        let bad = PredictorConfig::GShare {
            entries: 16,
            history_bits: 10,
        };
        assert!(MachineConfigBuilder::new().predictor(bad).build().is_err());
    }

    #[test]
    fn effective_fetch_width_bounded_by_dispatch() {
        let cfg = MachineConfigBuilder::new()
            .fetch_width(8)
            .dispatch_width(4)
            .build()
            .unwrap();
        assert_eq!(cfg.effective_fetch_width(), 4);
    }

    #[test]
    fn to_builder_preserves_fields() {
        let cfg = MachineConfig::default();
        let again = cfg.to_builder().build().unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn debug_is_nonempty() {
        let cfg = MachineConfig::default();
        assert!(format!("{cfg:?}").contains("dispatch_width"));
    }

    #[test]
    fn display_summarizes() {
        let s = MachineConfig::default().to_string();
        assert!(s.contains("4-wide"));
        assert!(s.contains("tournament"));
        assert!(s.contains("l2 1024K"));
    }
}
