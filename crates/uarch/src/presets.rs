//! Ready-made machine configurations.
//!
//! [`baseline_4wide`] reproduces the class of machine evaluated in the
//! paper: a 4-wide out-of-order superscalar with a 5-stage frontend, a
//! 64-entry issue window backed by a 128-entry ROB, a gshare predictor, and
//! a two-level cache hierarchy. The other presets are the sweep variants
//! used by the sensitivity experiments (E-F6 .. E-F9).

use crate::cache_cfg::{CacheGeometry, HierarchyConfig};
use crate::config::{MachineConfig, MachineConfigBuilder};
use crate::fu::{FuPool, LatencyTable};
use crate::predictor_cfg::{IndirectPredictorConfig, PredictorConfig};

/// The baseline 4-wide out-of-order machine (experiment table E-T1).
///
/// # Examples
///
/// ```
/// let cfg = bmp_uarch::presets::baseline_4wide();
/// assert_eq!(cfg.dispatch_width, 4);
/// assert_eq!(cfg.frontend_depth, 5);
/// assert!(cfg.validate().is_ok());
/// ```
pub fn baseline_4wide() -> MachineConfig {
    let cfg = MachineConfig {
        fetch_width: 4,
        dispatch_width: 4,
        issue_width: 4,
        commit_width: 4,
        frontend_depth: 5,
        window_size: 64,
        rob_size: 128,
        fus: FuPool::default(),
        latencies: LatencyTable::default(),
        caches: HierarchyConfig::default(),
        predictor: PredictorConfig::default(),
        indirect_predictor: IndirectPredictorConfig::default(),
        btb_entries: 2048,
        ras_entries: 16,
    };
    debug_assert!(cfg.validate().is_ok());
    cfg
}

/// A wider, more aggressive 8-wide machine for contrast experiments.
///
/// # Panics
///
/// Never panics; the preset is statically valid.
pub fn wide_8way() -> MachineConfig {
    baseline_4wide()
        .to_builder()
        .width(8)
        .window_size(128)
        .rob_size(256)
        .build()
        .expect("preset is valid")
}

/// The baseline machine with the frontend deepened to `depth` stages
/// (the E-F6 pipeline-depth sweep).
///
/// # Errors
///
/// Returns an error if `depth` is zero.
pub fn deep_frontend(depth: u32) -> Result<MachineConfig, crate::ConfigError> {
    baseline_4wide().to_builder().frontend_depth(depth).build()
}

/// The baseline machine with all non-memory functional-unit latencies
/// scaled by `factor` (the E-F7 latency sweep).
pub fn scaled_latencies(factor: f64) -> MachineConfig {
    let lat = LatencyTable::default().scaled(factor);
    baseline_4wide()
        .to_builder()
        .latencies(lat)
        .build()
        .expect("scaling preserves validity")
}

/// The baseline machine with an L1 data cache of `size_bytes`
/// (the E-F9 short-miss sweep). Line size, associativity and latencies are
/// kept at baseline values.
///
/// # Errors
///
/// Returns an error if `size_bytes` does not form a valid geometry with
/// 64-byte lines and 4 ways.
pub fn l1d_sized(size_bytes: u64) -> Result<MachineConfig, crate::ConfigError> {
    let base = HierarchyConfig::default();
    let l1d = CacheGeometry::new(size_bytes, 64, 4, 2)?;
    let caches = HierarchyConfig::new(base.l1i(), l1d, base.l2(), base.mem_latency())?;
    baseline_4wide().to_builder().caches(caches).build()
}

/// The predictor generations swept by the `ex_predictor_generations`
/// experiment family, oldest first: bimodal (mid-80s) → gshare (1993) →
/// perceptron (2001) → TAGE (2006). The names key the shared cell
/// labels in `bmp-bench`, the `predictor` field of metrics documents,
/// and the BMP6xx lints' per-predictor machine reconstruction.
pub const GENERATIONS: [&str; 4] = ["bimodal", "gshare", "perceptron", "tage"];

/// The fixed configuration each named generation runs with, or `None`
/// for an unknown name. Storage budgets are deliberately comparable
/// (4K-entry main tables) so the sweep measures algorithmic progress,
/// not capacity.
pub fn generation_predictor(name: &str) -> Option<PredictorConfig> {
    match name {
        "bimodal" => Some(PredictorConfig::Bimodal { entries: 4096 }),
        "gshare" => Some(PredictorConfig::GShare {
            entries: 4096,
            history_bits: 12,
        }),
        "perceptron" => Some(PredictorConfig::Perceptron {
            entries: 512,
            history_bits: 24,
        }),
        "tage" => Some(PredictorConfig::Tage {
            base_entries: 4096,
            tagged_entries: 1024,
            tag_bits: 8,
            num_tables: 4,
            min_history: 4,
            max_history: 32,
        }),
        _ => None,
    }
}

/// The baseline machine with the named generation's predictor swapped
/// in, or `None` for an unknown name.
pub fn generation_machine(name: &str) -> Option<MachineConfig> {
    let pcfg = generation_predictor(name)?;
    Some(
        baseline_4wide()
            .to_builder()
            .predictor(pcfg)
            .build()
            .expect("generation configs are valid"),
    )
}

/// The baseline machine with a perfect branch predictor; isolates the other
/// miss events in knock-out runs.
pub fn perfect_branches() -> MachineConfig {
    baseline_4wide()
        .to_builder()
        .predictor(PredictorConfig::Perfect)
        .build()
        .expect("preset is valid")
}

/// An Alpha-21264-flavored configuration: 4-wide, short frontend, the
/// tournament predictor the real chip pioneered.
pub fn alpha21264_like() -> MachineConfig {
    baseline_4wide()
        .to_builder()
        .frontend_depth(7)
        .window_size(64)
        .rob_size(80)
        .predictor(PredictorConfig::Tournament {
            entries: 4096,
            history_bits: 12,
        })
        .build()
        .expect("preset is valid")
}

/// A Pentium-4-flavored deep-pipeline configuration: a 20-plus-stage
/// frontend chasing clock frequency — the design point whose
/// misprediction penalty this paper's framework explains.
pub fn pentium4_like() -> MachineConfig {
    baseline_4wide()
        .to_builder()
        .width(3)
        .frontend_depth(20)
        .window_size(64)
        .rob_size(128)
        .build()
        .expect("preset is valid")
}

/// A small machine for fast unit tests: 2-wide, shallow, tiny caches.
pub fn test_tiny() -> MachineConfig {
    let l1 = CacheGeometry::new(1024, 64, 2, 1).expect("valid tiny L1");
    let l2 = CacheGeometry::new(8192, 64, 4, 6).expect("valid tiny L2");
    let caches = HierarchyConfig::new(l1, l1, Some(l2), 50).expect("valid tiny hierarchy");
    MachineConfigBuilder::new()
        .width(2)
        .frontend_depth(3)
        .window_size(16)
        .rob_size(32)
        .caches(caches)
        .btb_entries(64)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_valid() {
        assert!(baseline_4wide().validate().is_ok());
        assert!(wide_8way().validate().is_ok());
        assert!(perfect_branches().validate().is_ok());
        assert!(test_tiny().validate().is_ok());
        assert!(scaled_latencies(2.0).validate().is_ok());
        assert!(alpha21264_like().validate().is_ok());
        assert!(pentium4_like().validate().is_ok());
    }

    #[test]
    fn era_presets_have_their_signatures() {
        assert_eq!(alpha21264_like().frontend_depth, 7);
        assert_eq!(pentium4_like().frontend_depth, 20);
        assert!(pentium4_like().frontend_depth > alpha21264_like().frontend_depth);
    }

    #[test]
    fn deep_frontend_sweep() {
        for depth in [1, 5, 10, 20, 40] {
            let cfg = deep_frontend(depth).unwrap();
            assert_eq!(cfg.frontend_depth, depth);
        }
        assert!(deep_frontend(0).is_err());
    }

    #[test]
    fn l1d_sweep() {
        for size in [4096, 8192, 16384, 32768, 65536] {
            let cfg = l1d_sized(size).unwrap();
            assert_eq!(cfg.caches.l1d().size_bytes(), size);
            // L1I untouched.
            assert_eq!(cfg.caches.l1i().size_bytes(), 32 * 1024);
        }
    }

    #[test]
    fn perfect_branches_uses_oracle() {
        assert_eq!(perfect_branches().predictor, PredictorConfig::Perfect);
    }

    #[test]
    fn generation_lookup_is_total_over_the_list() {
        for name in GENERATIONS {
            assert!(generation_predictor(name).is_some(), "{name}");
            let cfg = generation_machine(name).unwrap();
            assert_eq!(cfg.predictor.name(), name);
            assert!(cfg.validate().is_ok());
            // All generations share the baseline frontend, so the
            // metrics refill identity is predictor-independent.
            assert_eq!(cfg.frontend_depth, baseline_4wide().frontend_depth);
        }
        assert!(generation_predictor("oracle-of-delphi").is_none());
        assert!(generation_machine("tournament").is_none());
    }

    #[test]
    fn wide_preset_scales_buffers() {
        let cfg = wide_8way();
        assert_eq!(cfg.dispatch_width, 8);
        assert!(cfg.window_size >= baseline_4wide().window_size);
    }
}
