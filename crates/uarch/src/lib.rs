//! Machine-configuration layer for the `mispredict` workspace.
//!
//! This crate is the bottom of the dependency stack: it defines the *plain
//! data* that describes a superscalar out-of-order machine — pipeline
//! widths, frontend depth, window/ROB sizes, functional-unit pools and
//! latencies, cache geometry, and branch-predictor configuration. The
//! simulator (`bmp-sim`), the analytical interval model (`bmp-core`) and
//! the experiment harness all consume the same [`MachineConfig`], so a single
//! configuration value fully determines an experiment's machine.
//!
//! The baseline machine ([`presets::baseline_4wide`]) follows the 4-wide
//! out-of-order configuration used throughout Eyerman, Smith & Eeckhout,
//! *"Characterizing the branch misprediction penalty"* (ISPASS 2006).
//! `frontend_depth` is the paper's `c_fe` — the refill term that every
//! accounting identity in `docs/OBSERVABILITY.md` conserves exactly.
//! `bmp-lint` (see `docs/ANALYZER.md`) checks a configuration against
//! the balance premises the interval model assumes.
//!
//! # Examples
//!
//! ```
//! use bmp_uarch::{presets, MachineConfig};
//!
//! let baseline: MachineConfig = presets::baseline_4wide();
//! assert_eq!(baseline.dispatch_width, 4);
//!
//! // Derive a deep-pipeline variant for a frontend-depth sweep.
//! let deep = baseline.to_builder().frontend_depth(20).build().unwrap();
//! assert_eq!(deep.frontend_depth, 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache_cfg;
mod config;
mod error;
pub mod fp;
mod fu;
mod predictor_cfg;
mod prefetch_cfg;
pub mod presets;

pub use cache_cfg::{CacheGeometry, HierarchyConfig, ReplacementKind};
pub use config::{MachineConfig, MachineConfigBuilder};
pub use error::ConfigError;
pub use fu::{FuKind, FuPool, LatencyTable, OpClass, FU_KINDS, OP_CLASSES};
pub use predictor_cfg::{IndirectPredictorConfig, PredictorConfig};
pub use prefetch_cfg::PrefetchConfig;
