//! Branch-predictor configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Selects and parameterizes the branch direction predictor.
///
/// The concrete predictor implementations live in the `bmp-branch` crate;
/// this is the plain-data description carried inside a
/// [`MachineConfig`](crate::MachineConfig).
///
/// # Examples
///
/// ```
/// use bmp_uarch::PredictorConfig;
///
/// let cfg = PredictorConfig::GShare { entries: 4096, history_bits: 12 };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorConfig {
    /// Statically predict every branch taken.
    AlwaysTaken,
    /// Statically predict every branch not-taken.
    AlwaysNotTaken,
    /// Bimodal table of 2-bit saturating counters indexed by PC.
    Bimodal {
        /// Number of counters (power of two).
        entries: u32,
    },
    /// Global-history gshare predictor.
    GShare {
        /// Number of counters (power of two).
        entries: u32,
        /// Global history length in bits (1..=24, and `2^history_bits`
        /// must not exceed `entries`).
        history_bits: u32,
    },
    /// Local two-level predictor (per-branch history tables).
    Local {
        /// Number of per-branch history registers (power of two).
        history_entries: u32,
        /// Local history length in bits (1..=16).
        history_bits: u32,
        /// Number of pattern-table counters (power of two).
        pattern_entries: u32,
    },
    /// Tournament predictor: bimodal + gshare with a choice table.
    Tournament {
        /// Counters in each component and in the chooser (power of two).
        entries: u32,
        /// Global history length for the gshare component.
        history_bits: u32,
    },
    /// Perceptron predictor (Jiménez & Lin, HPCA 2001): one weight vector
    /// per PC hash over the global history.
    Perceptron {
        /// Number of perceptrons (power of two).
        entries: u32,
        /// Global history length in bits (1..=48).
        history_bits: u32,
    },
    /// TAGE predictor (Seznec & Michaud, JILP 2006): a bimodal base table
    /// plus `num_tables` tagged tables indexed by geometrically growing
    /// global-history lengths, with useful-bit replacement control.
    Tage {
        /// Counters in the bimodal base table (power of two).
        base_entries: u32,
        /// Entries in each tagged table (power of two).
        tagged_entries: u32,
        /// Tag width in bits (4..=16).
        tag_bits: u32,
        /// Number of tagged tables (1..=8).
        num_tables: u32,
        /// History length of the shortest tagged table (1..=64).
        min_history: u32,
        /// History length of the longest tagged table
        /// (`min_history..=64`).
        max_history: u32,
    },
    /// Oracle predictor: never mispredicts. Used to isolate other miss
    /// events in knock-out experiments.
    Perfect,
}

impl PredictorConfig {
    /// Checks the structural validity of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a table size is zero or not a power of
    /// two, or if a history length is zero or implausibly large.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(name: &'static str, v: u32) -> Result<(), ConfigError> {
            if v == 0 {
                return Err(ConfigError::ZeroResource(name));
            }
            if !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo(name, u64::from(v)));
            }
            Ok(())
        }
        match *self {
            PredictorConfig::AlwaysTaken
            | PredictorConfig::AlwaysNotTaken
            | PredictorConfig::Perfect => Ok(()),
            PredictorConfig::Bimodal { entries } => pow2("bimodal entries", entries),
            PredictorConfig::GShare {
                entries,
                history_bits,
            } => {
                pow2("gshare entries", entries)?;
                if history_bits == 0 || history_bits > 24 {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                if 1u64 << history_bits > u64::from(entries) {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                Ok(())
            }
            PredictorConfig::Local {
                history_entries,
                history_bits,
                pattern_entries,
            } => {
                pow2("local history entries", history_entries)?;
                pow2("local pattern entries", pattern_entries)?;
                if history_bits == 0 || history_bits > 16 {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                if 1u64 << history_bits > u64::from(pattern_entries) {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                Ok(())
            }
            PredictorConfig::Tournament {
                entries,
                history_bits,
            } => {
                pow2("tournament entries", entries)?;
                if history_bits == 0 || history_bits > 24 {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                if 1u64 << history_bits > u64::from(entries) {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                Ok(())
            }
            PredictorConfig::Perceptron {
                entries,
                history_bits,
            } => {
                pow2("perceptron entries", entries)?;
                if history_bits == 0 || history_bits > 48 {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                Ok(())
            }
            PredictorConfig::Tage {
                base_entries,
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            } => {
                pow2("tage base entries", base_entries)?;
                pow2("tage tagged entries", tagged_entries)?;
                if !(4..=16).contains(&tag_bits) {
                    return Err(ConfigError::HistoryLength(tag_bits));
                }
                if num_tables == 0 || num_tables > 8 {
                    return Err(ConfigError::ZeroResource("tage tagged tables"));
                }
                if min_history == 0 || max_history > 64 || min_history > max_history {
                    return Err(ConfigError::HistoryLength(max_history));
                }
                // Each tagged table needs a distinct integer history
                // length between min and max.
                if max_history - min_history + 1 < num_tables {
                    return Err(ConfigError::HistoryLength(max_history));
                }
                Ok(())
            }
        }
    }

    /// A short human-readable name, used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorConfig::AlwaysTaken => "always-taken",
            PredictorConfig::AlwaysNotTaken => "always-not-taken",
            PredictorConfig::Bimodal { .. } => "bimodal",
            PredictorConfig::GShare { .. } => "gshare",
            PredictorConfig::Local { .. } => "local",
            PredictorConfig::Tournament { .. } => "tournament",
            PredictorConfig::Perceptron { .. } => "perceptron",
            PredictorConfig::Tage { .. } => "tage",
            PredictorConfig::Perfect => "perfect",
        }
    }
}

impl Default for PredictorConfig {
    /// The baseline predictor: a 4K-entry tournament (bimodal + gshare
    /// with a chooser), the Alpha-21264-style hybrid of the paper's era.
    fn default() -> Self {
        PredictorConfig::Tournament {
            entries: 4096,
            history_bits: 12,
        }
    }
}

impl std::fmt::Display for PredictorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PredictorConfig::Bimodal { entries } => write!(f, "bimodal({entries})"),
            PredictorConfig::GShare {
                entries,
                history_bits,
            } => write!(f, "gshare({entries},h{history_bits})"),
            PredictorConfig::Local {
                history_entries,
                history_bits,
                pattern_entries,
            } => write!(
                f,
                "local({history_entries},h{history_bits},{pattern_entries})"
            ),
            PredictorConfig::Tournament {
                entries,
                history_bits,
            } => write!(f, "tournament({entries},h{history_bits})"),
            PredictorConfig::Perceptron {
                entries,
                history_bits,
            } => write!(f, "perceptron({entries},h{history_bits})"),
            PredictorConfig::Tage {
                base_entries,
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            } => write!(
                f,
                "tage({base_entries},{num_tables}x{tagged_entries},t{tag_bits},\
                 h{min_history}..{max_history})"
            ),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(PredictorConfig::default().validate().is_ok());
    }

    #[test]
    fn static_predictors_always_valid() {
        assert!(PredictorConfig::AlwaysTaken.validate().is_ok());
        assert!(PredictorConfig::AlwaysNotTaken.validate().is_ok());
        assert!(PredictorConfig::Perfect.validate().is_ok());
    }

    #[test]
    fn rejects_non_power_of_two_entries() {
        assert!(PredictorConfig::Bimodal { entries: 1000 }
            .validate()
            .is_err());
        assert!(PredictorConfig::Bimodal { entries: 1024 }
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_history_longer_than_index_space() {
        let bad = PredictorConfig::GShare {
            entries: 1024,
            history_bits: 12,
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::HistoryLength(12))
        ));
        let good = PredictorConfig::GShare {
            entries: 4096,
            history_bits: 12,
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn rejects_zero_history() {
        let bad = PredictorConfig::GShare {
            entries: 4096,
            history_bits: 0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn local_validation() {
        let good = PredictorConfig::Local {
            history_entries: 1024,
            history_bits: 10,
            pattern_entries: 1024,
        };
        assert!(good.validate().is_ok());
        let bad = PredictorConfig::Local {
            history_entries: 1024,
            history_bits: 12,
            pattern_entries: 1024,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(PredictorConfig::Perfect.to_string(), "perfect");
        assert!(PredictorConfig::default()
            .to_string()
            .starts_with("tournament"));
    }

    fn small_tage() -> PredictorConfig {
        PredictorConfig::Tage {
            base_entries: 1024,
            tagged_entries: 256,
            tag_bits: 8,
            num_tables: 4,
            min_history: 4,
            max_history: 32,
        }
    }

    #[test]
    fn tage_validation() {
        assert!(small_tage().validate().is_ok());
        let with = |f: &dyn Fn(&mut PredictorConfig)| {
            let mut c = small_tage();
            f(&mut c);
            c
        };
        for bad in [
            with(&|c| {
                if let PredictorConfig::Tage { base_entries, .. } = c {
                    *base_entries = 1000;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { tagged_entries, .. } = c {
                    *tagged_entries = 0;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { tag_bits, .. } = c {
                    *tag_bits = 3;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { num_tables, .. } = c {
                    *num_tables = 9;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { min_history, .. } = c {
                    *min_history = 0;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { min_history, .. } = c {
                    *min_history = 40;
                }
            }),
            with(&|c| {
                if let PredictorConfig::Tage { max_history, .. } = c {
                    *max_history = 65;
                }
            }),
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn tage_name_and_display() {
        let c = small_tage();
        assert_eq!(c.name(), "tage");
        assert_eq!(c.to_string(), "tage(1024,4x256,t8,h4..32)");
    }
}

/// Selects the indirect-branch *target* predictor.
///
/// Direct branches get their targets from the BTB either way; this only
/// affects [`BranchKind::IndirectJump`]-style transfers whose target
/// varies at run time.
///
/// [`BranchKind::IndirectJump`]: https://docs.rs/bmp-trace
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IndirectPredictorConfig {
    /// Predict the BTB's last-seen target (the classic baseline).
    #[default]
    BtbLastTarget,
    /// A history-hashed target cache ("gtarget", an ITTAGE ancestor):
    /// indexed by PC xor a target-history register, with tags. Learns
    /// cyclic and context-dependent target sequences the BTB cannot.
    GTarget {
        /// Table entries (power of two).
        entries: u32,
        /// Target-history length in hashed bits (1..=16).
        history_bits: u32,
    },
    /// ITTAGE (Seznec, CBP-3 2011): the indirect-target sibling of TAGE.
    /// Tagged target tables over geometric path-history lengths, with
    /// confidence and useful bits; the BTB stays the cold-path fallback.
    Ittage {
        /// Entries in each tagged table (power of two).
        tagged_entries: u32,
        /// Tag width in bits (4..=16).
        tag_bits: u32,
        /// Number of tagged tables (1..=8).
        num_tables: u32,
        /// Path-history length of the shortest table (1..=64).
        min_history: u32,
        /// Path-history length of the longest table
        /// (`min_history..=64`).
        max_history: u32,
    },
}

impl IndirectPredictorConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on a non-power-of-two table or a history
    /// length of 0 or more than 16 bits.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            IndirectPredictorConfig::BtbLastTarget => Ok(()),
            IndirectPredictorConfig::GTarget {
                entries,
                history_bits,
            } => {
                if entries == 0 {
                    return Err(ConfigError::ZeroResource("gtarget entries"));
                }
                if !entries.is_power_of_two() {
                    return Err(ConfigError::NotPowerOfTwo(
                        "gtarget entries",
                        u64::from(entries),
                    ));
                }
                if history_bits == 0 || history_bits > 16 {
                    return Err(ConfigError::HistoryLength(history_bits));
                }
                Ok(())
            }
            IndirectPredictorConfig::Ittage {
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            } => {
                if tagged_entries == 0 {
                    return Err(ConfigError::ZeroResource("ittage tagged entries"));
                }
                if !tagged_entries.is_power_of_two() {
                    return Err(ConfigError::NotPowerOfTwo(
                        "ittage tagged entries",
                        u64::from(tagged_entries),
                    ));
                }
                if !(4..=16).contains(&tag_bits) {
                    return Err(ConfigError::HistoryLength(tag_bits));
                }
                if num_tables == 0 || num_tables > 8 {
                    return Err(ConfigError::ZeroResource("ittage tagged tables"));
                }
                if min_history == 0 || max_history > 64 || min_history > max_history {
                    return Err(ConfigError::HistoryLength(max_history));
                }
                // Each tagged table needs a distinct integer history
                // length between min and max.
                if max_history - min_history + 1 < num_tables {
                    return Err(ConfigError::HistoryLength(max_history));
                }
                Ok(())
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IndirectPredictorConfig::BtbLastTarget => "btb-last-target",
            IndirectPredictorConfig::GTarget { .. } => "gtarget",
            IndirectPredictorConfig::Ittage { .. } => "ittage",
        }
    }
}

#[cfg(test)]
mod indirect_tests {
    use super::*;

    #[test]
    fn default_and_validation() {
        assert_eq!(
            IndirectPredictorConfig::default(),
            IndirectPredictorConfig::BtbLastTarget
        );
        assert!(IndirectPredictorConfig::BtbLastTarget.validate().is_ok());
        assert!(IndirectPredictorConfig::GTarget {
            entries: 512,
            history_bits: 8
        }
        .validate()
        .is_ok());
        assert!(IndirectPredictorConfig::GTarget {
            entries: 500,
            history_bits: 8
        }
        .validate()
        .is_err());
        assert!(IndirectPredictorConfig::GTarget {
            entries: 512,
            history_bits: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn ittage_validation_and_name() {
        let good = IndirectPredictorConfig::Ittage {
            tagged_entries: 256,
            tag_bits: 8,
            num_tables: 3,
            min_history: 2,
            max_history: 16,
        };
        assert!(good.validate().is_ok());
        assert_eq!(good.name(), "ittage");
        for (tagged_entries, tag_bits, num_tables, min_history, max_history) in [
            (200, 8, 3, 2, 16),  // not a power of two
            (256, 2, 3, 2, 16),  // tag too narrow
            (256, 8, 0, 2, 16),  // no tables
            (256, 8, 3, 0, 16),  // zero history
            (256, 8, 3, 20, 16), // min > max
            (256, 8, 3, 2, 100), // history too long
        ] {
            let bad = IndirectPredictorConfig::Ittage {
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            };
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
