//! Operation classes, functional-unit pools and execution latencies.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// The dynamic-instruction classes distinguished by the machine model.
///
/// Every dynamic instruction in a trace belongs to exactly one class; the
/// class selects the functional unit it issues to and its execution latency
/// (for memory operations the latency additionally depends on the cache
/// hierarchy).
///
/// # Examples
///
/// ```
/// use bmp_uarch::OpClass;
///
/// assert!(OpClass::Load.is_memory());
/// assert!(!OpClass::IntAlu.is_memory());
/// assert!(OpClass::Branch.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shifts, compares).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (non-pipelined).
    IntDiv,
    /// Floating-point add/subtract/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt (non-pipelined).
    FpDiv,
    /// Memory load. Latency is resolved by the cache hierarchy.
    Load,
    /// Memory store. Retires from the window once its address is ready.
    Store,
    /// Control-transfer instruction (conditional branch, jump, call, return).
    Branch,
}

/// All operation classes, in a fixed canonical order.
///
/// Useful for building per-class tables and histograms.
pub const OP_CLASSES: [OpClass; 9] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
];

impl OpClass {
    /// Dense index of this class into [`OP_CLASSES`]-ordered tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
        }
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Returns `true` for control-transfer instructions.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// The functional-unit kind this class issues to.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Branch => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::FpAdd => FuKind::FpAlu,
            OpClass::FpMul | OpClass::FpDiv => FuKind::FpMulDiv,
            OpClass::Load | OpClass::Store => FuKind::MemPort,
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Functional-unit kinds, the issue-port resources of the machine.
///
/// Several [`OpClass`]es may share one kind (for example branches execute on
/// the integer ALUs), mirroring SimpleScalar-era resource pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALUs (also execute branches).
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiply/divide unit.
    FpMulDiv,
    /// Cache ports for loads and stores.
    MemPort,
}

/// All functional-unit kinds in canonical order.
pub const FU_KINDS: [FuKind; 5] = [
    FuKind::IntAlu,
    FuKind::IntMulDiv,
    FuKind::FpAlu,
    FuKind::FpMulDiv,
    FuKind::MemPort,
];

impl FuKind {
    /// Dense index of this kind into [`FU_KINDS`]-ordered tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::FpAlu => 2,
            FuKind::FpMulDiv => 3,
            FuKind::MemPort => 4,
        }
    }
}

impl std::fmt::Display for FuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FuKind::IntAlu => "int-alu",
            FuKind::IntMulDiv => "int-mul/div",
            FuKind::FpAlu => "fp-alu",
            FuKind::FpMulDiv => "fp-mul/div",
            FuKind::MemPort => "mem-port",
        };
        f.write_str(s)
    }
}

/// Number of functional units of each kind.
///
/// # Examples
///
/// ```
/// use bmp_uarch::{FuKind, FuPool};
///
/// let pool = FuPool::default();
/// assert!(pool.count(FuKind::IntAlu) >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuPool {
    counts: [u8; 5],
}

impl FuPool {
    /// Creates a pool with explicit per-kind counts (in [`FU_KINDS`] order:
    /// int-alu, int-mul/div, fp-alu, fp-mul/div, mem-port).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroResource`] if any count is zero — every
    /// kind must have at least one unit or some instructions could never
    /// execute.
    pub fn new(counts: [u8; 5]) -> Result<Self, ConfigError> {
        if counts.contains(&0) {
            return Err(ConfigError::ZeroResource("functional unit count"));
        }
        Ok(Self { counts })
    }

    /// Number of units of `kind`.
    #[inline]
    pub fn count(&self, kind: FuKind) -> u8 {
        self.counts[kind.index()]
    }

    /// Total number of units across all kinds.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|&c| u32::from(c)).sum()
    }
}

impl Default for FuPool {
    /// The baseline pool: 4 int ALUs, 1 int mul/div, 2 fp adders,
    /// 1 fp mul/div, 2 memory ports.
    fn default() -> Self {
        Self {
            counts: [4, 1, 2, 1, 2],
        }
    }
}

/// Execution latency (cycles) per operation class.
///
/// Load/store entries give the *execution-stage* latency excluding cache
/// access; the cache hierarchy adds hit/miss latency on top. All latencies
/// are at least 1.
///
/// # Examples
///
/// ```
/// use bmp_uarch::{LatencyTable, OpClass};
///
/// let lat = LatencyTable::default();
/// assert_eq!(lat.latency(OpClass::IntAlu), 1);
/// assert!(lat.latency(OpClass::IntDiv) > lat.latency(OpClass::IntMul));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LatencyTable {
    cycles: [u32; 9],
}

impl LatencyTable {
    /// Creates a table with explicit latencies in [`OP_CLASSES`] order.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroResource`] if any latency is zero.
    pub fn new(cycles: [u32; 9]) -> Result<Self, ConfigError> {
        if cycles.contains(&0) {
            return Err(ConfigError::ZeroResource("operation latency"));
        }
        Ok(Self { cycles })
    }

    /// A table with every class at 1 cycle.
    ///
    /// Used by the interval model's knock-out decomposition to neutralize
    /// the functional-unit-latency contributor.
    pub fn unit() -> Self {
        Self { cycles: [1; 9] }
    }

    /// Latency of `class` in cycles.
    #[inline]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.cycles[class.index()]
    }

    /// Returns a copy with every non-memory latency multiplied by `factor`
    /// (saturating), keeping the minimum of 1.
    ///
    /// Used by the functional-unit-latency sensitivity sweep (E-F7).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut cycles = self.cycles;
        for (i, c) in cycles.iter_mut().enumerate() {
            let class = OP_CLASSES[i];
            if !class.is_memory() {
                *c = ((f64::from(*c) * factor).round() as u32).max(1);
            }
        }
        Self { cycles }
    }

    /// The longest latency in the table.
    pub fn max_latency(&self) -> u32 {
        *self.cycles.iter().max().expect("table is non-empty")
    }
}

impl Default for LatencyTable {
    /// Baseline latencies typical of the paper's era: 1-cycle int ALU and
    /// branches, 3-cycle int multiply, 20-cycle int divide, 2-cycle FP add,
    /// 4-cycle FP multiply, 24-cycle FP divide, 1-cycle AGU for memory ops.
    fn default() -> Self {
        Self {
            cycles: [1, 3, 20, 2, 4, 24, 1, 1, 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrip() {
        for (i, class) in OP_CLASSES.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn fu_kind_index_roundtrip() {
        for (i, kind) in FU_KINDS.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn memory_classes() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        for c in OP_CLASSES {
            if !matches!(c, OpClass::Load | OpClass::Store) {
                assert!(!c.is_memory(), "{c} should not be memory");
            }
        }
    }

    #[test]
    fn branch_executes_on_int_alu() {
        assert_eq!(OpClass::Branch.fu_kind(), FuKind::IntAlu);
    }

    #[test]
    fn every_class_has_a_fu_kind() {
        for c in OP_CLASSES {
            // Must not panic, and the kind must be in the canonical list.
            assert!(FU_KINDS.contains(&c.fu_kind()));
        }
    }

    #[test]
    fn fu_pool_rejects_zero() {
        assert!(FuPool::new([0, 1, 1, 1, 1]).is_err());
        assert!(FuPool::new([1, 1, 1, 1, 1]).is_ok());
    }

    #[test]
    fn fu_pool_default_total() {
        let pool = FuPool::default();
        assert_eq!(pool.total(), 4 + 1 + 2 + 1 + 2);
    }

    #[test]
    fn latency_table_rejects_zero() {
        assert!(LatencyTable::new([1, 1, 1, 1, 0, 1, 1, 1, 1]).is_err());
    }

    #[test]
    fn unit_table_is_all_ones() {
        let t = LatencyTable::unit();
        for c in OP_CLASSES {
            assert_eq!(t.latency(c), 1);
        }
    }

    #[test]
    fn scaling_keeps_memory_and_minimum() {
        let t = LatencyTable::default().scaled(2.0);
        assert_eq!(t.latency(OpClass::Load), 1, "memory AGU latency unscaled");
        assert_eq!(t.latency(OpClass::IntMul), 6);
        assert_eq!(t.latency(OpClass::IntAlu), 2);
        let down = LatencyTable::unit().scaled(0.01);
        assert_eq!(down.latency(OpClass::IntAlu), 1, "clamps at 1");
    }

    #[test]
    fn max_latency_default() {
        assert_eq!(LatencyTable::default().max_latency(), 24);
    }

    #[test]
    fn display_is_nonempty() {
        for c in OP_CLASSES {
            assert!(!c.to_string().is_empty());
        }
        for k in FU_KINDS {
            assert!(!k.to_string().is_empty());
        }
    }
}
