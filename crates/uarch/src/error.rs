//! Configuration validation errors.

/// Error produced when a machine configuration is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A resource count or latency that must be at least 1 was zero.
    ZeroResource(&'static str),
    /// A parameter that must be a power of two was not.
    NotPowerOfTwo(&'static str, u64),
    /// Cache size / line size / associativity do not form a valid geometry.
    Geometry {
        /// Requested total size in bytes.
        size_bytes: u64,
        /// Requested line size in bytes.
        line_bytes: u32,
        /// Requested associativity.
        ways: u32,
    },
    /// Hierarchy latencies are not strictly increasing outward.
    LatencyOrdering,
    /// A predictor history length is zero, too long, or exceeds the
    /// indexable table.
    HistoryLength(u32),
    /// The issue window is larger than the reorder buffer.
    WindowExceedsRob {
        /// Configured window size.
        window: u32,
        /// Configured ROB size.
        rob: u32,
    },
    /// A pipeline width exceeds the supported maximum.
    WidthTooLarge(&'static str, u32),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroResource(what) => write!(f, "{what} must be at least 1"),
            ConfigError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a power of two, got {v}")
            }
            ConfigError::Geometry {
                size_bytes,
                line_bytes,
                ways,
            } => write!(
                f,
                "invalid cache geometry: {size_bytes} B / {line_bytes} B lines / {ways} ways \
                 does not yield a power-of-two set count"
            ),
            ConfigError::LatencyOrdering => {
                f.write_str("hierarchy latencies must strictly increase outward (L1 < L2 < memory)")
            }
            ConfigError::HistoryLength(bits) => {
                write!(f, "invalid predictor history length of {bits} bits")
            }
            ConfigError::WindowExceedsRob { window, rob } => {
                write!(f, "issue window ({window}) exceeds reorder buffer ({rob})")
            }
            ConfigError::WidthTooLarge(what, v) => {
                write!(f, "{what} of {v} exceeds the supported maximum of 64")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty_and_lowercase() {
        let errors = [
            ConfigError::ZeroResource("x"),
            ConfigError::NotPowerOfTwo("y", 3),
            ConfigError::Geometry {
                size_bytes: 100,
                line_bytes: 64,
                ways: 3,
            },
            ConfigError::LatencyOrdering,
            ConfigError::HistoryLength(0),
            ConfigError::WindowExceedsRob {
                window: 64,
                rob: 32,
            },
            ConfigError::WidthTooLarge("fetch width", 100),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error + Send + Sync>(_: E) {}
        takes_error(ConfigError::LatencyOrdering);
    }
}
