//! Controlled microbenchmarks.
//!
//! Each kernel pins a single penalty contributor so the sensitivity
//! experiments can sweep it in isolation:
//!
//! * [`chain_kernel`] — inherent ILP (contributor iii): every op depends on
//!   the op `k` earlier, creating exactly `k` independent chains;
//! * [`branch_resolution_kernel`] — a mispredicting branch at the end of a
//!   dependence chain of chosen length, the purest resolution-time
//!   experiment (E-F8);
//! * [`memory_kernel`] — loads over a chosen working set, optionally
//!   pointer-chased (contributor v / long-miss events, E-F9);
//! * [`latency_kernel`] — a chain of long-latency ops (contributor iv,
//!   E-F7).
//!
//! All kernels are loops over a small code footprint, so the I-cache is
//! quiet and the contributor under study is the only thing moving. All
//! satisfy the control-flow invariant `ops[i+1].pc() == ops[i].next_pc()`.

use bmp_trace::{BranchKind, MicroOp, Trace};
use bmp_uarch::OpClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KERNEL_BASE: u64 = 0x0010_0000;
const DATA_BASE: u64 = 0x5000_0000;

/// A loop whose body is `body_len` ops of `class`, each depending on the
/// op `k` positions earlier, closed by an unconditional jump.
///
/// With `k = 1` the body is a single serial chain (ILP 1); with `k = 8`
/// it is eight interleaved chains (ILP 8, resource-permitting).
///
/// # Panics
///
/// Panics if `k == 0`, `body_len == 0`, or `class` is a memory/branch
/// class.
///
/// # Examples
///
/// ```
/// use bmp_trace::dag;
/// use bmp_uarch::OpClass;
///
/// let t = bmp_workloads::micro::chain_kernel(1000, 4, 64, OpClass::IntAlu);
/// let ilp = dag::window_ilp(t.ops(), 32, |_, _| 1).unwrap();
/// assert!((ilp - 4.0).abs() < 0.5);
/// ```
pub fn chain_kernel(n_ops: usize, k: u32, body_len: u32, class: OpClass) -> Trace {
    assert!(k > 0, "chain stride must be at least 1");
    assert!(body_len > 0, "body length must be at least 1");
    assert!(
        !class.is_memory() && !class.is_branch(),
        "chain kernel takes a computational class"
    );
    let mut ops = Vec::with_capacity(n_ops);
    let jump_pc = KERNEL_BASE + u64::from(body_len) * 4;
    // Trace positions of the body (non-jump) ops, so chains stay intact
    // across the loop-closing jump: the producer of body op `b` is body op
    // `b - k`, whatever number of jumps lie between them.
    let mut body_positions: Vec<usize> = Vec::new();
    while ops.len() < n_ops {
        for j in 0..body_len {
            if ops.len() >= n_ops {
                break;
            }
            let pc = KERNEL_BASE + u64::from(j) * 4;
            let b = body_positions.len();
            let src = b
                .checked_sub(k as usize)
                .map(|p| (ops.len() - body_positions[p]) as u32);
            body_positions.push(ops.len());
            ops.push(MicroOp::alu(pc, class, [src, None]));
        }
        if ops.len() < n_ops {
            ops.push(MicroOp::branch(
                jump_pc,
                BranchKind::Jump,
                true,
                KERNEL_BASE,
                [None, None],
            ));
        }
    }
    Trace::from_ops_unchecked(ops)
}

/// The branch-resolution kernel: each iteration is a serial dependence
/// chain of `chain_len` single-cycle ops feeding a conditional branch with
/// the given taken bias (outcomes drawn deterministically from `seed`).
///
/// The loop is shaped so the branch's resolution time is exactly the
/// chain's execution time: the purest measurement of contributor (iii)'s
/// effect on the misprediction penalty.
///
/// Layout: block A = chain + conditional (taken → back to A); block B =
/// jump back to A (the fall-through path).
///
/// # Panics
///
/// Panics if `chain_len == 0` or `taken_bias` is outside `[0, 1]`.
pub fn branch_resolution_kernel(n_ops: usize, chain_len: u32, taken_bias: f64, seed: u64) -> Trace {
    assert!(chain_len > 0, "chain length must be at least 1");
    assert!((0.0..=1.0).contains(&taken_bias), "bias must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let branch_pc = KERNEL_BASE + u64::from(chain_len) * 4;
    let jump_pc = branch_pc + 4;
    let mut ops = Vec::with_capacity(n_ops);
    while ops.len() < n_ops {
        for j in 0..chain_len {
            if ops.len() >= n_ops {
                break;
            }
            let pc = KERNEL_BASE + u64::from(j) * 4;
            let src = if ops.is_empty() { None } else { Some(1) };
            ops.push(MicroOp::alu(pc, OpClass::IntAlu, [src, None]));
        }
        if ops.len() >= n_ops {
            break;
        }
        let taken = rng.gen::<f64>() < taken_bias;
        ops.push(MicroOp::branch(
            branch_pc,
            BranchKind::Conditional,
            taken,
            KERNEL_BASE,
            [Some(1), None],
        ));
        if !taken && ops.len() < n_ops {
            ops.push(MicroOp::branch(
                jump_pc,
                BranchKind::Jump,
                true,
                KERNEL_BASE,
                [None, None],
            ));
        }
    }
    Trace::from_ops_unchecked(ops)
}

/// A load loop over a working set of `working_set` bytes.
///
/// When `chase` is set each load's address depends on the previous load
/// (a pointer chase), serializing the memory chain; otherwise loads are
/// independent. Padding ALU ops keep one load per `ops_per_load`
/// instructions.
///
/// # Panics
///
/// Panics if `working_set < 8` or `ops_per_load == 0`.
pub fn memory_kernel(
    n_ops: usize,
    working_set: u64,
    ops_per_load: u32,
    chase: bool,
    seed: u64,
) -> Trace {
    assert!(working_set >= 8, "working set must be at least 8 bytes");
    assert!(ops_per_load > 0, "ops_per_load must be at least 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let body_len = ops_per_load * 8; // 8 loads per iteration
    let jump_pc = KERNEL_BASE + u64::from(body_len) * 4;
    let mut ops = Vec::with_capacity(n_ops);
    let mut last_load: Option<usize> = None;
    while ops.len() < n_ops {
        for j in 0..body_len {
            if ops.len() >= n_ops {
                break;
            }
            let pc = KERNEL_BASE + u64::from(j) * 4;
            if j % ops_per_load == 0 {
                let addr = DATA_BASE + (rng.gen_range(0..working_set) & !7);
                let src = match (chase, last_load) {
                    (true, Some(prev)) => Some((ops.len() - prev) as u32),
                    _ => None,
                };
                last_load = Some(ops.len());
                ops.push(MicroOp::load(pc, addr, [src, None]));
            } else {
                ops.push(MicroOp::alu(pc, OpClass::IntAlu, [None, None]));
            }
        }
        if ops.len() < n_ops {
            ops.push(MicroOp::branch(
                jump_pc,
                BranchKind::Jump,
                true,
                KERNEL_BASE,
                [None, None],
            ));
        }
    }
    Trace::from_ops_unchecked(ops)
}

/// A serial chain of `class` ops (e.g. [`OpClass::IntMul`]) closed into a
/// loop — the functional-unit-latency kernel: the drain time of a window
/// of these ops scales directly with the class latency.
///
/// # Panics
///
/// Panics if `class` is a memory or branch class.
pub fn latency_kernel(n_ops: usize, class: OpClass) -> Trace {
    chain_kernel(n_ops, 1, 64, class)
}

/// An indirect-dispatch kernel: one dispatch site rotating through
/// `n_cases` case blocks of `case_len` ops each (every case jumps back to
/// the dispatch) — the pure target-misprediction workload. A last-target
/// BTB mispredicts every dispatch; a history-hashed target predictor
/// learns the rotation.
///
/// # Panics
///
/// Panics if `n_cases < 2` or `case_len == 0`.
pub fn indirect_kernel(n_ops: usize, n_cases: u32, case_len: u32) -> Trace {
    assert!(n_cases >= 2, "need at least two cases");
    assert!(case_len >= 1, "cases need at least one op");
    // Layout: dispatch at KERNEL_BASE (one indirect op); case k occupies
    // case_len ops + 1 jump-back, starting right after.
    let dispatch_pc = KERNEL_BASE;
    let case_stride = u64::from(case_len + 1) * 4;
    let case_pc = |k: u32| dispatch_pc + 4 + u64::from(k) * case_stride;
    let mut ops = Vec::with_capacity(n_ops);
    let mut k = 0u32;
    while ops.len() < n_ops {
        ops.push(MicroOp::branch(
            dispatch_pc,
            BranchKind::IndirectJump,
            true,
            case_pc(k),
            [None, None],
        ));
        for j in 0..case_len {
            if ops.len() >= n_ops {
                break;
            }
            let pc = case_pc(k) + u64::from(j) * 4;
            let src = if ops.len() > 1 { Some(1) } else { None };
            ops.push(MicroOp::alu(pc, OpClass::IntAlu, [src, None]));
        }
        if ops.len() < n_ops {
            ops.push(MicroOp::branch(
                case_pc(k) + u64::from(case_len) * 4,
                BranchKind::Jump,
                true,
                dispatch_pc,
                [None, None],
            ));
        }
        k = (k + 1) % n_cases;
    }
    Trace::from_ops_unchecked(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::dag;

    fn check_control_flow(t: &Trace) {
        for pair in t.ops().windows(2) {
            assert_eq!(
                pair[0].next_pc(),
                pair[1].pc(),
                "control-flow break after {:?}",
                pair[0]
            );
        }
    }

    #[test]
    fn chain_kernel_ilp_matches_stride() {
        for k in [1u32, 2, 4, 8] {
            let t = chain_kernel(2000, k, 64, OpClass::IntAlu);
            let ilp = dag::window_ilp(t.ops(), 32, |_, _| 1).unwrap();
            assert!((ilp - k as f64).abs() < 0.7, "stride {k} gave ILP {ilp}");
            check_control_flow(&t);
        }
    }

    #[test]
    fn chain_kernel_exact_length_and_loop() {
        let t = chain_kernel(500, 1, 16, OpClass::IntAlu);
        assert_eq!(t.len(), 500);
        // The code footprint is tiny: at most body_len + 1 distinct pcs.
        let pcs: std::collections::HashSet<u64> = t.iter().map(|o| o.pc()).collect();
        assert!(pcs.len() <= 17);
    }

    #[test]
    #[should_panic(expected = "chain stride")]
    fn chain_kernel_rejects_zero_stride() {
        let _ = chain_kernel(10, 0, 16, OpClass::IntAlu);
    }

    #[test]
    #[should_panic(expected = "computational class")]
    fn chain_kernel_rejects_loads() {
        let _ = chain_kernel(10, 1, 16, OpClass::Load);
    }

    #[test]
    fn branch_kernel_structure() {
        let t = branch_resolution_kernel(5000, 8, 0.5, 3);
        assert_eq!(t.len(), 5000);
        check_control_flow(&t);
        // Branch density: one conditional per chain_len+1(+1 when NT).
        let cond = t.iter().filter(|o| o.is_conditional_branch()).count();
        assert!(cond > 400, "expected ~500 conditionals, got {cond}");
        // Every conditional depends on the chain op right before it.
        for op in t.iter().filter(|o| o.is_conditional_branch()) {
            assert_eq!(op.srcs()[0], Some(1));
        }
    }

    #[test]
    fn branch_kernel_bias_honored() {
        let t = branch_resolution_kernel(20_000, 4, 0.8, 11);
        let (mut taken, mut total) = (0u32, 0u32);
        for op in t.iter().filter(|o| o.is_conditional_branch()) {
            total += 1;
            taken += u32::from(op.branch_info().unwrap().taken);
        }
        let frac = f64::from(taken) / f64::from(total);
        assert!((frac - 0.8).abs() < 0.05, "taken fraction {frac}");
    }

    #[test]
    fn memory_kernel_working_set_respected() {
        let ws = 4096;
        let t = memory_kernel(10_000, ws, 4, false, 5);
        check_control_flow(&t);
        for op in t.iter() {
            if let Some(a) = op.mem_addr() {
                assert!((DATA_BASE..DATA_BASE + ws).contains(&a));
            }
        }
    }

    #[test]
    fn memory_kernel_chase_serializes() {
        let t = memory_kernel(5_000, 65536, 4, true, 5);
        let loads: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, o)| o.class() == OpClass::Load)
            .map(|(i, _)| i)
            .collect();
        for w in loads.windows(2) {
            let cur = t.get(w[1]).unwrap();
            assert_eq!(cur.srcs()[0], Some((w[1] - w[0]) as u32));
        }
    }

    #[test]
    fn indirect_kernel_rotates_and_stays_consistent() {
        let t = indirect_kernel(5_000, 4, 6);
        check_control_flow(&t);
        let targets: Vec<u64> = t
            .iter()
            .filter(|o| {
                o.branch_info()
                    .is_some_and(|b| b.kind == BranchKind::IndirectJump)
            })
            .map(|o| o.branch_info().unwrap().target)
            .collect();
        assert!(targets.len() > 500);
        // Strict rotation: target repeats with period 4.
        for w in targets.windows(5) {
            assert_eq!(w[0], w[4], "rotation must have period 4");
            assert_ne!(w[0], w[1], "consecutive targets differ");
        }
    }

    #[test]
    #[should_panic(expected = "two cases")]
    fn indirect_kernel_rejects_one_case() {
        let _ = indirect_kernel(100, 1, 4);
    }

    #[test]
    fn latency_kernel_is_serial() {
        let t = latency_kernel(1000, OpClass::IntMul);
        let ilp = dag::window_ilp(t.ops(), 32, |_, _| 3).unwrap();
        assert!(ilp < 0.5, "serial multiply chain ILP {ilp}");
    }
}
