//! Phased workloads: programs whose statistical behaviour changes over
//! time.
//!
//! Real programs run in phases — an input-parsing phase looks nothing
//! like the solver that follows it. For interval analysis this matters
//! because miss-event *density* changes at phase boundaries, which moves
//! the interval-length distribution (contributor ii) mid-run.
//!
//! [`phased`] concatenates per-phase synthetic traces over the same code
//! region (the phases of one program share a binary), inserting a gluing
//! jump at each seam so the whole trace still satisfies the control-flow
//! invariant `ops[i+1].pc() == ops[i].next_pc()`.

use bmp_trace::{BranchKind, MicroOp, Trace};

use crate::profile::WorkloadProfile;

/// One phase: a behaviour profile and how many instructions it runs.
#[derive(Debug, Clone)]
pub struct Phase {
    /// The behaviour during this phase.
    pub profile: WorkloadProfile,
    /// Dynamic instructions in this phase (must be at least 2).
    pub ops: usize,
}

/// Generates a phased trace: each phase synthesized from its profile,
/// glued with explicit jumps so control flow stays consistent across
/// seams.
///
/// The total length is the sum of phase lengths plus one gluing jump per
/// seam.
///
/// # Panics
///
/// Panics if `phases` is empty, any phase has fewer than 2 ops, or any
/// profile fails validation.
///
/// # Examples
///
/// ```
/// use bmp_workloads::{phases, spec};
///
/// let trace = phases::phased(
///     &[
///         phases::Phase { profile: spec::by_name("gzip").unwrap(), ops: 5_000 },
///         phases::Phase { profile: spec::by_name("mcf").unwrap(), ops: 5_000 },
///     ],
///     42,
/// );
/// assert_eq!(trace.len(), 10_001); // 2 phases + 1 gluing jump
/// ```
pub fn phased(phases: &[Phase], seed: u64) -> Trace {
    assert!(!phases.is_empty(), "need at least one phase");
    let mut ops: Vec<MicroOp> = Vec::new();
    for (i, phase) in phases.iter().enumerate() {
        assert!(phase.ops >= 2, "phase {i} must run at least 2 instructions");
        let segment = phase
            .profile
            .generate(phase.ops, seed.wrapping_add(i as u64));
        if let (Some(last), Some(first)) = (ops.last().copied(), segment.get(0)) {
            // Glue: an unconditional jump from where the previous phase
            // stopped to where this one starts.
            ops.push(MicroOp::branch(
                last.next_pc(),
                BranchKind::Jump,
                true,
                first.pc(),
                [None, None],
            ));
        }
        ops.extend(segment.iter().copied());
    }
    Trace::from_ops_unchecked(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn two_phase(ops: usize) -> Trace {
        phased(
            &[
                Phase {
                    profile: spec::by_name("crafty").expect("known"),
                    ops,
                },
                Phase {
                    profile: spec::by_name("twolf").expect("known"),
                    ops,
                },
            ],
            7,
        )
    }

    #[test]
    fn lengths_add_up_with_glue() {
        let t = two_phase(4_000);
        assert_eq!(t.len(), 8_001);
    }

    #[test]
    fn control_flow_invariant_holds_across_seams() {
        let t = two_phase(4_000);
        for pair in t.ops().windows(2) {
            assert_eq!(
                pair[0].next_pc(),
                pair[1].pc(),
                "seam broke control flow after {:?}",
                pair[0]
            );
        }
    }

    #[test]
    fn phase_behaviour_actually_changes() {
        // crafty-like first half is much more predictable than the
        // twolf-like second half.
        let t = two_phase(20_000);
        let half = t.len() / 2;
        let hardness = |ops: &[bmp_trace::MicroOp]| {
            use std::collections::HashMap;
            let mut per_site: HashMap<u64, (u64, u64)> = HashMap::new();
            for op in ops {
                if op.is_conditional_branch() {
                    let e = per_site.entry(op.pc()).or_default();
                    if op.branch_info().expect("branch").taken {
                        e.0 += 1;
                    } else {
                        e.1 += 1;
                    }
                }
            }
            let total: u64 = per_site.values().map(|(a, b)| a + b).sum();
            let minority: u64 = per_site.values().map(|(a, b)| (*a).min(*b)).sum();
            minority as f64 / total.max(1) as f64
        };
        let first = hardness(&t.ops()[..half]);
        let second = hardness(&t.ops()[half..]);
        assert!(
            second > first * 1.5,
            "twolf phase must be harder: {first} vs {second}"
        );
    }

    #[test]
    fn single_phase_equals_plain_generation() {
        let profile = spec::by_name("gzip").expect("known");
        let t = phased(
            &[Phase {
                profile: profile.clone(),
                ops: 3_000,
            }],
            9,
        );
        assert_eq!(t, profile.generate(3_000, 9));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty() {
        let _ = phased(&[], 1);
    }
}
