//! SPECint2000-like workload profiles.
//!
//! The twelve profiles are named after the SPEC CPU2000 integer benchmarks
//! the paper evaluates on. The parameters are chosen so each profile lands
//! in the *qualitative regime* reported for its namesake in the
//! contemporaneous characterization literature:
//!
//! * `gcc`, `perlbmk`, `vortex` — large code footprints (I-cache
//!   pressure);
//! * `mcf` — pointer-chasing over a huge data working set (long D-misses
//!   dominate, low ILP);
//! * `gzip`, `bzip2` — regular compression loops, moderate branch
//!   behaviour, few cache problems;
//! * `crafty`, `eon` — predictable branches, high ILP;
//! * `twolf`, `vpr`, `parser` — hard data-dependent branches (high
//!   misprediction rates);
//! * `gap` — middle of the road.
//!
//! Absolute miss rates will not match hardware runs of the real binaries —
//! see `DESIGN.md` for the substitution argument — but the cross-benchmark
//! *ordering* (which benchmark is bursty, which is branch-limited, which
//! is memory-bound) is preserved, which is what the paper's
//! characterization depends on.

use crate::profile::{BranchModel, DependenceModel, MemoryModel, WorkloadProfile};

/// Names of the twelve profiles, in canonical order.
pub const NAMES: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

/// One row of the tuning table; see [`by_name`] for semantics.
struct Row {
    name: &'static str,
    load: f64,
    store: f64,
    fp: f64,
    /// Mean register dependence distance (ILP proxy).
    dep_mean: f64,
    /// Mean basic-block size.
    block: f64,
    /// Static code footprint in KiB.
    code_kib: u64,
    /// Branch-site population: (easy, pattern, hard_spread).
    easy: f64,
    pattern: f64,
    hard_spread: f64,
    /// Data working sets in KiB: (hot, warm, cold-MiB) and access split.
    hot_kib: u64,
    warm_kib: u64,
    cold_mib: u64,
    hot_frac: f64,
    warm_frac: f64,
    chase: f64,
    reuse: f64,
    stream: f64,
    /// Fraction of blocks ending in indirect dispatch.
    indirect: f64,
}

const ROWS: [Row; 12] = [
    // Compression: tight loops, small code, decent predictability.
    Row {
        name: "gzip",
        load: 0.22,
        store: 0.08,
        fp: 0.00,
        dep_mean: 5.0,
        block: 9.0,
        code_kib: 24,
        easy: 0.80,
        pattern: 0.12,
        hard_spread: 0.32,
        hot_kib: 24,
        warm_kib: 192,
        cold_mib: 16,
        hot_frac: 0.960,
        warm_frac: 0.035,
        chase: 0.02,
        reuse: 0.85,
        stream: 0.15,
        indirect: 0.002,
    },
    // Place & route: data-dependent branches, modest working set.
    Row {
        name: "vpr",
        load: 0.28,
        store: 0.11,
        fp: 0.07,
        dep_mean: 3.2,
        block: 7.0,
        code_kib: 48,
        easy: 0.70,
        pattern: 0.10,
        hard_spread: 0.28,
        hot_kib: 12,
        warm_kib: 160,
        cold_mib: 32,
        hot_frac: 0.940,
        warm_frac: 0.050,
        chase: 0.08,
        reuse: 0.80,
        stream: 0.08,
        indirect: 0.003,
    },
    // Compiler: huge code footprint, bursty I-cache behaviour.
    Row {
        name: "gcc",
        load: 0.26,
        store: 0.13,
        fp: 0.00,
        dep_mean: 4.0,
        block: 6.0,
        code_kib: 512,
        easy: 0.76,
        pattern: 0.10,
        hard_spread: 0.30,
        hot_kib: 16,
        warm_kib: 256,
        cold_mib: 32,
        hot_frac: 0.950,
        warm_frac: 0.040,
        chase: 0.04,
        reuse: 0.80,
        stream: 0.05,
        indirect: 0.006,
    },
    // Min-cost flow: pointer chasing over a giant graph; memory-bound.
    Row {
        name: "mcf",
        load: 0.32,
        store: 0.09,
        fp: 0.00,
        dep_mean: 2.4,
        block: 8.0,
        code_kib: 16,
        easy: 0.80,
        pattern: 0.08,
        hard_spread: 0.35,
        hot_kib: 8,
        warm_kib: 128,
        cold_mib: 128,
        hot_frac: 0.780,
        warm_frac: 0.120,
        chase: 0.30,
        reuse: 0.35,
        stream: 0.02,
        indirect: 0.002,
    },
    // Chess: highly predictable control, high ILP, cache-resident.
    Row {
        name: "crafty",
        load: 0.27,
        store: 0.07,
        fp: 0.00,
        dep_mean: 6.5,
        block: 10.0,
        code_kib: 96,
        easy: 0.88,
        pattern: 0.08,
        hard_spread: 0.20,
        hot_kib: 28,
        warm_kib: 192,
        cold_mib: 8,
        hot_frac: 0.970,
        warm_frac: 0.025,
        chase: 0.02,
        reuse: 0.85,
        stream: 0.05,
        indirect: 0.003,
    },
    // NL parser: hard branches, linked structures.
    Row {
        name: "parser",
        load: 0.25,
        store: 0.10,
        fp: 0.00,
        dep_mean: 3.0,
        block: 6.0,
        code_kib: 80,
        easy: 0.68,
        pattern: 0.10,
        hard_spread: 0.28,
        hot_kib: 16,
        warm_kib: 224,
        cold_mib: 32,
        hot_frac: 0.930,
        warm_frac: 0.060,
        chase: 0.12,
        reuse: 0.75,
        stream: 0.06,
        indirect: 0.004,
    },
    // Ray tracer (C++): predictable, FP-heavy, high ILP.
    Row {
        name: "eon",
        load: 0.26,
        store: 0.12,
        fp: 0.16,
        dep_mean: 6.0,
        block: 11.0,
        code_kib: 64,
        easy: 0.90,
        pattern: 0.06,
        hard_spread: 0.18,
        hot_kib: 24,
        warm_kib: 128,
        cold_mib: 4,
        hot_frac: 0.975,
        warm_frac: 0.020,
        chase: 0.01,
        reuse: 0.88,
        stream: 0.10,
        indirect: 0.008,
    },
    // Perl interpreter: big code, indirect-ish control, mixed data.
    Row {
        name: "perlbmk",
        load: 0.28,
        store: 0.14,
        fp: 0.00,
        dep_mean: 3.8,
        block: 6.0,
        code_kib: 384,
        easy: 0.78,
        pattern: 0.08,
        hard_spread: 0.28,
        hot_kib: 20,
        warm_kib: 256,
        cold_mib: 24,
        hot_frac: 0.950,
        warm_frac: 0.040,
        chase: 0.05,
        reuse: 0.80,
        stream: 0.05,
        indirect: 0.012,
    },
    // Group theory: list-walking interpreter, moderate everything.
    Row {
        name: "gap",
        load: 0.27,
        store: 0.11,
        fp: 0.00,
        dep_mean: 4.2,
        block: 8.0,
        code_kib: 128,
        easy: 0.78,
        pattern: 0.10,
        hard_spread: 0.26,
        hot_kib: 20,
        warm_kib: 256,
        cold_mib: 48,
        hot_frac: 0.940,
        warm_frac: 0.050,
        chase: 0.08,
        reuse: 0.78,
        stream: 0.08,
        indirect: 0.010,
    },
    // OO database: very large code footprint, predictable branches.
    Row {
        name: "vortex",
        load: 0.30,
        store: 0.16,
        fp: 0.00,
        dep_mean: 4.8,
        block: 9.0,
        code_kib: 640,
        easy: 0.86,
        pattern: 0.08,
        hard_spread: 0.22,
        hot_kib: 24,
        warm_kib: 384,
        cold_mib: 48,
        hot_frac: 0.950,
        warm_frac: 0.040,
        chase: 0.04,
        reuse: 0.75,
        stream: 0.10,
        indirect: 0.005,
    },
    // Compression again: larger blocks, very regular.
    Row {
        name: "bzip2",
        load: 0.24,
        store: 0.10,
        fp: 0.00,
        dep_mean: 4.6,
        block: 10.0,
        code_kib: 20,
        easy: 0.78,
        pattern: 0.14,
        hard_spread: 0.30,
        hot_kib: 28,
        warm_kib: 448,
        cold_mib: 32,
        hot_frac: 0.930,
        warm_frac: 0.060,
        chase: 0.02,
        reuse: 0.70,
        stream: 0.18,
        indirect: 0.002,
    },
    // Placement: the classic branch-misprediction victim.
    Row {
        name: "twolf",
        load: 0.27,
        store: 0.10,
        fp: 0.05,
        dep_mean: 2.8,
        block: 6.0,
        code_kib: 64,
        easy: 0.62,
        pattern: 0.10,
        hard_spread: 0.24,
        hot_kib: 14,
        warm_kib: 192,
        cold_mib: 16,
        hot_frac: 0.940,
        warm_frac: 0.050,
        chase: 0.06,
        reuse: 0.80,
        stream: 0.06,
        indirect: 0.003,
    },
];

fn profile_from_row(row: &Row) -> WorkloadProfile {
    let p = WorkloadProfile {
        name: row.name.to_owned(),
        load_frac: row.load,
        store_frac: row.store,
        int_mul_frac: 0.012,
        int_div_frac: 0.0015,
        fp_add_frac: row.fp * 0.5,
        fp_mul_frac: row.fp * 0.4,
        fp_div_frac: row.fp * 0.1,
        deps: DependenceModel {
            mean_distance: row.dep_mean,
            max_distance: 64,
            no_src_frac: 0.15,
            two_src_frac: 0.35,
        },
        branches: BranchModel {
            avg_block_size: row.block,
            code_footprint: row.code_kib * 1024,
            easy_frac: row.easy,
            pattern_frac: row.pattern,
            hard_spread: row.hard_spread,
            call_frac: 0.04,
            indirect_frac: row.indirect,
            loop_back_frac: 0.7,
        },
        memory: MemoryModel {
            hot_bytes: row.hot_kib * 1024,
            warm_bytes: row.warm_kib * 1024,
            cold_bytes: row.cold_mib * 1024 * 1024,
            hot_frac: row.hot_frac,
            warm_frac: row.warm_frac,
            pointer_chase_frac: row.chase,
            region_reuse: row.reuse,
            stream_frac: row.stream,
        },
    };
    debug_assert!(p.validate().is_ok(), "profile {} invalid", row.name);
    p
}

/// Returns all twelve SPECint2000-like profiles in canonical order.
///
/// # Examples
///
/// ```
/// let all = bmp_workloads::spec::all_profiles();
/// assert_eq!(all.len(), 12);
/// assert!(all.iter().all(|p| p.validate().is_ok()));
/// ```
pub fn all_profiles() -> Vec<WorkloadProfile> {
    ROWS.iter().map(profile_from_row).collect()
}

/// Looks up one profile by benchmark name; `None` for unknown names.
///
/// # Examples
///
/// ```
/// assert!(bmp_workloads::spec::by_name("mcf").is_some());
/// assert!(bmp_workloads::spec::by_name("nginx").is_none());
/// ```
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    ROWS.iter().find(|r| r.name == name).map(profile_from_row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_valid_profiles() {
        let all = all_profiles();
        assert_eq!(all.len(), 12);
        for p in &all {
            assert!(p.validate().is_ok(), "{} invalid", p.name);
        }
    }

    #[test]
    fn names_match_canonical_order() {
        let all = all_profiles();
        for (p, n) in all.iter().zip(NAMES) {
            assert_eq!(p.name, n);
        }
    }

    #[test]
    fn lookup_by_name() {
        for n in NAMES {
            assert_eq!(by_name(n).unwrap().name, n);
        }
        assert!(by_name("notabenchmark").is_none());
    }

    #[test]
    fn regimes_are_distinct() {
        let gcc = by_name("gcc").unwrap();
        let gzip = by_name("gzip").unwrap();
        let mcf = by_name("mcf").unwrap();
        let crafty = by_name("crafty").unwrap();
        let twolf = by_name("twolf").unwrap();
        // Code-footprint ordering: gcc much bigger than gzip.
        assert!(gcc.branches.code_footprint > 8 * gzip.branches.code_footprint);
        // ILP ordering: crafty > mcf (mcf's chains are short-distance).
        assert!(crafty.deps.mean_distance > mcf.deps.mean_distance);
        // Branch-hardness ordering: twolf harder than crafty.
        let hard =
            |p: &crate::WorkloadProfile| 1.0 - p.branches.easy_frac - p.branches.pattern_frac;
        assert!(hard(&twolf) > hard(&crafty));
        // Memory-boundness: mcf's cold traffic dominates everyone's.
        let cold = |p: &crate::WorkloadProfile| 1.0 - p.memory.hot_frac - p.memory.warm_frac;
        for n in NAMES {
            if n != "mcf" {
                assert!(cold(&mcf) > cold(&by_name(n).unwrap()), "mcf vs {n}");
            }
        }
    }

    #[test]
    fn profiles_generate() {
        for p in all_profiles() {
            let t = p.generate(2_000, 1);
            assert_eq!(t.len(), 2_000, "{}", p.name);
        }
    }
}
