//! The trace synthesizer: builds a static code layout from a profile, then
//! random-walks it emitting a dynamic instruction stream.
//!
//! Structural invariant maintained throughout: for every emitted pair of
//! consecutive ops, `ops[i+1].pc() == ops[i].next_pc()`. The instruction
//! stream is therefore a real walk over a consistent code layout, which is
//! what makes the I-cache, BTB and RAS models meaningful.

use bmp_trace::{BranchKind, MicroOp, Trace};
use bmp_uarch::fp::{FnvHashMap, FnvHashSet};
use bmp_uarch::OpClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::WorkloadProfile;

/// Base virtual addresses of the synthetic regions.
const CODE_BASE: u64 = 0x0040_0000;
const HOT_BASE: u64 = 0x1000_0000;
const WARM_BASE: u64 = 0x2000_0000;
const COLD_BASE: u64 = 0x4000_0000;

/// Maximum modeled call depth; deeper calls overwrite the oldest frame,
/// mirroring a hardware RAS so call/return streams stay predictable.
const MAX_CALL_DEPTH: usize = 64;

/// Size of the per-region reuse set backing `MemoryModel::region_reuse`.
const REUSE_RING: usize = 48;

/// Shared region swept by all streaming sites: big enough to spill the
/// L1 (so streams exercise contributor v) but L2-resident, like the hot
/// arrays of a real program.
const STREAM_REGION: u64 = 64 * 1024;

#[derive(Debug, Clone, Copy)]
enum SiteKind {
    /// Strongly biased site: taken with the stored probability.
    Easy { taken_bias: f64 },
    /// Deterministic short loop: taken `period - 1` times, then not taken.
    Pattern { period: u32 },
    /// Weakly biased, memoryless site — irreducibly hard.
    Hard { taken_bias: f64 },
    /// First-order-Markov site: repeats its previous outcome with
    /// probability `q_same`. Locally correlated like real data-dependent
    /// branches, so history-based predictors do noticeably better than
    /// chance — memoryless noise would both be unrealistic and shatter
    /// any global-history predictor's index space.
    Sticky { q_same: f64 },
}

#[derive(Debug, Clone)]
enum Terminator {
    Cond {
        taken_target: usize,
        site: SiteKind,
    },
    Jump {
        target: usize,
    },
    Call {
        target: usize,
    },
    Ret,
    /// Indirect dispatch loop (interpreter/state-machine structure): the
    /// block picks one of `cases` (each case block jumps straight back
    /// here), runs the loop for `trips` iterations, then exits forward to
    /// `exit`. When `cyclic` the case sequence is a deterministic
    /// rotation — hopeless for a last-target BTB, learnable by a
    /// history-hashed target predictor; otherwise one dominant case is
    /// chosen with probability `q`.
    Indirect {
        cases: Vec<usize>,
        exit: usize,
        q: f64,
        cyclic: bool,
        trips: u32,
    },
}

#[derive(Debug, Clone)]
struct Block {
    start_pc: u64,
    /// Total instructions including the terminating branch (>= 2).
    size: u32,
    term: Terminator,
}

struct CodeLayout {
    blocks: Vec<Block>,
}

impl CodeLayout {
    fn build(profile: &WorkloadProfile, rng: &mut SmallRng) -> Self {
        let br = &profile.branches;
        let mean_size = br.avg_block_size.max(2.0);
        // First pass: sizes, until the footprint is covered.
        let mut sizes = Vec::new();
        let mut bytes = 0u64;
        while bytes < br.code_footprint || sizes.len() < 8 {
            let size = sample_geometric(rng, mean_size - 1.0).max(1) + 1; // >= 2
            bytes += u64::from(size) * 4;
            sizes.push(size);
        }
        let n = sizes.len();
        // Indirect dispatch sites: real programs concentrate indirect
        // control in a handful of hot dispatch points (interpreter loops,
        // vtable hubs), so pick a small fixed set of blocks up front —
        // spreading `indirect_frac` thinly over thousands of sites would
        // leave every site too cold to train any target predictor.
        let n_indirect = ((n as f64 * br.indirect_frac).round() as usize)
            .clamp(if br.indirect_frac > 0.0 { 2 } else { 0 }, 12);
        let mut indirect_sites = FnvHashSet::default();
        while indirect_sites.len() < n_indirect && n > 16 {
            indirect_sites.insert(rng.gen_range(0..n - 10));
        }
        // Second pass: lay out and assign terminators. Indirect dispatch
        // sites force the following `m` blocks to be their case bodies
        // (each jumping straight back to the dispatch), recorded here.
        let mut forced: FnvHashMap<usize, Terminator> = FnvHashMap::default();
        let mut blocks = Vec::with_capacity(n);
        let mut pc = CODE_BASE;
        for (i, &size) in sizes.iter().enumerate() {
            let term = if i == n - 1 {
                // The last block cannot fall through consistently; close
                // the walk with an unconditional jump to the entry.
                Terminator::Jump { target: 0 }
            } else if let Some(t) = forced.remove(&i) {
                t
            } else if indirect_sites.contains(&i) {
                Self::make_indirect(rng, i, n, &mut forced)
            } else {
                Self::pick_terminator(br, rng, i, n)
            };
            blocks.push(Block {
                start_pc: pc,
                size,
                term,
            });
            pc += u64::from(size) * 4;
        }
        Self { blocks }
    }

    fn pick_terminator(
        br: &crate::profile::BranchModel,
        rng: &mut SmallRng,
        i: usize,
        n: usize,
    ) -> Terminator {
        // Jumps and calls target *forward* blocks only: every backward
        // (cycle-closing) edge is then either a conditional or a
        // deterministic-trip pattern loop, so the walk cannot trap itself
        // in a conditional-free cycle.
        let r: f64 = rng.gen();
        if r < br.call_frac {
            Terminator::Call {
                target: rng.gen_range(i + 1..n),
            }
        } else if r < 2.0 * br.call_frac {
            Terminator::Ret
        } else if r < 2.0 * br.call_frac + 0.06 {
            Terminator::Jump {
                target: rng.gen_range(i + 1..n),
            }
        } else {
            // Conditional: choose the site population, then a taken target
            // consistent with it. Loop sites run a *deterministic* trip
            // count (taken period-1 times, then not-taken), which bounds
            // replay of hot regions and gives history predictors something
            // to learn — Bernoulli backward branches would trap the walk
            // in a few unboundedly-hot loops.
            let s: f64 = rng.gen();
            let (site, taken_target) = if s < br.pattern_frac {
                let mean_trips = 8.0;
                let period = (2 + sample_geometric(rng, mean_trips - 2.0)).min(24);
                let lo = i.saturating_sub(8);
                (SiteKind::Pattern { period }, rng.gen_range(lo..=i))
            } else if s < br.pattern_frac + br.easy_frac {
                let taken_bias = if rng.gen::<f64>() < 0.5 { 0.97 } else { 0.03 };
                // Strongly-taken sites must not point backward, or they
                // become unbounded loops; rarely-taken sites may point
                // anywhere (their taken edge almost never fires).
                let target = if taken_bias > 0.5 {
                    // pick_terminator is never called for the last block,
                    // so i + 1 < n always holds here.
                    rng.gen_range(i + 1..n)
                } else if rng.gen::<f64>() < br.loop_back_frac {
                    rng.gen_range(i.saturating_sub(8)..=i)
                } else {
                    rng.gen_range(0..n)
                };
                (SiteKind::Easy { taken_bias }, target)
            } else {
                let target = if rng.gen::<f64>() < br.loop_back_frac {
                    rng.gen_range(i.saturating_sub(8)..=i)
                } else {
                    rng.gen_range(0..n)
                };
                // 60% of the hard population is Markov-correlated (runs
                // of repeated outcomes); the rest is memoryless.
                let site = if rng.gen::<f64>() < 0.6 {
                    SiteKind::Sticky {
                        q_same: rng.gen_range(0.75..0.95),
                    }
                } else {
                    SiteKind::Hard {
                        taken_bias: 0.5 + rng.gen_range(-br.hard_spread..=br.hard_spread),
                    }
                };
                (site, target)
            };
            Terminator::Cond { taken_target, site }
        }
    }
}

impl CodeLayout {
    /// Builds an indirect dispatch loop at block `i`: the next `m` blocks
    /// become its case bodies (forced to jump straight back), and the
    /// dispatch runs bounded trips before exiting forward.
    fn make_indirect(
        rng: &mut SmallRng,
        i: usize,
        n: usize,
        forced: &mut FnvHashMap<usize, Terminator>,
    ) -> Terminator {
        let m = rng
            .gen_range(2..=6usize)
            .min(n.saturating_sub(i + 2))
            .max(1);
        let cases: Vec<usize> = (i + 1..=i + m).collect();
        for &c in &cases {
            forced.insert(c, Terminator::Jump { target: i });
        }
        Terminator::Indirect {
            cases,
            exit: (i + m + 1).min(n - 1),
            q: rng.gen_range(0.4..0.9),
            cyclic: rng.gen::<f64>() < 0.4,
            trips: rng.gen_range(4..=10),
        }
    }
}

/// Draws from a geometric distribution with the given mean (mean >= 0).
fn sample_geometric(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()) as u32
}

struct Walker<'a> {
    profile: &'a WorkloadProfile,
    rng: SmallRng,
    layout: CodeLayout,
    /// Per-block dynamic pattern phase (indexed by block id).
    phases: Vec<u32>,
    /// Per-block previous outcome for Markov (sticky) sites.
    last_outcomes: Vec<bool>,
    /// Per-block dispatch-loop trip counters for indirect sites.
    indirect_trips: Vec<u32>,
    /// Dynamic indirect executions so far, for the budget below.
    indirect_emitted: usize,
    /// Recently used warm (0) and cold (1) addresses for temporal reuse.
    reuse_rings: [Vec<u64>; 2],
    reuse_cursors: [usize; 2],
    /// Per-site sequential cursors for streaming accesses into the warm
    /// region.
    stream_cursors: FnvHashMap<u64, u64>,
    call_stack: Vec<usize>,
    ops: Vec<MicroOp>,
    /// Index of the most recent load, for pointer chasing.
    last_load: Option<usize>,
}

impl<'a> Walker<'a> {
    fn new(profile: &'a WorkloadProfile, n_ops: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let layout = CodeLayout::build(profile, &mut rng);
        let n_blocks = layout.blocks.len();
        let phases = vec![0; n_blocks];
        let last_outcomes = vec![false; n_blocks];
        Self {
            profile,
            rng,
            layout,
            phases,
            last_outcomes,
            indirect_trips: vec![0; n_blocks],
            indirect_emitted: 0,
            reuse_rings: [Vec::new(), Vec::new()],
            reuse_cursors: [0, 0],
            stream_cursors: FnvHashMap::default(),
            call_stack: Vec::new(),
            ops: Vec::with_capacity(n_ops),
            last_load: None,
        }
    }

    fn draw_srcs(&mut self) -> [Option<u32>; 2] {
        let deps = &self.profile.deps;
        let here = self.ops.len() as u32;
        if here == 0 || self.rng.gen::<f64>() < deps.no_src_frac {
            return [None, None];
        }
        let draw = |rng: &mut SmallRng| -> u32 {
            let d = 1 + sample_geometric(rng, deps.mean_distance - 1.0);
            d.min(deps.max_distance).min(here)
        };
        let s1 = draw(&mut self.rng);
        let s2 = if self.rng.gen::<f64>() < deps.two_src_frac {
            Some(draw(&mut self.rng))
        } else {
            None
        };
        [Some(s1), s2]
    }

    /// Deterministic per-site choice: does the memory instruction at `pc`
    /// stream? Streaming is a property of the *instruction* (an array
    /// walk in a loop), so the decision hashes the PC — that gives each
    /// streaming site a constant stride, the pattern stride prefetchers
    /// are built for.
    fn site_streams(&self, pc: u64) -> bool {
        let h = (pc >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        ((h % 1000) as f64) < self.profile.memory.stream_frac * 1000.0
    }

    fn draw_data_addr(&mut self, pc: u64) -> u64 {
        let m = &self.profile.memory;
        // Streaming sites sweep a shared L2-resident region, each from
        // its own starting offset with a constant 16-byte stride — the
        // repeatedly-walked hot arrays of a real program, and exactly the
        // pattern a reference-prediction-table prefetcher locks onto.
        if self.site_streams(pc) {
            let buf = STREAM_REGION.min(m.warm_bytes.max(64));
            let cursor = self
                .stream_cursors
                .entry(pc)
                .or_insert_with(|| ((pc.wrapping_mul(0x2545_f491_4f6c_dd1d)) % buf) & !63);
            let addr = WARM_BASE + *cursor;
            *cursor = (*cursor + 16) % buf;
            return addr;
        }
        let r: f64 = self.rng.gen();
        if r < m.hot_frac {
            // The hot region is small enough that random addressing
            // already reuses lines heavily.
            return HOT_BASE + (self.rng.gen_range(0..m.hot_bytes.max(8)) & !7);
        }
        let (base, size, ring_idx) = if r < m.hot_frac + m.warm_frac {
            (WARM_BASE, m.warm_bytes, 0)
        } else {
            (COLD_BASE, m.cold_bytes, 1)
        };
        // Temporal locality: revisit a recently used address with
        // probability `region_reuse`.
        let ring_len = self.reuse_rings[ring_idx].len();
        if ring_len > 0 && self.rng.gen::<f64>() < m.region_reuse {
            let pick = self.rng.gen_range(0..ring_len);
            return self.reuse_rings[ring_idx][pick];
        }
        let addr = base + (self.rng.gen_range(0..size.max(8)) & !7);
        let ring = &mut self.reuse_rings[ring_idx];
        if ring.len() < REUSE_RING {
            ring.push(addr);
        } else {
            let slot = self.reuse_cursors[ring_idx];
            ring[slot] = addr;
            self.reuse_cursors[ring_idx] = (slot + 1) % REUSE_RING;
        }
        addr
    }

    fn draw_body_class(&mut self) -> OpClass {
        let p = self.profile;
        let mut r: f64 = self.rng.gen();
        for (frac, class) in [
            (p.load_frac, OpClass::Load),
            (p.store_frac, OpClass::Store),
            (p.int_mul_frac, OpClass::IntMul),
            (p.int_div_frac, OpClass::IntDiv),
            (p.fp_add_frac, OpClass::FpAdd),
            (p.fp_mul_frac, OpClass::FpMul),
            (p.fp_div_frac, OpClass::FpDiv),
        ] {
            if r < frac {
                return class;
            }
            r -= frac;
        }
        OpClass::IntAlu
    }

    fn emit_body_op(&mut self, pc: u64) {
        let class = self.draw_body_class();
        let mut srcs = self.draw_srcs();
        match class {
            OpClass::Load => {
                let addr = self.draw_data_addr(pc);
                // Pointer chasing: the address depends on the previous
                // load's value.
                if self.rng.gen::<f64>() < self.profile.memory.pointer_chase_frac {
                    if let Some(prev) = self.last_load {
                        let dist = (self.ops.len() - prev) as u32;
                        srcs[0] = Some(dist);
                    }
                }
                self.last_load = Some(self.ops.len());
                self.ops.push(MicroOp::load(pc, addr, srcs));
            }
            OpClass::Store => {
                let addr = self.draw_data_addr(pc);
                self.ops.push(MicroOp::store(pc, addr, srcs));
            }
            other => self.ops.push(MicroOp::alu(pc, other, srcs)),
        }
    }

    fn resolve_cond(&mut self, block_id: usize, site: SiteKind) -> bool {
        match site {
            SiteKind::Easy { taken_bias } | SiteKind::Hard { taken_bias } => {
                self.rng.gen::<f64>() < taken_bias
            }
            SiteKind::Pattern { period } => {
                let phase = self.phases[block_id];
                self.phases[block_id] = (phase + 1) % period;
                phase != period - 1
            }
            SiteKind::Sticky { q_same } => {
                let last = self.last_outcomes[block_id];
                let taken = if self.rng.gen::<f64>() < q_same {
                    last
                } else {
                    !last
                };
                self.last_outcomes[block_id] = taken;
                taken
            }
        }
    }

    /// Emits one block; returns the next block id.
    fn step(&mut self, block_id: usize, budget: usize) -> usize {
        // Copy out the scalars instead of cloning the block: a clone
        // would heap-allocate the case table of every indirect dispatch
        // site on every trip through its (hot, by construction) loop.
        let (start_pc, body) = {
            let block = &self.layout.blocks[block_id];
            (block.start_pc, block.size - 1)
        };
        for j in 0..body {
            if self.ops.len() >= budget {
                return block_id;
            }
            self.emit_body_op(start_pc + u64::from(j) * 4);
        }
        if self.ops.len() >= budget {
            return block_id;
        }
        let term_pc = start_pc + u64::from(body) * 4;
        let fall_through = (block_id + 1) % self.layout.blocks.len();
        match self.layout.blocks[block_id].term {
            Terminator::Cond { taken_target, site } => {
                let taken = self.resolve_cond(block_id, site);
                let target_pc = self.layout.blocks[taken_target].start_pc;
                let srcs = self.draw_srcs();
                self.ops.push(MicroOp::branch(
                    term_pc,
                    BranchKind::Conditional,
                    taken,
                    target_pc,
                    srcs,
                ));
                if taken {
                    taken_target
                } else {
                    fall_through
                }
            }
            Terminator::Jump { target } => {
                let target_pc = self.layout.blocks[target].start_pc;
                self.ops.push(MicroOp::branch(
                    term_pc,
                    BranchKind::Jump,
                    true,
                    target_pc,
                    [None, None],
                ));
                target
            }
            Terminator::Call { target } => {
                let target_pc = self.layout.blocks[target].start_pc;
                if self.call_stack.len() == MAX_CALL_DEPTH {
                    self.call_stack.remove(0);
                }
                self.call_stack.push(fall_through);
                self.ops.push(MicroOp::branch(
                    term_pc,
                    BranchKind::Call,
                    true,
                    target_pc,
                    [None, None],
                ));
                target
            }
            Terminator::Indirect {
                ref cases,
                exit,
                q,
                cyclic,
                trips,
            } => {
                // Only the case count leaves the borrow; the chosen case
                // is re-read by index below, after the RNG and trip-state
                // updates that need `&mut self`.
                let n_cases = cases.len();
                // Dispatch loops are magnets for the walk (fall-through
                // and loop-backs re-enter them), so a dynamic budget
                // keeps the *active* (loop-running) indirect share near
                // `indirect_frac` of all instructions instead of letting
                // hot loops run away.
                let budget = self.profile.branches.indirect_frac * self.ops.len().max(1) as f64;
                let done = self.indirect_trips[block_id];
                let target =
                    if done >= trips || n_cases == 0 || (self.indirect_emitted as f64) > budget {
                        self.indirect_trips[block_id] = 0;
                        exit
                    } else {
                        self.indirect_trips[block_id] = done + 1;
                        self.indirect_emitted += 1;
                        let case = if cyclic {
                            let phase = self.phases[block_id] as usize;
                            self.phases[block_id] = (phase as u32 + 1) % n_cases as u32;
                            phase % n_cases
                        } else if self.rng.gen::<f64>() < q {
                            0
                        } else {
                            self.rng.gen_range(0..n_cases)
                        };
                        let Terminator::Indirect { ref cases, .. } =
                            self.layout.blocks[block_id].term
                        else {
                            unreachable!("terminator kind cannot change mid-walk")
                        };
                        cases[case]
                    };
                let target_pc = self.layout.blocks[target].start_pc;
                let srcs = self.draw_srcs();
                self.ops.push(MicroOp::branch(
                    term_pc,
                    BranchKind::IndirectJump,
                    true,
                    target_pc,
                    srcs,
                ));
                target
            }
            Terminator::Ret => {
                // An empty stack re-draws a random target per execution:
                // a deterministic fallback (always block 0) could close a
                // conditional-free cycle and trap the walk.
                let n = self.layout.blocks.len();
                let target = self
                    .call_stack
                    .pop()
                    .unwrap_or_else(|| self.rng.gen_range(0..n));
                let target_pc = self.layout.blocks[target].start_pc;
                let srcs = self.draw_srcs();
                self.ops.push(MicroOp::branch(
                    term_pc,
                    BranchKind::Return,
                    true,
                    target_pc,
                    srcs,
                ));
                target
            }
        }
    }
}

/// Generates `n_ops` instructions from `profile` with the given seed.
pub(crate) fn generate(profile: &WorkloadProfile, n_ops: usize, seed: u64) -> Trace {
    let mut walker = Walker::new(profile, n_ops, seed);
    let mut block = 0usize;
    while walker.ops.len() < n_ops {
        block = walker.step(block, n_ops);
    }
    Trace::from_ops_unchecked(walker.ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::TraceBuilder;

    fn generate_default(n: usize, seed: u64) -> Trace {
        WorkloadProfile::default().generate(n, seed)
    }

    #[test]
    fn produces_exact_length() {
        for n in [1, 17, 1000] {
            assert_eq!(generate_default(n, 1).len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_default(5000, 99);
        let b = generate_default(5000, 99);
        assert_eq!(a, b);
        let c = generate_default(5000, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn control_flow_is_consistent() {
        // The defining structural invariant: each op's next_pc is the pc
        // of the next op in the trace.
        let t = generate_default(20_000, 7);
        for pair in t.ops().windows(2) {
            assert_eq!(
                pair[0].next_pc(),
                pair[1].pc(),
                "control-flow discontinuity after {:?}",
                pair[0]
            );
        }
    }

    #[test]
    fn dependences_stay_in_range() {
        let t = generate_default(20_000, 3);
        let mut b = TraceBuilder::with_capacity(t.len());
        for op in t.iter() {
            b.push(*op).expect("generated dependences must be in range");
        }
    }

    #[test]
    fn mix_approximates_profile() {
        let p = WorkloadProfile {
            load_frac: 0.3,
            store_frac: 0.1,
            ..WorkloadProfile::default()
        };
        let t = p.generate(100_000, 11);
        let s = t.stats();
        let branch_frac = s.fraction(bmp_uarch::OpClass::Branch);
        // Body fractions are diluted by the branch fraction.
        let body = 1.0 - branch_frac;
        let load = s.fraction(bmp_uarch::OpClass::Load);
        assert!(
            (load - 0.3 * body).abs() < 0.02,
            "load fraction {load} vs expected {}",
            0.3 * body
        );
        // One branch per ~8-instruction block.
        assert!(
            (branch_frac - 1.0 / 8.0).abs() < 0.04,
            "branch fraction {branch_frac}"
        );
    }

    #[test]
    fn code_stays_within_declared_footprint_region() {
        let mut p = WorkloadProfile::default();
        p.branches.code_footprint = 16 * 1024;
        let t = p.generate(50_000, 5);
        // Footprint may overshoot by one block; allow 2x slack.
        let max_pc = t.iter().map(|o| o.pc()).max().unwrap();
        assert!(max_pc < CODE_BASE + 32 * 1024, "max pc {max_pc:#x}");
        assert!(t.iter().all(|o| o.pc() >= CODE_BASE));
    }

    #[test]
    fn data_addresses_fall_in_declared_regions() {
        let t = generate_default(50_000, 13);
        for op in t.iter() {
            if let Some(addr) = op.mem_addr() {
                let m = WorkloadProfile::default().memory;
                let in_hot = (HOT_BASE..HOT_BASE + m.hot_bytes).contains(&addr);
                let in_warm = (WARM_BASE..WARM_BASE + m.warm_bytes).contains(&addr);
                let in_cold = (COLD_BASE..COLD_BASE + m.cold_bytes).contains(&addr);
                assert!(
                    in_hot || in_warm || in_cold,
                    "address {addr:#x} outside regions"
                );
            }
        }
    }

    #[test]
    fn returns_match_calls_when_balanced() {
        let t = generate_default(100_000, 21);
        // Every Return in the middle of the trace should target the
        // instruction after some earlier Call (checked structurally via
        // the next_pc invariant, already asserted above); here we check
        // calls and returns are both present so the RAS model is
        // exercised.
        let calls = t
            .iter()
            .filter(|o| o.branch_info().is_some_and(|b| b.kind == BranchKind::Call))
            .count();
        let rets = t
            .iter()
            .filter(|o| {
                o.branch_info()
                    .is_some_and(|b| b.kind == BranchKind::Return)
            })
            .count();
        assert!(calls > 20, "expected calls, got {calls}");
        assert!(rets > 20, "expected returns, got {rets}");
    }

    #[test]
    fn pattern_sites_are_periodic() {
        let mut p = WorkloadProfile::default();
        p.branches.easy_frac = 0.0;
        p.branches.pattern_frac = 1.0;
        let t = p.generate(50_000, 2);
        // Group conditional outcomes by pc; every site must show a strict
        // period: the gap between not-taken outcomes is constant.
        use std::collections::HashMap;
        let mut by_pc: HashMap<u64, Vec<bool>> = HashMap::new();
        for op in t.iter() {
            if op.is_conditional_branch() {
                by_pc
                    .entry(op.pc())
                    .or_default()
                    .push(op.branch_info().unwrap().taken);
            }
        }
        let mut checked = 0;
        for (_, outcomes) in by_pc {
            if outcomes.len() < 20 {
                continue;
            }
            let nt: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, &t)| !t)
                .map(|(i, _)| i)
                .collect();
            if nt.len() < 3 {
                continue;
            }
            let gaps: Vec<usize> = nt.windows(2).map(|w| w[1] - w[0]).collect();
            assert!(
                gaps.windows(2).all(|g| g[0] == g[1]),
                "pattern site should be strictly periodic: {gaps:?}"
            );
            checked += 1;
        }
        assert!(checked > 0, "no pattern sites observed");
    }

    #[test]
    fn indirect_sites_have_varying_targets() {
        let mut p = WorkloadProfile::default();
        p.branches.indirect_frac = 0.10;
        let t = p.generate(100_000, 3);
        use std::collections::HashMap;
        let mut targets: HashMap<u64, (u32, std::collections::HashSet<u64>)> = HashMap::new();
        let mut dynamic = 0;
        for op in t.iter() {
            if let Some(info) = op.branch_info() {
                if info.kind == BranchKind::IndirectJump {
                    dynamic += 1;
                    let e = targets.entry(op.pc()).or_default();
                    e.0 += 1;
                    e.1.insert(info.target);
                }
            }
        }
        assert!(
            dynamic > 200,
            "expected many indirect executions, got {dynamic}"
        );
        // Hot sites (executed often enough to sample their distribution)
        // must show several targets — that is what defeats the BTB.
        let hot: Vec<_> = targets.values().filter(|(n, _)| *n >= 10).collect();
        assert!(!hot.is_empty(), "need hot indirect sites");
        let multi = hot.iter().filter(|(_, s)| s.len() >= 2).count();
        assert!(
            multi * 2 > hot.len(),
            "most hot indirect sites should show several targets: {multi}/{}",
            hot.len()
        );
        // Control-flow invariant still holds with indirects in the mix.
        for pair in t.ops().windows(2) {
            assert_eq!(pair[0].next_pc(), pair[1].pc());
        }
    }

    #[test]
    fn zero_indirect_frac_produces_none() {
        let mut p = WorkloadProfile::default();
        p.branches.indirect_frac = 0.0;
        let t = p.generate(30_000, 3);
        let any = t.iter().any(|op| {
            op.branch_info()
                .is_some_and(|b| b.kind == BranchKind::IndirectJump)
        });
        assert!(!any);
    }

    #[test]
    fn pointer_chase_creates_load_load_dependences() {
        let mut p = WorkloadProfile::default();
        p.memory.pointer_chase_frac = 1.0;
        p.load_frac = 0.5;
        let t = p.generate(10_000, 17);
        // Find a load whose source distance points exactly at the previous
        // load.
        let loads: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, o)| o.class() == bmp_uarch::OpClass::Load)
            .map(|(i, _)| i)
            .collect();
        let mut chained = 0;
        for w in loads.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            if t.get(cur).unwrap().srcs()[0] == Some((cur - prev) as u32) {
                chained += 1;
            }
        }
        assert!(
            chained as f64 > loads.len() as f64 * 0.8,
            "expected most loads chained, got {chained}/{}",
            loads.len()
        );
    }
}
