//! Workload synthesis for the `mispredict` workspace.
//!
//! The paper evaluates on SPEC CPU2000 integer binaries, which are not
//! available here. Interval analysis, however, consumes only the
//! *statistical structure* of the dynamic instruction stream — the
//! instruction mix, the register dependence-distance profile, branch
//! predictability, and cache working-set behaviour. This crate synthesizes
//! dynamic traces with precisely those properties controlled:
//!
//! * [`WorkloadProfile`] — the knobs: body instruction mix, dependence
//!   model, control-flow structure (basic-block sizes, code footprint,
//!   branch-bias population) and memory working sets;
//! * [`spec`] — twelve SPECint2000-named profiles with parameters chosen
//!   to land in the qualitative regime of each benchmark (bursty vs. not,
//!   predictable vs. not, cache-friendly vs. not);
//! * [`micro`] — controlled microbenchmarks that pin a single contributor
//!   (dependence-chain length, ILP, pointer chasing, branch bias) for the
//!   sensitivity experiments E-F7/E-F8.
//!
//! Generation is fully deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use bmp_workloads::spec;
//!
//! let profile = spec::by_name("gcc").unwrap();
//! let trace = profile.generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! // Determinism: same seed, same trace.
//! assert_eq!(trace, profile.generate(10_000, 42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod generator;
pub mod micro;
pub mod phases;
mod profile;
pub mod spec;

pub use builder::ProfileBuilder;
pub use profile::{BranchModel, DependenceModel, MemoryModel, ProfileError, WorkloadProfile};
