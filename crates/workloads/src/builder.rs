//! Ergonomic construction of [`WorkloadProfile`]s.
//!
//! The profile struct nests three sub-models; the builder flattens the
//! common knobs into one chain and validates at the end, so custom
//! workloads read as a sentence:
//!
//! ```
//! use bmp_workloads::ProfileBuilder;
//!
//! let p = ProfileBuilder::new("my-kernel")
//!     .loads(0.30)
//!     .block_size(6.0)
//!     .hard_branches(0.25)
//!     .dependence_distance(2.5)
//!     .working_set(16 * 1024, 128 * 1024)
//!     .pointer_chase(0.2)
//!     .build()
//!     .unwrap();
//! assert_eq!(p.name, "my-kernel");
//! assert!(p.validate().is_ok());
//! ```

use crate::profile::{ProfileError, WorkloadProfile};

/// Builder for [`WorkloadProfile`]; see the module docs above.
///
/// Starts from [`WorkloadProfile::default`] — every setter overrides one
/// aspect, and [`build`](ProfileBuilder::build) validates.
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: WorkloadProfile,
}

impl ProfileBuilder {
    /// Creates a builder for a profile named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            profile: WorkloadProfile {
                name: name.to_owned(),
                ..WorkloadProfile::default()
            },
        }
    }

    /// Starts from an existing profile (e.g. a [`spec`](crate::spec)
    /// benchmark) for derived variants.
    pub fn from_profile(profile: WorkloadProfile) -> Self {
        Self { profile }
    }

    /// Fraction of body instructions that are loads.
    pub fn loads(mut self, frac: f64) -> Self {
        self.profile.load_frac = frac;
        self
    }

    /// Fraction of body instructions that are stores.
    pub fn stores(mut self, frac: f64) -> Self {
        self.profile.store_frac = frac;
        self
    }

    /// Total floating-point fraction, split 50/40/10 across add,
    /// multiply and divide as in the SPEC-like profiles.
    pub fn floating_point(mut self, frac: f64) -> Self {
        self.profile.fp_add_frac = frac * 0.5;
        self.profile.fp_mul_frac = frac * 0.4;
        self.profile.fp_div_frac = frac * 0.1;
        self
    }

    /// Mean register dependence distance (inherent ILP, contributor iii).
    pub fn dependence_distance(mut self, mean: f64) -> Self {
        self.profile.deps.mean_distance = mean;
        self
    }

    /// Mean dynamic basic-block size (branch density).
    pub fn block_size(mut self, mean: f64) -> Self {
        self.profile.branches.avg_block_size = mean;
        self
    }

    /// Static code footprint in bytes (I-cache pressure).
    pub fn code_footprint(mut self, bytes: u64) -> Self {
        self.profile.branches.code_footprint = bytes;
        self
    }

    /// Fraction of branch sites that are *hard* (weakly biased); the
    /// remainder is split between easy and pattern sites in the default
    /// 3:1 ratio.
    pub fn hard_branches(mut self, frac: f64) -> Self {
        let rest = (1.0 - frac).max(0.0);
        self.profile.branches.easy_frac = rest * 0.75;
        self.profile.branches.pattern_frac = rest * 0.25;
        self
    }

    /// Fraction of blocks ending in indirect dispatch.
    pub fn indirect(mut self, frac: f64) -> Self {
        self.profile.branches.indirect_frac = frac;
        self
    }

    /// Hot (L1-resident) and warm (L2-resident) working-set sizes in
    /// bytes, with the default 0.85/0.12 access split.
    pub fn working_set(mut self, hot_bytes: u64, warm_bytes: u64) -> Self {
        self.profile.memory.hot_bytes = hot_bytes;
        self.profile.memory.warm_bytes = warm_bytes;
        self
    }

    /// Probability split of data accesses across hot/warm (the rest goes
    /// cold — long misses).
    pub fn access_split(mut self, hot_frac: f64, warm_frac: f64) -> Self {
        self.profile.memory.hot_frac = hot_frac;
        self.profile.memory.warm_frac = warm_frac;
        self
    }

    /// Fraction of loads whose address depends on the previous load.
    pub fn pointer_chase(mut self, frac: f64) -> Self {
        self.profile.memory.pointer_chase_frac = frac;
        self
    }

    /// Fraction of data accesses that stream sequentially (stride
    /// prefetcher fodder).
    pub fn streams(mut self, frac: f64) -> Self {
        self.profile.memory.stream_frac = frac;
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProfileError`] found.
    pub fn build(self) -> Result<WorkloadProfile, ProfileError> {
        self.profile.validate()?;
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let p = ProfileBuilder::new("x").build().unwrap();
        assert_eq!(p.name, "x");
    }

    #[test]
    fn setters_land_in_the_right_places() {
        let p = ProfileBuilder::new("y")
            .loads(0.3)
            .stores(0.05)
            .floating_point(0.2)
            .dependence_distance(3.0)
            .block_size(5.0)
            .code_footprint(128 * 1024)
            .hard_branches(0.4)
            .indirect(0.01)
            .working_set(8 * 1024, 64 * 1024)
            .access_split(0.9, 0.08)
            .pointer_chase(0.15)
            .streams(0.1)
            .build()
            .unwrap();
        assert_eq!(p.load_frac, 0.3);
        assert!((p.fp_add_frac - 0.1).abs() < 1e-12);
        assert_eq!(p.deps.mean_distance, 3.0);
        assert_eq!(p.branches.code_footprint, 128 * 1024);
        assert!((p.branches.easy_frac - 0.45).abs() < 1e-12);
        assert!((p.branches.pattern_frac - 0.15).abs() < 1e-12);
        assert_eq!(p.memory.hot_bytes, 8 * 1024);
        assert_eq!(p.memory.pointer_chase_frac, 0.15);
    }

    #[test]
    fn invalid_combinations_error() {
        assert!(ProfileBuilder::new("bad")
            .loads(0.9)
            .stores(0.9)
            .build()
            .is_err());
        assert!(ProfileBuilder::new("bad")
            .access_split(0.9, 0.9)
            .build()
            .is_err());
    }

    #[test]
    fn derived_variants_start_from_base() {
        let base = crate::spec::by_name("gzip").expect("known");
        let hot = base.memory.hot_bytes;
        let variant = ProfileBuilder::from_profile(base)
            .hard_branches(0.5)
            .build()
            .unwrap();
        assert_eq!(variant.memory.hot_bytes, hot, "memory untouched");
        assert!((variant.branches.easy_frac - 0.375).abs() < 1e-12);
    }

    #[test]
    fn built_profiles_generate() {
        let p = ProfileBuilder::new("gen")
            .hard_branches(0.3)
            .build()
            .unwrap();
        assert_eq!(p.generate(2_000, 1).len(), 2_000);
    }
}
