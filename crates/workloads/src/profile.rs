//! The workload profile: every statistical knob of a synthetic benchmark.

use bmp_trace::Trace;
use serde::{Deserialize, Serialize};

/// Error produced when a profile's parameters are inconsistent.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A fraction was outside `[0, 1]`.
    FractionOutOfRange(&'static str, f64),
    /// The body instruction-mix fractions sum to more than 1.
    MixOverflows(f64),
    /// A size or mean that must be positive was not.
    NonPositive(&'static str, f64),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::FractionOutOfRange(name, v) => {
                write!(f, "{name} must be within [0, 1], got {v}")
            }
            ProfileError::MixOverflows(sum) => {
                write!(f, "body instruction mix sums to {sum}, exceeding 1")
            }
            ProfileError::NonPositive(name, v) => {
                write!(f, "{name} must be positive, got {v}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Register dependence structure of the synthetic body instructions —
/// controls contributor (iii), the program's inherent ILP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DependenceModel {
    /// Mean register dependence distance; distances are drawn from a
    /// truncated geometric distribution with this mean. Small values mean
    /// long chains and low ILP.
    pub mean_distance: f64,
    /// Largest distance drawn (the truncation point).
    pub max_distance: u32,
    /// Probability an op has no register source at all.
    pub no_src_frac: f64,
    /// Probability an op has a second register source.
    pub two_src_frac: f64,
}

impl Default for DependenceModel {
    fn default() -> Self {
        Self {
            mean_distance: 4.0,
            max_distance: 64,
            no_src_frac: 0.15,
            two_src_frac: 0.35,
        }
    }
}

/// Control-flow structure: code footprint, basic-block sizes and the
/// predictability of the conditional-branch population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchModel {
    /// Mean dynamic basic-block size (instructions per block, including
    /// the terminating branch). Geometrically distributed with this mean.
    pub avg_block_size: f64,
    /// Static code footprint in bytes; drives I-cache behaviour.
    pub code_footprint: u64,
    /// Fraction of conditional-branch *sites* that are strongly biased
    /// (easy for any predictor).
    pub easy_frac: f64,
    /// Fraction of sites following a short deterministic loop pattern
    /// (easy for history-based predictors, hard for bimodal).
    pub pattern_frac: f64,
    /// Remaining sites draw a taken-bias uniformly from
    /// `[0.5 - hard_spread, 0.5 + hard_spread]` — the hard population.
    pub hard_spread: f64,
    /// Fraction of taken control transfers that are calls (matched by
    /// returns).
    pub call_frac: f64,
    /// Fraction of blocks ending in an *indirect* jump (switch dispatch,
    /// virtual call): its target varies at run time, so the BTB
    /// mispredicts whenever the target changes.
    pub indirect_frac: f64,
    /// Probability a conditional branch's taken edge loops backward to a
    /// nearby block (locality) rather than jumping far.
    pub loop_back_frac: f64,
}

impl Default for BranchModel {
    fn default() -> Self {
        Self {
            avg_block_size: 8.0,
            code_footprint: 64 * 1024,
            easy_frac: 0.6,
            pattern_frac: 0.2,
            hard_spread: 0.3,
            call_frac: 0.04,
            indirect_frac: 0.005,
            loop_back_frac: 0.7,
        }
    }
}

/// Data-memory behaviour: working sets and pointer chasing — controls
/// contributor (v) (short misses) and the long-miss event rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Size of the hot region (intended to fit in L1D).
    pub hot_bytes: u64,
    /// Size of the warm region (intended to fit in L2).
    pub warm_bytes: u64,
    /// Size of the cold region (larger than L2).
    pub cold_bytes: u64,
    /// Probability a data access targets the hot region.
    pub hot_frac: f64,
    /// Probability a data access targets the warm region (the remainder
    /// goes to the cold region).
    pub warm_frac: f64,
    /// Fraction of loads whose *address* depends on the previous load
    /// (pointer chasing — serializes the memory chain).
    pub pointer_chase_frac: f64,
    /// Probability a warm- or cold-region access reuses a recently
    /// touched line instead of a fresh random one — the temporal locality
    /// that keeps compulsory misses from dominating laptop-scale traces.
    pub region_reuse: f64,
    /// Fraction of data accesses that walk *sequentially* through the
    /// warm region (streaming, as in compression or copying) — the access
    /// pattern stride prefetchers exploit.
    pub stream_frac: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self {
            hot_bytes: 16 * 1024,
            warm_bytes: 256 * 1024,
            cold_bytes: 64 * 1024 * 1024,
            hot_frac: 0.85,
            warm_frac: 0.12,
            pointer_chase_frac: 0.05,
            region_reuse: 0.75,
            stream_frac: 0.10,
        }
    }
}

/// A complete synthetic-benchmark description.
///
/// Body instruction-mix fractions cover the non-branch instructions of
/// each basic block; whatever is left after loads, stores and the long-
/// latency classes becomes single-cycle integer ALU work. Branch density
/// is controlled by [`BranchModel::avg_block_size`].
///
/// # Examples
///
/// ```
/// use bmp_workloads::WorkloadProfile;
///
/// let p = WorkloadProfile::default();
/// assert!(p.validate().is_ok());
/// let t = p.generate(5_000, 7);
/// assert_eq!(t.len(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Display name (benchmark name for the SPEC-like profiles).
    pub name: String,
    /// Fraction of body ops that are loads.
    pub load_frac: f64,
    /// Fraction of body ops that are stores.
    pub store_frac: f64,
    /// Fraction of body ops that are integer multiplies.
    pub int_mul_frac: f64,
    /// Fraction of body ops that are integer divides.
    pub int_div_frac: f64,
    /// Fraction of body ops that are FP adds.
    pub fp_add_frac: f64,
    /// Fraction of body ops that are FP multiplies.
    pub fp_mul_frac: f64,
    /// Fraction of body ops that are FP divides.
    pub fp_div_frac: f64,
    /// Register dependence structure.
    pub deps: DependenceModel,
    /// Control-flow structure.
    pub branches: BranchModel,
    /// Data-memory behaviour.
    pub memory: MemoryModel,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        Self {
            name: "default".to_owned(),
            load_frac: 0.25,
            store_frac: 0.12,
            int_mul_frac: 0.01,
            int_div_frac: 0.001,
            fp_add_frac: 0.0,
            fp_mul_frac: 0.0,
            fp_div_frac: 0.0,
            deps: DependenceModel::default(),
            branches: BranchModel::default(),
            memory: MemoryModel::default(),
        }
    }
}

impl WorkloadProfile {
    /// Checks that all fractions are within range and consistent.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found; see [`ProfileError`].
    pub fn validate(&self) -> Result<(), ProfileError> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("int_mul_frac", self.int_mul_frac),
            ("int_div_frac", self.int_div_frac),
            ("fp_add_frac", self.fp_add_frac),
            ("fp_mul_frac", self.fp_mul_frac),
            ("fp_div_frac", self.fp_div_frac),
            ("no_src_frac", self.deps.no_src_frac),
            ("two_src_frac", self.deps.two_src_frac),
            ("easy_frac", self.branches.easy_frac),
            ("pattern_frac", self.branches.pattern_frac),
            ("call_frac", self.branches.call_frac),
            ("indirect_frac", self.branches.indirect_frac),
            ("loop_back_frac", self.branches.loop_back_frac),
            ("hot_frac", self.memory.hot_frac),
            ("warm_frac", self.memory.warm_frac),
            ("pointer_chase_frac", self.memory.pointer_chase_frac),
            ("region_reuse", self.memory.region_reuse),
            ("stream_frac", self.memory.stream_frac),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(ProfileError::FractionOutOfRange(name, v));
            }
        }
        let mix = self.load_frac
            + self.store_frac
            + self.int_mul_frac
            + self.int_div_frac
            + self.fp_add_frac
            + self.fp_mul_frac
            + self.fp_div_frac;
        if mix > 1.0 {
            return Err(ProfileError::MixOverflows(mix));
        }
        if self.branches.easy_frac + self.branches.pattern_frac > 1.0 {
            return Err(ProfileError::FractionOutOfRange(
                "easy_frac + pattern_frac",
                self.branches.easy_frac + self.branches.pattern_frac,
            ));
        }
        if self.memory.hot_frac + self.memory.warm_frac > 1.0 {
            return Err(ProfileError::FractionOutOfRange(
                "hot_frac + warm_frac",
                self.memory.hot_frac + self.memory.warm_frac,
            ));
        }
        if !(self.branches.hard_spread >= 0.0 && self.branches.hard_spread <= 0.5) {
            return Err(ProfileError::FractionOutOfRange(
                "hard_spread",
                self.branches.hard_spread,
            ));
        }
        for (name, v) in [
            ("mean_distance", self.deps.mean_distance),
            ("avg_block_size", self.branches.avg_block_size),
            ("code_footprint", self.branches.code_footprint as f64),
            ("hot_bytes", self.memory.hot_bytes as f64),
            ("warm_bytes", self.memory.warm_bytes as f64),
            ("cold_bytes", self.memory.cold_bytes as f64),
        ] {
            if v <= 0.0 {
                return Err(ProfileError::NonPositive(name, v));
            }
        }
        if self.deps.max_distance == 0 {
            return Err(ProfileError::NonPositive("max_distance", 0.0));
        }
        if self.branches.avg_block_size < 2.0 {
            return Err(ProfileError::NonPositive(
                "avg_block_size (must be at least 2)",
                self.branches.avg_block_size,
            ));
        }
        Ok(())
    }

    /// Synthesizes a dynamic trace of `n_ops` instructions.
    ///
    /// Fully deterministic given (`self`, `seed`).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn generate(&self, n_ops: usize, seed: u64) -> Trace {
        self.validate().expect("profile must be valid");
        crate::generator::generate(self, n_ops, seed)
    }

    /// A 64-bit content fingerprint of every knob in the profile.
    ///
    /// Together with `(n_ops, seed)` this fully addresses the trace
    /// [`generate`](Self::generate) produces — the experiment harness
    /// uses it as the synthesis cache key, so two profiles share a cached
    /// trace iff all their parameters (including the name) are equal.
    pub fn fingerprint(&self) -> u64 {
        bmp_uarch::fp::fingerprint_debug(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(WorkloadProfile::default().validate().is_ok());
    }

    #[test]
    fn rejects_out_of_range_fraction() {
        let p = WorkloadProfile {
            load_frac: 1.5,
            ..WorkloadProfile::default()
        };
        assert!(matches!(
            p.validate(),
            Err(ProfileError::FractionOutOfRange("load_frac", _))
        ));
    }

    #[test]
    fn rejects_overflowing_mix() {
        let p = WorkloadProfile {
            load_frac: 0.6,
            store_frac: 0.6,
            ..WorkloadProfile::default()
        };
        assert!(matches!(p.validate(), Err(ProfileError::MixOverflows(_))));
    }

    #[test]
    fn rejects_tiny_blocks() {
        let mut p = WorkloadProfile::default();
        p.branches.avg_block_size = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_overflowing_branch_population() {
        let mut p = WorkloadProfile::default();
        p.branches.easy_frac = 0.8;
        p.branches.pattern_frac = 0.4;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_overflowing_memory_regions() {
        let mut p = WorkloadProfile::default();
        p.memory.hot_frac = 0.9;
        p.memory.warm_frac = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_zero_max_distance() {
        let mut p = WorkloadProfile::default();
        p.deps.max_distance = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn error_messages() {
        let e = ProfileError::MixOverflows(1.3);
        assert!(e.to_string().contains("1.3"));
    }
}
