//! Property tests over the microbenchmark kernels: structural invariants
//! for arbitrary parameters.

use bmp_trace::Trace;
use bmp_uarch::OpClass;
use bmp_workloads::micro;
use proptest::prelude::*;

fn check_structure(t: &Trace, n: usize) {
    assert_eq!(t.len(), n);
    for pair in t.ops().windows(2) {
        assert_eq!(
            pair[0].next_pc(),
            pair[1].pc(),
            "control-flow break after {:?}",
            pair[0]
        );
    }
    // Dependences never reach before the trace.
    for (i, op) in t.iter().enumerate() {
        for d in op.src_distances() {
            assert!(d as usize <= i, "op {i} reaches before the trace");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chain_kernel_structure(
        n in 1usize..3000,
        k in 1u32..16,
        body in 1u32..128,
    ) {
        let t = micro::chain_kernel(n, k, body, OpClass::IntAlu);
        check_structure(&t, n);
        // Exactly one unconditional jump per body_len ops (give or take
        // truncation at the trace end).
        let jumps = t
            .iter()
            .filter(|o| o.branch_info().is_some())
            .count();
        prop_assert!(jumps <= n / body as usize + 1);
    }

    #[test]
    fn branch_kernel_structure(
        n in 1usize..3000,
        chain in 1u32..32,
        bias in 0.0f64..=1.0,
        seed in 0u64..100,
    ) {
        let t = micro::branch_resolution_kernel(n, chain, bias, seed);
        check_structure(&t, n);
        // Every conditional targets the loop head and depends on the op
        // right before it.
        for op in t.iter().filter(|o| o.is_conditional_branch()) {
            prop_assert_eq!(op.srcs()[0], Some(1));
        }
    }

    #[test]
    fn memory_kernel_structure(
        n in 1usize..3000,
        ws in prop::sample::select(vec![8u64, 256, 4096, 1 << 20]),
        opl in 1u32..8,
        chase in any::<bool>(),
        seed in 0u64..100,
    ) {
        let t = micro::memory_kernel(n, ws, opl, chase, seed);
        check_structure(&t, n);
        for op in t.iter() {
            if let Some(a) = op.mem_addr() {
                prop_assert!(a >= 0x5000_0000 && a < 0x5000_0000 + ws);
            }
        }
    }

    #[test]
    fn indirect_kernel_structure(
        n in 1usize..3000,
        cases in 2u32..10,
        case_len in 1u32..16,
    ) {
        let t = micro::indirect_kernel(n, cases, case_len);
        check_structure(&t, n);
        // All indirect targets fall in the case region.
        let mut distinct = std::collections::HashSet::new();
        for op in t.iter() {
            if let Some(b) = op.branch_info() {
                if b.kind == bmp_trace::BranchKind::IndirectJump {
                    distinct.insert(b.target);
                }
            }
        }
        prop_assert!(distinct.len() <= cases as usize);
    }

    /// Determinism of every kernel.
    #[test]
    fn kernels_are_deterministic(seed in 0u64..100) {
        let a = micro::branch_resolution_kernel(1000, 5, 0.5, seed);
        let b = micro::branch_resolution_kernel(1000, 5, 0.5, seed);
        prop_assert_eq!(a, b);
        let c = micro::memory_kernel(1000, 4096, 3, true, seed);
        let d = micro::memory_kernel(1000, 4096, 3, true, seed);
        prop_assert_eq!(c, d);
    }
}
