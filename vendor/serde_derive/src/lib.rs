//! Offline stub of `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — nothing in the tree actually serializes (there
//! is no `serde_json`/`bincode` dependency), and the build environment has
//! no network access to fetch the real crates. These derive macros
//! therefore expand to nothing, keeping the source compatible with real
//! serde so the stub can be swapped back for the registry crate by editing
//! only the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
