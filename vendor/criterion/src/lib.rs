//! Offline stub of `criterion` (API-compatible subset).
//!
//! The build environment has no registry access, so this crate keeps the
//! workspace's benches compiling and running: [`Criterion`],
//! [`BenchmarkGroup`] (`throughput` / `bench_function` /
//! `bench_with_input` / `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`] and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warmup then a mean over a
//! time-bounded batch of iterations, printed one line per benchmark. There
//! is no statistical analysis, no HTML report, and no saved baselines;
//! numbers are indicative, not publication-grade. Swapping the real
//! criterion back in is a manifest-only change.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimizer from deleting a benchmark's
/// work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration work volume, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warmup_iters: u32,
    measure_for: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            std_black_box(routine());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < self.measure_for || iters == 0 {
            std_black_box(routine());
            iters += 1;
        }
        self.result = Some(started.elapsed() / iters.max(1) as u32);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark, timing whatever the body passes to
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup_iters: self.criterion.warmup_iters,
            measure_for: self.criterion.measure_for,
            result: None,
        };
        body(&mut b);
        self.report(&id.to_string(), b.result);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warmup_iters: self.criterion.warmup_iters,
            measure_for: self.criterion.measure_for,
            result: None,
        };
        body(&mut b, input);
        self.report(&id.to_string(), b.result);
        self
    }

    /// Ends the group. (The stub reports per-bench, so this only exists
    /// for source compatibility.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean: Option<Duration>) {
        let Some(mean) = mean else {
            println!("{}/{id}: no measurement (iter was never called)", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                format!(" ({:.1} Melem/s)", n as f64 / mean.as_nanos() as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}/iter{rate}", self.name);
    }
}

/// Benchmark driver. Construction is cheap; configuration methods the
/// real crate offers are accepted where the workspace uses them.
pub struct Criterion {
    warmup_iters: u32,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: these benches also execute under `cargo test`.
        Self {
            warmup_iters: 1,
            measure_for: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, body);
        self
    }
}

/// Bundles benchmark functions under one name, mirroring upstream's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0u64..100).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion {
            warmup_iters: 0,
            measure_for: Duration::from_micros(50),
        };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("run", "gzip").to_string(), "run/gzip");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
