//! Offline stub of `proptest` (API-compatible subset).
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest this workspace's tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map` / `boxed`, range and tuple strategies, [`Just`],
//! [`any`], `collection::vec`, `sample::select`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! plain random sampling (no size ramping) and failures do not shrink —
//! the failing case is reported as-is. Runs are deterministic: the RNG is
//! seeded from the test's name, so a failure reproduces on every run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic source of randomness handed to [`Strategy::sample`].
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeds the generator from a test name so each property gets an
    /// independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: SmallRng::seed_from_u64(h),
        }
    }
}

/// How a single sampled test case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was filtered out (`prop_assume!` or a `prop_filter`);
    /// the runner draws a replacement.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type the generated test-case closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Executes one property: draws inputs and runs `case` until
/// `config.cases` cases pass, panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails or when rejection (via `prop_assume!` /
/// filters) is so frequent the property cannot make progress.
pub fn run_property<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_cap = u64::from(config.cases) * 256 + 1024;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < reject_cap,
                    "property '{name}': too many rejected cases \
                     ({rejected} rejections for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed (case {passed}): {msg}")
            }
        }
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: `sample` directly
/// draws a value, returning `None` when a filter rejects the draw.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value; `None` means the draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a second strategy, then
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which `pred` is false; `reason` is kept only
    /// for source compatibility.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps values through `f`, rejecting draws where `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let mid = self.inner.sample(rng)?;
        (self.f)(mid).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of its payload.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// A strategy over a type's full "standard" distribution (fair `bool`,
/// full-range integers, `f64` in `[0, 1)`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::sample(&mut rng.inner))
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.inner.gen_range(self.clone()))
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.inner.gen_range(self.clone()))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng)?;)+
                Some(($($v,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
    (A a, B b, C c, D d, E e, F f, G g)
    (A a, B b, C c, D d, E e, F f, G g, H h)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = rng.inner.gen_range(self.size.lo..=self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Picks uniformly from a fixed list of options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.inner.gen_range(0..self.0.len());
            Some(self.0[i].clone())
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prop` module re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `fn name(arg in strategy, ...)`
/// items; each becomes a `#[test]` that samples inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_property(__config, stringify!($name), |__rng| {
                $(
                    let $arg = match $crate::Strategy::sample(&($strat), __rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            return ::core::result::Result::Err($crate::TestCaseError::Reject)
                        }
                    };
                )*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case (the runner draws a replacement) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, pair in (0u64..5, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1), "f64 out of range: {}", pair.1);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 1..20),
            pick in prop::sample::select(vec![10u32, 20, 30]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b % 2 == 0 && b < 8));
            prop_assert!(pick % 10 == 0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

    }

    #[test]
    fn flat_map_and_boxed() {
        let mut rng = crate::TestRng::from_name("flat_map_and_boxed");
        let strat = (1usize..5).prop_flat_map(|len| (Just(len), (0usize..len).boxed()));
        for _ in 0..100 {
            let (len, v) = strat.sample(&mut rng).unwrap();
            assert!(v < len);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        crate::run_property(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn filters_reject_draws() {
        let mut rng = crate::TestRng::from_name("filters");
        let even = (0u32..100).prop_filter("even only", |v| v % 2 == 0);
        let mut seen = 0;
        for _ in 0..200 {
            if let Some(v) = even.sample(&mut rng) {
                assert_eq!(v % 2, 0);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }
}
