//! Offline stub of `rand` (0.8-compatible subset).
//!
//! The build environment has no registry access, so this crate provides
//! the exact API surface the workspace consumes — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range` and `gen_bool` — over a xoshiro256++ core. Workload
//! generation only needs a deterministic, well-mixed stream; it does not
//! need to be bit-identical with upstream `rand`, and all in-tree
//! consumers seed explicitly, so swapping the real crate back in changes
//! generated traces but breaks no test (they assert structure and
//! determinism, not exact bytes).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the `rand::SeedableRng` calls used in
/// this workspace.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator — xoshiro256++ under the hood (upstream
    /// `rand`'s `SmallRng` is the same family on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "p=0.3 gave {hits}");
    }
}
