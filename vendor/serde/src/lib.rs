//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything (no format crate is in the dependency graph),
//! and the build environment cannot reach a registry. This stub keeps the
//! same import surface (`use serde::{Serialize, Deserialize}` resolves to
//! both the traits and the derive macros) so that swapping the real serde
//! back in is a one-line manifest change.

/// Marker stand-in for `serde::Serialize`. The stub derive emits no impl;
/// nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. The stub derive emits no
/// impl; nothing in the workspace requires the bound.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
