//! Property-based integration tests: invariants that must hold for
//! *every* workload the generator can produce and every sane machine.

use mispredict::core::{segment, FunctionalOutcome, PenaltyModel};
use mispredict::sim::Simulator;
use mispredict::trace::TraceBuilder;
use mispredict::uarch::{presets, MachineConfigBuilder, PredictorConfig};
use mispredict::workloads::{micro, WorkloadProfile};
use proptest::prelude::*;

/// A strategy over valid workload profiles (a representative subspace).
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.05f64..0.4,                                   // load_frac
        0.0f64..0.2,                                    // store_frac
        1.5f64..10.0,                                   // dep mean distance
        3.0f64..14.0,                                   // avg block size
        0.0f64..0.8,                                    // easy_frac
        0.0f64..0.2,                                    // pattern_frac
        prop::sample::select(vec![8u64, 32, 128, 512]), // code KiB
        0.3f64..1.0,                                    // hot_frac
    )
        .prop_map(|(load, store, dep, block, easy, pattern, code_kib, hot)| {
            let mut p = WorkloadProfile {
                name: "prop".into(),
                ..WorkloadProfile::default()
            };
            p.load_frac = load;
            p.store_frac = store;
            p.deps.mean_distance = dep;
            p.branches.avg_block_size = block;
            p.branches.easy_frac = easy;
            p.branches.pattern_frac = pattern;
            p.branches.code_footprint = code_kib * 1024;
            p.memory.hot_frac = hot;
            p.memory.warm_frac = (1.0 - hot) * 0.7;
            p
        })
        .prop_filter("profile must validate", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator's structural invariants hold for arbitrary profiles:
    /// exact length, consistent control flow, in-range dependences.
    #[test]
    fn generated_traces_are_structurally_sound(
        profile in arb_profile(),
        n in 500usize..4000,
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(n, seed);
        prop_assert_eq!(trace.len(), n);
        for pair in trace.ops().windows(2) {
            prop_assert_eq!(pair[0].next_pc(), pair[1].pc());
        }
        let mut b = TraceBuilder::with_capacity(n);
        for op in trace.iter() {
            b.push(*op).expect("dependences in range");
        }
    }

    /// The simulator commits every instruction exactly once, and IPC is
    /// bounded by the machine width, on arbitrary workloads.
    #[test]
    fn simulator_commits_everything(
        profile in arb_profile(),
        seed in 0u64..100,
    ) {
        let trace = profile.generate(3_000, seed);
        let res = Simulator::new(presets::baseline_4wide()).run(&trace);
        prop_assert_eq!(res.instructions, 3_000);
        prop_assert!(res.ipc() <= 4.0 + 1e-9);
        prop_assert!(res.cycles > 0);
    }

    /// Model and simulator agree on which branches mispredict (they run
    /// the same predictor over the same stream).
    #[test]
    fn model_and_sim_agree_on_mispredictions(
        profile in arb_profile(),
        seed in 0u64..100,
    ) {
        let cfg = presets::baseline_4wide();
        let trace = profile.generate(3_000, seed);
        let res = Simulator::new(cfg.clone()).run(&trace);
        let out = FunctionalOutcome::compute(&trace, &cfg);
        let sim_positions: Vec<usize> =
            res.mispredicts.iter().map(|m| m.branch_idx).collect();
        prop_assert_eq!(out.mispredict_positions(), sim_positions);
    }

    /// Interval segmentation partitions the trace exactly.
    #[test]
    fn intervals_partition_every_trace(
        profile in arb_profile(),
        seed in 0u64..100,
    ) {
        let cfg = presets::baseline_4wide();
        let trace = profile.generate(2_000, seed);
        let out = FunctionalOutcome::compute(&trace, &cfg);
        let intervals = segment(trace.len(), &out.events);
        let total: usize = intervals.iter().map(|iv| iv.len()).sum();
        prop_assert_eq!(total, trace.len());
        // Intervals are contiguous and ordered.
        for pair in intervals.windows(2) {
            prop_assert_eq!(pair[0].end + 1, pair[1].start);
        }
    }

    /// The penalty decomposition always reconciles: knock-out terms sum
    /// to the local resolution; carryover bridges to the effective one.
    #[test]
    fn decomposition_always_reconciles(
        profile in arb_profile(),
        seed in 0u64..100,
    ) {
        let trace = profile.generate(2_000, seed);
        let analysis = PenaltyModel::new(presets::baseline_4wide()).analyze(&trace);
        for b in &analysis.breakdowns {
            prop_assert_eq!(
                b.base + b.ilp + b.fu_latency + b.short_dmiss,
                b.local_resolution
            );
            prop_assert_eq!(
                b.local_resolution as i64 + b.carryover,
                b.resolution as i64
            );
            prop_assert!(b.base >= 1);
        }
    }

    /// Deepening the frontend can only slow a run down; width can only
    /// help (on the chain kernel where nothing else changes).
    #[test]
    fn machine_monotonicity(seed in 0u64..30) {
        let trace = micro::branch_resolution_kernel(2_000, 4, 0.5, seed);
        let depth = |d: u32| {
            let cfg = MachineConfigBuilder::new()
                .frontend_depth(d)
                .predictor(PredictorConfig::AlwaysNotTaken)
                .build()
                .unwrap();
            Simulator::new(cfg).run(&trace).cycles
        };
        prop_assert!(depth(20) >= depth(5));
    }
}
