//! End-to-end integration tests spanning every crate: workload synthesis
//! → cycle-level simulation → interval-model analysis.

use mispredict::core::{cpi, PenaltyModel};
use mispredict::sim::{MissEventKind, Simulator};
use mispredict::uarch::{presets, PredictorConfig};
use mispredict::workloads::{micro, spec};

const OPS: usize = 30_000;

#[test]
fn every_spec_profile_runs_through_the_full_stack() {
    let machine = presets::baseline_4wide();
    let sim = Simulator::new(machine.clone());
    let model = PenaltyModel::new(machine.clone());
    for profile in spec::all_profiles() {
        let trace = profile.generate(OPS, 3);
        let result = sim.run(&trace);
        assert_eq!(result.instructions, OPS as u64, "{}", profile.name);
        assert!(
            result.ipc() > 0.05 && result.ipc() <= 4.0,
            "{}",
            profile.name
        );

        let analysis = model.analyze(&trace);
        assert!(
            !analysis.breakdowns.is_empty(),
            "{} should mispredict sometimes",
            profile.name
        );
        // The headline invariant on every workload.
        let penalty = result.mean_penalty().expect("has mispredictions");
        assert!(
            penalty > f64::from(machine.frontend_depth),
            "{}: penalty {penalty} vs frontend {}",
            profile.name,
            machine.frontend_depth
        );
    }
}

#[test]
fn perfect_prediction_removes_branch_penalties_and_speeds_up() {
    let trace = spec::by_name("twolf").unwrap().generate(OPS, 5);
    let base = presets::baseline_4wide();
    let with_misses = Simulator::new(base.clone()).run(&trace);
    let perfect_cfg = base
        .to_builder()
        .predictor(PredictorConfig::Perfect)
        .build()
        .unwrap();
    let perfect = Simulator::new(perfect_cfg).run(&trace);
    // A perfect *direction* predictor removes exactly the conditional
    // mispredictions; indirect-jump targets (BTB) and RAS-overflow
    // returns legitimately remain.
    assert!(
        perfect.mispredicts.len() < with_misses.mispredicts.len(),
        "perfect run must mispredict less: {} vs {}",
        perfect.mispredicts.len(),
        with_misses.mispredicts.len()
    );
    for m in &perfect.mispredicts {
        let kind = trace
            .get(m.branch_idx)
            .and_then(|op| op.branch_info())
            .expect("mispredict points at a branch")
            .kind;
        assert!(
            !kind.is_conditional(),
            "oracle must not miss a conditional branch (got one at {})",
            m.branch_idx
        );
    }
    assert!(perfect.cycles < with_misses.cycles);
    // The two-run difference is roughly the per-event penalty times the
    // event count (overlap makes it inexact; demand the right order).
    let saved = (with_misses.cycles - perfect.cycles) as f64;
    let accounted = with_misses.mean_penalty().unwrap() * with_misses.mispredicts.len() as f64;
    let ratio = saved / accounted;
    assert!(
        (0.4..=1.6).contains(&ratio),
        "two-run saving {saved} vs accounted {accounted}"
    );
}

#[test]
fn event_kinds_respond_to_machine_knockouts() {
    // Knock out each miss source in turn and check its events vanish.
    let mut profile = spec::by_name("gcc").unwrap();
    profile.memory.hot_frac = 0.4; // plenty of data misses
    let trace = profile.generate(OPS, 7);

    let base = presets::baseline_4wide();
    let events_of = |cfg: &mispredict::uarch::MachineConfig| {
        let res = Simulator::new(cfg.clone()).run(&trace);
        res.events.iter().fold([0usize; 4], |mut acc, e| {
            let i = match e.kind {
                MissEventKind::BranchMispredict => 0,
                MissEventKind::ICacheMiss => 1,
                MissEventKind::ICacheLongMiss => 2,
                MissEventKind::LongDCacheMiss => 3,
            };
            acc[i] += 1;
            acc
        })
    };

    let all = events_of(&base);
    // Short vs long I-misses split depends on L2 pressure; require each
    // *category* (branch, I-side, D-side) rather than each kind.
    assert!(all[0] > 0, "baseline has branch events: {all:?}");
    assert!(all[1] + all[2] > 0, "baseline has I-cache events: {all:?}");
    assert!(all[3] > 0, "baseline has long D-miss events: {all:?}");

    let perfect = base
        .to_builder()
        .predictor(PredictorConfig::Perfect)
        .build()
        .unwrap();
    let no_branch = events_of(&perfect);
    // Indirect-target and RAS-overflow misses remain; the conditional-
    // direction misses vanish, cutting branch events substantially.
    assert!(
        no_branch[0] < all[0] / 2,
        "perfect predictor removes the conditional majority: {no_branch:?} vs {all:?}"
    );
    assert!(no_branch[3] > 0, "data misses remain");
}

#[test]
fn cpi_stack_tracks_simulator_within_bounds() {
    let machine = presets::baseline_4wide();
    for name in ["gzip", "gcc", "twolf", "crafty"] {
        let trace = spec::by_name(name).unwrap().generate(OPS, 11);
        let measured = Simulator::new(machine.clone()).run(&trace).cpi();
        let stack = cpi::predict(&trace, &machine).cpi();
        let sched = cpi::predict_cycles_scheduled(&trace, &machine) as f64 / OPS as f64;
        let stack_err = (stack - measured).abs() / measured;
        let sched_err = (sched - measured).abs() / measured;
        assert!(stack_err < 0.35, "{name}: stack CPI {stack} vs {measured}");
        assert!(sched_err < 0.35, "{name}: sched CPI {sched} vs {measured}");
    }
}

#[test]
fn microbenchmarks_isolate_their_contributor() {
    let wrong = presets::baseline_4wide()
        .to_builder()
        .predictor(PredictorConfig::AlwaysNotTaken)
        .build()
        .unwrap();
    let model = PenaltyModel::new(wrong.clone());

    // ILP kernel: contributor (iii) dominates the local resolution.
    let ilp_trace = micro::branch_resolution_kernel(OPS, 16, 1.0, 3);
    let a = model.analyze(&ilp_trace);
    let (base, ilp, fu, dmiss) = a.mean_contributions().unwrap();
    assert!(
        ilp > base + fu + dmiss,
        "chain kernel must be ILP-dominated: base {base}, ilp {ilp}, fu {fu}, dmiss {dmiss}"
    );

    // Memory kernel with L1-busting set: contributor (v) appears.
    let mem_trace = micro::memory_kernel(OPS, 256 * 1024, 4, false, 3);
    let sim_res = Simulator::new(wrong).run(&mem_trace);
    assert!(
        sim_res.hierarchy.short_dmisses > 100,
        "short misses expected, got {}",
        sim_res.hierarchy.short_dmisses
    );
}

#[test]
fn deterministic_end_to_end() {
    // Same profile + seed => identical simulation and analysis results.
    let machine = presets::baseline_4wide();
    let t1 = spec::by_name("vpr").unwrap().generate(OPS, 99);
    let t2 = spec::by_name("vpr").unwrap().generate(OPS, 99);
    assert_eq!(t1, t2);
    let r1 = Simulator::new(machine.clone()).run(&t1);
    let r2 = Simulator::new(machine.clone()).run(&t2);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.events, r2.events);
    assert_eq!(r1.mispredicts, r2.mispredicts);
    let a1 = PenaltyModel::new(machine.clone()).analyze(&t1);
    let a2 = PenaltyModel::new(machine).analyze(&t2);
    assert_eq!(a1.breakdowns, a2.breakdowns);
}
