//! Phase study: interval analysis on a program whose behaviour changes
//! mid-run.
//!
//! A crafty-like phase (predictable, cache-resident) is followed by an
//! mcf-like phase (pointer-chasing, memory-bound). The experiment windows
//! the trace and tracks how the miss-event mix, the interval-length
//! distribution and the misprediction penalty move across the boundary —
//! the kind of time-varying view the interval framework makes cheap.
//!
//! ```text
//! cargo run --release --example phase_study
//! ```

use mispredict::core::{segment, FunctionalOutcome, IntervalEventKind, PenaltyModel};
use mispredict::uarch::presets;
use mispredict::workloads::phases::{phased, Phase};
use mispredict::workloads::spec;

fn main() {
    const PHASE_OPS: usize = 100_000;
    let trace = phased(
        &[
            Phase {
                profile: spec::by_name("crafty").expect("known profile"),
                ops: PHASE_OPS,
            },
            Phase {
                profile: spec::by_name("mcf").expect("known profile"),
                ops: PHASE_OPS,
            },
        ],
        33,
    );
    let machine = presets::baseline_4wide();
    let outcome = FunctionalOutcome::compute(&trace, &machine);
    let analysis = PenaltyModel::new(machine).analyze_with(&trace, &outcome);
    let intervals = segment(trace.len(), &outcome.events);

    const WINDOW: usize = 20_000;
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "window", "bmiss", "imiss", "dlong", "mean-ivl", "mean-penalty"
    );
    let mut start = 0;
    while start < trace.len() {
        let end = (start + WINDOW).min(trace.len());
        let (mut b, mut i, mut d) = (0u32, 0u32, 0u32);
        for e in outcome
            .events
            .iter()
            .filter(|e| e.pos >= start && e.pos < end)
        {
            match e.kind {
                IntervalEventKind::BranchMispredict => b += 1,
                IntervalEventKind::ICacheMiss | IntervalEventKind::ICacheLongMiss => i += 1,
                IntervalEventKind::LongDCacheMiss => d += 1,
            }
        }
        let ivls: Vec<usize> = intervals
            .iter()
            .filter(|iv| iv.end >= start && iv.end < end && iv.kind.is_some())
            .map(|iv| iv.len())
            .collect();
        let mean_ivl = if ivls.is_empty() {
            0.0
        } else {
            ivls.iter().sum::<usize>() as f64 / ivls.len() as f64
        };
        let pens: Vec<u64> = analysis
            .breakdowns
            .iter()
            .filter(|bd| bd.branch_idx >= start && bd.branch_idx < end)
            .map(|bd| bd.penalty())
            .collect();
        let mean_pen = if pens.is_empty() {
            0.0
        } else {
            pens.iter().sum::<u64>() as f64 / pens.len() as f64
        };
        println!(
            "{:>10} {b:>8} {i:>8} {d:>8} {mean_ivl:>10.1} {mean_pen:>12.1}",
            format!("{}k", start / 1000),
        );
        start = end;
    }
    println!(
        "\nThe phase boundary at {}k is visible in every column: long D-miss events\n\
         surge, intervals shorten, and the mean misprediction penalty jumps as\n\
         branches start resolving in the shadow of outstanding misses.",
        PHASE_OPS / 1000
    );
}
