//! Predictor shootout: six direction predictors on the twelve workloads.
//!
//! The punchline, in the paper's terms: predictors change *how often* you
//! pay the misprediction penalty, not *how much* each one costs — the
//! per-event penalty is set by the window, the program's ILP and the
//! cache behaviour.
//!
//! ```text
//! cargo run --release --example predictor_shootout
//! ```

use mispredict::sim::Simulator;
use mispredict::uarch::{presets, PredictorConfig};
use mispredict::workloads::spec;

fn main() {
    const OPS: usize = 150_000;
    let predictors: [(&str, PredictorConfig); 6] = [
        ("bimodal", PredictorConfig::Bimodal { entries: 4096 }),
        (
            "gshare",
            PredictorConfig::GShare {
                entries: 4096,
                history_bits: 12,
            },
        ),
        (
            "local",
            PredictorConfig::Local {
                history_entries: 1024,
                history_bits: 10,
                pattern_entries: 1024,
            },
        ),
        (
            "tournament",
            PredictorConfig::Tournament {
                entries: 4096,
                history_bits: 12,
            },
        ),
        (
            "perceptron",
            PredictorConfig::Perceptron {
                entries: 512,
                history_bits: 24,
            },
        ),
        ("perfect", PredictorConfig::Perfect),
    ];

    print!("{:<9}", "bench");
    for (name, _) in &predictors {
        print!(" {name:>11}");
    }
    println!("   (miss-rate% / IPC)");
    println!("{}", "-".repeat(9 + 12 * predictors.len() + 20));

    let mut mean_penalties: Vec<(String, Vec<f64>)> = Vec::new();
    for profile in spec::all_profiles() {
        let trace = profile.generate(OPS, 21);
        print!("{:<9}", profile.name);
        let mut pens = Vec::new();
        for (_, pcfg) in &predictors {
            let cfg = presets::baseline_4wide()
                .to_builder()
                .predictor(*pcfg)
                .build()
                .expect("valid predictor config");
            let res = Simulator::new(cfg).run(&trace);
            print!(
                " {:>4.1}/{:<6.3}",
                res.branch_stats.miss_rate() * 100.0,
                res.ipc()
            );
            pens.push(res.mean_penalty().unwrap_or(f64::NAN));
        }
        println!();
        mean_penalties.push((profile.name.clone(), pens));
    }

    println!("\nmean penalty per event (cycles) — note how *flat* each row is across");
    println!("real predictors, while miss rates above vary by 3-10x:");
    print!("{:<9}", "bench");
    for (name, _) in &predictors[..5] {
        print!(" {name:>11}");
    }
    println!();
    for (name, pens) in &mean_penalties {
        print!("{name:<9}");
        for p in &pens[..5] {
            print!(" {p:>11.1}");
        }
        println!();
    }
}
