//! Design study: how deep can the frontend go?
//!
//! Sweeps the frontend pipeline depth (as the deep-pipeline debates of
//! the paper's era did) and shows how the misprediction penalty — and
//! through it, performance — degrades. The resolution component is
//! depth-independent, so the penalty is `resolution + depth`: a designer
//! who budgets only the pipeline length underestimates every point.
//!
//! ```text
//! cargo run --release --example pipeline_depth_study
//! ```

use mispredict::core::PenaltyModel;
use mispredict::sim::Simulator;
use mispredict::uarch::presets;
use mispredict::workloads::spec;

fn main() {
    const OPS: usize = 150_000;
    let trace = spec::by_name("twolf")
        .expect("twolf is a known profile")
        .generate(OPS, 42);

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "depth", "IPC", "sim-penalty", "resolution", "mod-penalty", "slowdown"
    );
    let mut base_ipc = None;
    for depth in [1u32, 3, 5, 8, 12, 16, 20, 30, 40] {
        let machine = presets::deep_frontend(depth).expect("valid depth");
        let result = Simulator::new(machine.clone()).run(&trace);
        let analysis = PenaltyModel::new(machine).analyze(&trace);
        let ipc = result.ipc();
        let base = *base_ipc.get_or_insert(ipc);
        println!(
            "{depth:>6} {ipc:>8.3} {:>12.1} {:>12.1} {:>12.1} {:>9.1}%",
            result.mean_penalty().unwrap_or(0.0),
            result.mean_resolution().unwrap_or(0.0),
            analysis.mean_penalty().unwrap_or(0.0),
            (base / ipc - 1.0) * 100.0,
        );
    }
    println!(
        "\nThe resolution column barely moves: the penalty grows with depth at slope ~1,\n\
         but its floor — set by window drain, ILP, latencies and short misses — is what\n\
         the paper characterizes."
    );
}
