//! The fidelity ladder: four ways to estimate the same penalty.
//!
//! Interval analysis exists because cycle-level simulation is expensive.
//! This example runs the same workload through every estimator in the
//! workspace and reports both the answer and the time it took:
//!
//! 1. closed form — aggregate statistics only, O(1) per event;
//! 2. local interval scheduling — the paper's pure window model;
//! 3. whole-trace scheduling — "interval simulation";
//! 4. the cycle-level simulator — ground truth.
//!
//! ```text
//! cargo run --release --example model_fidelity
//! ```

use std::time::Instant;

use mispredict::core::{closed_form, PenaltyModel};
use mispredict::sim::Simulator;
use mispredict::uarch::presets;
use mispredict::workloads::spec;

fn main() {
    const OPS: usize = 300_000;
    let machine = presets::baseline_4wide();
    let trace = spec::by_name("twolf")
        .expect("twolf is a known profile")
        .generate(OPS, 42);

    println!("workload: twolf-like, {OPS} instructions\n");
    println!(
        "{:<28} {:>14} {:>12}",
        "estimator", "mean penalty", "wall time"
    );
    println!("{}", "-".repeat(58));

    // 1. Closed form.
    let t0 = Instant::now();
    let cf = closed_form::estimate(&trace, &machine);
    let dt_cf = t0.elapsed();
    println!(
        "{:<28} {:>14.1} {:>9.1} ms",
        "closed form (stats only)",
        cf.mean_penalty,
        dt_cf.as_secs_f64() * 1e3
    );

    // 2 + 3. The penalty model computes both granularities in one pass.
    let t0 = Instant::now();
    let analysis = PenaltyModel::new(machine.clone()).analyze(&trace);
    let dt_model = t0.elapsed();
    let local = analysis
        .breakdowns
        .iter()
        .map(|b| b.local_resolution as f64)
        .sum::<f64>()
        / analysis.breakdowns.len().max(1) as f64
        + f64::from(analysis.frontend_depth);
    println!(
        "{:<28} {:>14.1} {:>9} ",
        "local interval schedule", local, "(shared)"
    );
    println!(
        "{:<28} {:>14.1} {:>9.1} ms",
        "whole-trace schedule",
        analysis.mean_penalty().unwrap_or(0.0),
        dt_model.as_secs_f64() * 1e3
    );

    // 4. The simulator.
    let t0 = Instant::now();
    let res = Simulator::new(machine).run(&trace);
    let dt_sim = t0.elapsed();
    println!(
        "{:<28} {:>14.1} {:>9.1} ms",
        "cycle-level simulation",
        res.mean_penalty().unwrap_or(0.0),
        dt_sim.as_secs_f64() * 1e3
    );

    println!(
        "\nThe ladder trades accuracy for speed: the closed form estimates the\n\
         window drain from two aggregate curves; the local schedule adds the\n\
         interval's real dependence structure; the whole-trace schedule adds\n\
         cross-interval state and lands within a few percent of the simulator\n\
         at a fraction of its cost (x{:.1} faster here).",
        dt_sim.as_secs_f64() / dt_model.as_secs_f64().max(1e-9)
    );
}
