//! Quickstart: measure and model the branch misprediction penalty of one
//! workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mispredict::core::PenaltyModel;
use mispredict::sim::Simulator;
use mispredict::uarch::presets;
use mispredict::workloads::spec;

fn main() {
    // 1. A machine: the paper-era 4-wide out-of-order baseline.
    let machine = presets::baseline_4wide();
    println!(
        "machine: {}-wide, {}-deep frontend, {}-entry window, {} predictor",
        machine.dispatch_width, machine.frontend_depth, machine.window_size, machine.predictor
    );

    // 2. A workload: a twolf-like synthetic trace (hard branches).
    let profile = spec::by_name("twolf").expect("twolf is a known profile");
    let trace = profile.generate(200_000, 42);
    println!(
        "workload: {} ({} dynamic instructions)",
        profile.name,
        trace.len()
    );

    // 3. Measure with the cycle-level simulator.
    let result = Simulator::new(machine.clone()).run(&trace);
    println!("\n-- measured (cycle-level simulation) --");
    println!("IPC                   {:.3}", result.ipc());
    println!(
        "branch miss rate      {:.2}% ({} mispredictions)",
        result.branch_stats.miss_rate() * 100.0,
        result.branch_stats.mispredictions()
    );
    if let (Some(res), Some(pen)) = (result.mean_resolution(), result.mean_penalty()) {
        println!("mean resolution time  {res:.1} cycles");
        println!(
            "mean penalty          {pen:.1} cycles  (frontend depth alone: {})",
            machine.frontend_depth
        );
    }

    // 4. Model analytically with interval analysis — no timing simulation.
    let analysis = PenaltyModel::new(machine).analyze(&trace);
    println!("\n-- modeled (interval analysis) --");
    if let Some(pen) = analysis.mean_penalty() {
        println!("mean penalty          {pen:.1} cycles");
    }
    if let Some((base, ilp, fu, dmiss)) = analysis.mean_contributions() {
        println!(
            "  contributor (i)   frontend refill : {:.1}",
            analysis.frontend_depth
        );
        println!("  branch execution  base            : {base:.1}");
        println!("  contributor (iii) inherent ILP    : {ilp:.1}");
        println!("  contributor (iv)  FU latencies    : {fu:.1}");
        println!("  contributor (v)   short D-misses  : {dmiss:.1}");
    }

    // 5. The paper's headline, checked live.
    let measured = result.mean_penalty().unwrap_or(0.0);
    assert!(
        measured > f64::from(analysis.frontend_depth),
        "the misprediction penalty exceeds the frontend pipeline length"
    );
    println!(
        "\nheadline: the penalty ({measured:.1} cycles) exceeds the frontend pipeline \
         length ({} cycles) it is commonly equated with.",
        analysis.frontend_depth
    );
}
