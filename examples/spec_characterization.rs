//! Characterize all twelve SPECint2000-like workloads: IPC, miss events,
//! penalties and the five-contributor breakdown — a compact version of
//! the paper's whole evaluation on one screen.
//!
//! ```text
//! cargo run --release --example spec_characterization
//! ```

use mispredict::core::{cpi, PenaltyModel};
use mispredict::sim::Simulator;
use mispredict::uarch::presets;
use mispredict::workloads::spec;

fn main() {
    let machine = presets::baseline_4wide();
    let sim = Simulator::new(machine.clone());
    let model = PenaltyModel::new(machine.clone());
    const OPS: usize = 100_000;

    println!(
        "{:<8} {:>6} {:>8} {:>9} {:>9} | {:>5} {:>5} {:>5} {:>5} {:>6}",
        "bench", "IPC", "br-MPKI", "sim-pen", "mod-pen", "base", "ilp", "fu", "dmiss", "carry"
    );
    println!("{}", "-".repeat(84));
    for profile in spec::all_profiles() {
        let trace = profile.generate(OPS, 7);
        let result = sim.run(&trace);
        let analysis = model.analyze(&trace);
        let (base, ilp, fu, dmiss) = analysis
            .mean_contributions()
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        let carry = if analysis.breakdowns.is_empty() {
            0.0
        } else {
            analysis
                .breakdowns
                .iter()
                .map(|b| b.carryover as f64)
                .sum::<f64>()
                / analysis.breakdowns.len() as f64
        };
        println!(
            "{:<8} {:>6.3} {:>8.2} {:>9.1} {:>9.1} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>6.1}",
            profile.name,
            result.ipc(),
            result.branch_stats.mpki(result.instructions),
            result.mean_penalty().unwrap_or(0.0),
            analysis.mean_penalty().unwrap_or(0.0),
            base,
            ilp,
            fu,
            dmiss,
            carry,
        );
    }

    // CPI stacks for the extremes.
    println!("\nCPI stacks (interval model):");
    for name in ["crafty", "gcc", "mcf"] {
        let trace = spec::by_name(name).expect("known profile").generate(OPS, 7);
        let stack = cpi::predict(&trace, &machine);
        let (b, br, ic, dm) = stack.components();
        println!(
            "{name:<8} total {:.2} = base {b:.2} + branch {br:.2} + icache {ic:.2} + long-dmiss {dm:.2}",
            stack.cpi()
        );
    }
}
