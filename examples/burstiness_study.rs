//! Burstiness study: why clustered miss events are (individually) cheap.
//!
//! Contributor (ii) of the penalty is the number of instructions since
//! the last miss event. This example builds two custom workloads with the
//! same misprediction *count* but different clustering, and shows the
//! per-misprediction resolution differ exactly as interval analysis
//! predicts: branches dispatched into an emptier window resolve faster.
//!
//! ```text
//! cargo run --release --example burstiness_study
//! ```

use mispredict::core::PenaltyModel;
use mispredict::sim::Simulator;
use mispredict::uarch::{presets, PredictorConfig};
use mispredict::workloads::{ProfileBuilder, WorkloadProfile};

fn run(label: &str, profile: &WorkloadProfile) {
    let machine = presets::baseline_4wide()
        .to_builder()
        .predictor(PredictorConfig::default())
        .build()
        .expect("valid machine");
    let trace = profile.generate(150_000, 11);
    let result = Simulator::new(machine.clone()).run(&trace);
    let analysis = PenaltyModel::new(machine).analyze(&trace);

    println!("\n== {label} ==");
    println!(
        "mispredictions: {}   mean measured resolution: {:.1} cycles",
        result.mispredicts.len(),
        result.mean_resolution().unwrap_or(0.0),
    );
    println!("resolution vs. instructions-since-last-event (model, window-ramp-up):");
    for (lo, mean, n) in analysis.local_resolution_by_interval_length() {
        let bar = "#".repeat((mean / 2.0).round() as usize);
        println!("  >= {lo:>4} insts : {mean:>6.1} cycles  ({n:>5} events) {bar}");
    }
}

fn main() {
    // Bursty: small blocks and mostly-hard branches -> events cluster.
    let bursty = ProfileBuilder::new("bursty")
        .block_size(4.0)
        .hard_branches(0.7)
        .dependence_distance(2.5)
        .build()
        .expect("valid bursty profile");

    // Spread: large blocks, mostly-easy branches -> rare, isolated events.
    let spread = ProfileBuilder::new("spread")
        .block_size(14.0)
        .hard_branches(0.05)
        .dependence_distance(2.5)
        .build()
        .expect("valid spread profile");

    run("bursty events (short intervals dominate)", &bursty);
    run("spread events (long intervals dominate)", &spread);

    println!(
        "\nBoth workloads share machine and ILP structure; the ramp-up curves are the\n\
         same shape, but the bursty workload's mispredictions sit on the cheap left\n\
         end — its *average* penalty is lower even though each event costs the same\n\
         at equal interval length. That is contributor (ii)."
    );
}
