//! Design-space grid: frontend depth × window size.
//!
//! The interval framework exposes a designer's tension directly: deeper
//! frontends buy clock frequency but pay `+1` penalty cycle per stage per
//! misprediction, while larger windows buy IPC but lengthen every window
//! drain. This example sweeps the 2-D grid on one workload and prints
//! IPC and mean penalty at every point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mispredict::sim::Simulator;
use mispredict::uarch::presets;
use mispredict::workloads::spec;

fn main() {
    const OPS: usize = 80_000;
    let trace = spec::by_name("twolf")
        .expect("twolf is a known profile")
        .generate(OPS, 17);
    let depths = [3u32, 5, 10, 20];
    let windows = [16u32, 32, 64, 128];

    println!("IPC (top) and mean misprediction penalty (bottom) per configuration:\n");
    print!("{:>12}", "depth\\window");
    for w in windows {
        print!(" {w:>10}");
    }
    println!();
    for d in depths {
        let mut ipc_row = format!("{d:>12}");
        let mut pen_row = format!("{:>12}", "");
        for w in windows {
            let cfg = presets::baseline_4wide()
                .to_builder()
                .frontend_depth(d)
                .window_size(w)
                .rob_size(w * 2)
                .build()
                .expect("valid grid point");
            let res = Simulator::new(cfg).run(&trace);
            ipc_row.push_str(&format!(" {:>10.3}", res.ipc()));
            pen_row.push_str(&format!(" {:>10.1}", res.mean_penalty().unwrap_or(0.0)));
        }
        println!("{ipc_row}");
        println!("{pen_row}\n");
    }
    println!(
        "Reading the grid: moving right (bigger windows) raises IPC *and* the\n\
         penalty; moving down (deeper frontends) only raises the penalty. The\n\
         paper's point is that the penalty's window-drain floor — the bottom-left\n\
         to top-right gradient — is invisible if you equate the penalty with the\n\
         pipeline depth."
    );
}
